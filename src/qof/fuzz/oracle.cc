#include "qof/fuzz/oracle.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/system.h"
#include "qof/exec/fault_injector.h"
#include "qof/fuzz/canon.h"
#include "qof/fuzz/rng.h"
#include "qof/fuzz/crash_leg.h"
#include "qof/fuzz/disk_leg.h"
#include "qof/fuzz/parallel_leg.h"
#include "qof/fuzz/session_leg.h"
#include "qof/maintain/journal.h"
#include "qof/optimizer/optimizer.h"
#include "qof/schema/rig_derivation.h"
#include "qof/schema/schema_text.h"

namespace qof {
namespace {

Result<StructuringSchema> MaterializeSchema(const ConcreteCase& c) {
  if (c.canned.empty()) return ParseSchemaText(c.schema_text);
  if (c.canned == "bibtex") return BibtexSchema();
  if (c.canned == "mail") return MailSchema();
  if (c.canned == "log") return LogSchema();
  if (c.canned == "outline") return OutlineSchema();
  return Status::InvalidArgument("unknown canned corpus: " + c.canned);
}

Result<std::vector<std::pair<std::string, std::string>>> MaterializeDocs(
    const ConcreteCase& c) {
  if (c.canned.empty()) return c.docs;
  int entries = std::max(1, c.canned_entries);
  if (c.canned == "bibtex") {
    BibtexGenOptions o;
    o.num_references = entries;
    o.seed = c.canned_seed;
    o.probe_author_rate = 0.3;
    o.probe_editor_rate = 0.2;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.bib", GenerateBibtex(o)}};
  }
  if (c.canned == "mail") {
    MailGenOptions o;
    o.num_messages = entries;
    o.seed = c.canned_seed;
    o.probe_sender_rate = 0.3;
    o.probe_recipient_rate = 0.3;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.mbox", GenerateMailbox(o)}};
  }
  if (c.canned == "log") {
    LogGenOptions o;
    o.num_entries = entries * 4;
    o.seed = c.canned_seed;
    o.error_rate = 0.2;
    o.num_sessions = 4;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.log", GenerateLog(o)}};
  }
  if (c.canned == "outline") {
    OutlineGenOptions o;
    o.num_top_sections = entries;
    o.seed = c.canned_seed;
    o.max_depth = 3;
    o.probe_title_rate = 0.25;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.outline", GenerateOutline(o)}};
  }
  return Status::InvalidArgument("unknown canned corpus: " + c.canned);
}

/// Inclusion chains enumerated from the RIG: every edge as a ⊃d pair,
/// every length-2 path under all four direct-flag combinations, plus a
/// few seeded longer chains carrying selections. Deterministic given
/// (rig, seed).
std::vector<InclusionChain> EnumerateChains(const Rig& rig, uint64_t seed,
                                            size_t max_chains) {
  std::vector<InclusionChain> out;
  auto add = [&](std::vector<std::string> names, std::vector<bool> direct) {
    InclusionChain chain;
    chain.orientation = InclusionChain::Orientation::kContains;
    chain.names = std::move(names);
    chain.direct = std::move(direct);
    chain.sels.assign(chain.names.size(), std::nullopt);
    out.push_back(std::move(chain));
  };
  size_t n = rig.num_nodes();
  for (size_t i = 0; i < n && out.size() < max_chains; ++i) {
    Rig::NodeId a = static_cast<Rig::NodeId>(i);
    for (Rig::NodeId b : rig.out_edges(a)) {
      add({rig.name(a), rig.name(b)}, {true});
      for (Rig::NodeId c : rig.out_edges(b)) {
        for (bool d1 : {true, false}) {
          for (bool d2 : {true, false}) {
            add({rig.name(a), rig.name(b), rig.name(c)}, {d1, d2});
          }
        }
        if (out.size() >= max_chains) break;
      }
      if (out.size() >= max_chains) break;
    }
  }
  // Seeded chains: longer, random flags, a selection at the end —
  // exercises triviality (random names may be unreachable) and the
  // selection-preserving rewrites.
  FuzzRng rng(seed ^ 0x5eedc4a15ull);
  std::vector<std::string> names = rig.NodeNames();
  if (!names.empty()) {
    for (int k = 0; k < 4; ++k) {
      size_t len = 2 + rng.Below(3);
      std::vector<std::string> cn;
      std::vector<bool> cd;
      for (size_t j = 0; j < len; ++j) {
        cn.push_back(rng.Pick(names));
        if (j > 0) cd.push_back(rng.Chance(0.6));
      }
      InclusionChain chain;
      chain.orientation = InclusionChain::Orientation::kContains;
      chain.names = std::move(cn);
      chain.direct = std::move(cd);
      chain.sels.assign(chain.names.size(), std::nullopt);
      chain.sels.back() =
          ChainSelection{ExprKind::kSelectContains, kFuzzProbeWord, "", 0};
      out.push_back(std::move(chain));
    }
  }
  return out;
}

/// Zeroes the maintenance-generation field (bytes [8, 16) of a v2 blob)
/// so index blobs from different mutation histories compare byte-equal.
std::string StripGeneration(std::string blob) {
  if (blob.size() >= 16) {
    std::fill(blob.begin() + 8, blob.begin() + 16, '\0');
  }
  return blob;
}

/// The maintenance leg: replay the case's mutation sequence through the
/// incremental maintainer (serial and parallel) and cross-check against
/// a from-scratch rebuild of the mutated corpus. A Status error means
/// the harness broke its own preconditions (e.g. a shrink candidate
/// whose mutation targets a dropped document); a filled `failure` means
/// the maintainer violated an invariant — including compaction failures
/// and blob divergence, which is exactly how kDropTombstone surfaces.
Status CheckMaintenance(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, bool is_projection,
    std::string* failure) {
  const bool injected = options.bug == InjectedBug::kDropTombstone;
  auto fail = [&](const std::string& what) {
    *failure = "[maintain] " + what + " (fql: " + c.fql + ")";
    return Status::OK();
  };

  // The expected post-mutation document list, mirroring the maintainer's
  // append-at-tail physical order: updates move the document to the
  // tail, exactly as the corpus re-appends replaced text.
  std::vector<std::pair<std::string, std::string>> live = docs;
  for (const MutationStep& m : c.mutations) {
    auto it = std::find_if(
        live.begin(), live.end(),
        [&](const auto& doc) { return doc.first == m.name; });
    if (m.op != MutationStep::Op::kAdd && it != live.end()) live.erase(it);
    if (m.op != MutationStep::Op::kRemove) live.emplace_back(m.name, m.text);
  }

  // From-scratch rebuild of the mutated corpus: the ground truth.
  FileQuerySystem fresh(schema);
  for (const auto& [name, text] : live) {
    QOF_RETURN_IF_ERROR(fresh.AddFile(name, text));
  }
  fresh.SetParallelism(1);
  QOF_RETURN_IF_ERROR(fresh.BuildIndexes(IndexSpec::Full()));
  CanonExec rebuilt =
      Canon(fresh.Execute(c.fql, ExecutionMode::kBaseline));
  if (!Agrees("maintain/rebuild-auto", rebuilt,
              Canon(fresh.Execute(c.fql, ExecutionMode::kAuto)), c,
              failure)) {
    return Status::OK();
  }
  auto fresh_blob = fresh.ExportIndexes();
  if (!fresh_blob.ok()) return fresh_blob.status();

  for (int parallelism : {1, options.workers}) {
    std::string plabel = " p=" + std::to_string(parallelism);
    FileQuerySystem maintained(schema);
    for (const auto& [name, text] : docs) {
      QOF_RETURN_IF_ERROR(maintained.AddFile(name, text));
    }
    maintained.SetParallelism(parallelism);
    if (injected) {
      MaintainOptions maintain_options;
      maintain_options.inject_drop_tombstone = true;
      maintained.SetMaintainOptions(maintain_options);
    }
    IndexSpec spec = IndexSpec::Full();
    spec.parallelism = parallelism;
    QOF_RETURN_IF_ERROR(maintained.BuildIndexes(spec));

    for (size_t mi = 0; mi < c.mutations.size(); ++mi) {
      const MutationStep& m = c.mutations[mi];
      Status applied = Status::OK();
      switch (m.op) {
        case MutationStep::Op::kAdd:
          applied = maintained.AddFile(m.name, m.text);
          break;
        case MutationStep::Op::kUpdate:
          applied = maintained.UpdateFile(m.name, m.text);
          break;
        case MutationStep::Op::kRemove:
          applied = maintained.RemoveFile(m.name);
          break;
      }
      if (!applied.ok()) {
        // With the injected tombstone drop, auto-compaction can trip over
        // the lost splice mid-sequence — that is a detection. Otherwise
        // the case itself is malformed (a shrink artifact), which must
        // not be adopted as a failure.
        if (injected) {
          return fail("mutation " + std::to_string(mi) + plabel +
                      " surfaced the dropped tombstone: " +
                      applied.ToString());
        }
        return Status::Internal("mutation " + std::to_string(mi) + " (" +
                                m.name + ") failed: " + applied.ToString());
      }
    }

    // All execution modes must agree on the maintained system; the
    // baseline scan re-parses the (tombstoned) corpus, so it is ground
    // truth even when the indexes were maintained wrongly.
    CanonExec m_base =
        Canon(maintained.Execute(c.fql, ExecutionMode::kBaseline));
    if (!Agrees("maintain/auto" + plabel, m_base,
                Canon(maintained.Execute(c.fql, ExecutionMode::kAuto)), c,
                failure)) {
      return Status::OK();
    }
    if (!Agrees("maintain/two-phase" + plabel, m_base,
                Canon(maintained.Execute(c.fql, ExecutionMode::kTwoPhase)),
                c, failure)) {
      return Status::OK();
    }
    auto plan = maintained.Plan(c.fql);
    if (plan.ok() && plan->exact &&
        (!is_projection || plan->projection != nullptr)) {
      if (!Agrees(
              "maintain/index-only" + plabel, m_base,
              Canon(maintained.Execute(c.fql, ExecutionMode::kIndexOnly)),
              c, failure)) {
        return Status::OK();
      }
    }

    // Values are offset-independent, so they must match the rebuild
    // exactly; region coordinates shift with fragmentation, so only the
    // count is comparable before compaction.
    if (m_base.ok != rebuilt.ok ||
        (m_base.ok && (m_base.values != rebuilt.values ||
                       m_base.regions.size() != rebuilt.regions.size()))) {
      return fail("maintained system" + plabel +
                  " diverges from a from-scratch rebuild; maintained=" +
                  Describe(m_base) + " rebuilt=" + Describe(rebuilt));
    }

    // Compaction must fold the tombstones into an index byte-identical
    // to the from-scratch build. A compaction/export error here is the
    // maintainer's own consistency check firing — a real defect (or the
    // injected one), never a harness problem.
    Status compacted = maintained.CompactIndexes();
    if (!compacted.ok()) {
      return fail("compaction" + plabel + " failed: " +
                  compacted.ToString());
    }
    auto blob = maintained.ExportIndexes();
    if (!blob.ok()) {
      return fail("export after compaction" + plabel + " failed: " +
                  blob.status().ToString());
    }
    if (StripGeneration(*blob) != StripGeneration(*fresh_blob)) {
      return fail("compacted index blob" + plabel +
                  " differs from the from-scratch build (" +
                  std::to_string(blob->size()) + " vs " +
                  std::to_string(fresh_blob->size()) + " bytes)");
    }
  }
  return Status::OK();
}

/// The caching leg: a system with both query caches enabled must agree
/// byte-for-byte with an uncached one — cold, warm (the second run must
/// be served from the caches: a plan hit and no new eval misses), after
/// every interleaved mutation, and after a final compaction. This is the
/// leg that catches kStaleCache (CacheOptions::inject_stale), which
/// keeps serving entries cached under an older index epoch.
Status CheckCaching(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options,
    std::string* failure) {
  auto fail = [&](const std::string& what) {
    *failure = "[cache] " + what + " (fql: " + c.fql + ")";
    return Status::OK();
  };

  FileQuerySystem plain(schema);
  FileQuerySystem cached(schema);
  for (const auto& [name, text] : docs) {
    QOF_RETURN_IF_ERROR(plain.AddFile(name, text));
    QOF_RETURN_IF_ERROR(cached.AddFile(name, text));
  }
  plain.SetParallelism(1);
  cached.SetParallelism(1);
  CacheOptions cache_options = CacheOptions::Enabled();
  cache_options.inject_stale = options.bug == InjectedBug::kStaleCache;
  cached.SetCacheOptions(cache_options);
  QOF_RETURN_IF_ERROR(plain.BuildIndexes(IndexSpec::Full()));
  QOF_RETURN_IF_ERROR(cached.BuildIndexes(IndexSpec::Full()));

  CanonExec want = Canon(plain.Execute(c.fql, ExecutionMode::kAuto));
  CanonExec cold = Canon(cached.Execute(c.fql, ExecutionMode::kAuto));
  if (!Agrees("cache/cold", want, cold, c, failure)) return Status::OK();
  CacheStats after_cold = cached.cache_stats();
  CanonExec warm = Canon(cached.Execute(c.fql, ExecutionMode::kAuto));
  if (!Agrees("cache/warm", want, warm, c, failure)) return Status::OK();
  if (cold.ok) {
    CacheStats after_warm = cached.cache_stats();
    if (after_warm.plan_hits <= after_cold.plan_hits) {
      return fail("second execution missed the plan cache (hits " +
                  std::to_string(after_cold.plan_hits) + " -> " +
                  std::to_string(after_warm.plan_hits) + ")");
    }
    if (after_warm.eval_misses != after_cold.eval_misses) {
      return fail("second execution recomputed subexpressions (eval "
                  "misses " +
                  std::to_string(after_cold.eval_misses) + " -> " +
                  std::to_string(after_warm.eval_misses) + ")");
    }
  }

  // Interleaved mutations: every one bumps the maintenance generation, so
  // the epoch-keyed eval cache must stop serving its pre-mutation
  // entries. Each step compares cold-after-mutation and warm-again
  // answers against the uncached system.
  for (size_t mi = 0; mi < c.mutations.size(); ++mi) {
    const MutationStep& m = c.mutations[mi];
    for (FileQuerySystem* sys : {&plain, &cached}) {
      Status applied = Status::OK();
      switch (m.op) {
        case MutationStep::Op::kAdd:
          applied = sys->AddFile(m.name, m.text);
          break;
        case MutationStep::Op::kUpdate:
          applied = sys->UpdateFile(m.name, m.text);
          break;
        case MutationStep::Op::kRemove:
          applied = sys->RemoveFile(m.name);
          break;
      }
      if (!applied.ok()) {
        return Status::Internal("cache leg: mutation " +
                                std::to_string(mi) + " (" + m.name +
                                ") failed: " + applied.ToString());
      }
    }
    std::string label = " after mutation " + std::to_string(mi);
    CanonExec w = Canon(plain.Execute(c.fql, ExecutionMode::kAuto));
    if (!Agrees("cache/mutated" + label, w,
                Canon(cached.Execute(c.fql, ExecutionMode::kAuto)), c,
                failure)) {
      return Status::OK();
    }
    if (!Agrees("cache/mutated-warm" + label, w,
                Canon(cached.Execute(c.fql, ExecutionMode::kAuto)), c,
                failure)) {
      return Status::OK();
    }
  }

  // Compaction rebases region offsets without bumping the generation —
  // the epoch's compaction count must flush the eval cache on its own.
  if (!c.mutations.empty()) {
    QOF_RETURN_IF_ERROR(plain.CompactIndexes());
    QOF_RETURN_IF_ERROR(cached.CompactIndexes());
    CanonExec w = Canon(plain.Execute(c.fql, ExecutionMode::kAuto));
    if (!Agrees("cache/compacted", w,
                Canon(cached.Execute(c.fql, ExecutionMode::kAuto)), c,
                failure)) {
      return Status::OK();
    }
  }
  return Status::OK();
}

/// The IR leg: the dataflow IR engine must agree with the tree evaluator
/// byte-for-byte. Both engines run on the *same* system (per cache
/// setting), so with caches enabled the IR run is also served entries the
/// tree run published and vice versa — the canonical-key interop the IR
/// design promises. This is the leg that catches kBadCse
/// (IrPlanOptions::inject_bad_cse), whose CSE pass merges selections that
/// differ only in their word operands.
Status CheckIrEquivalence(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, bool is_projection,
    std::string* failure) {
  QueryOptions tree_engine;
  tree_engine.use_ir = false;
  QueryOptions ir_engine;
  ir_engine.use_ir = true;

  for (bool with_cache : {false, true}) {
    FileQuerySystem sys(schema);
    for (const auto& [name, text] : docs) {
      QOF_RETURN_IF_ERROR(sys.AddFile(name, text));
    }
    if (with_cache) sys.SetCacheOptions(CacheOptions::Enabled());
    sys.SetParallelism(1);
    QOF_RETURN_IF_ERROR(sys.BuildIndexes(IndexSpec::Full()));
    if (options.bug == InjectedBug::kBadCse) {
      IrPlanOptions planted;
      planted.inject_bad_cse = true;
      sys.SetIrOptions(planted);
    }
    auto plan = sys.Plan(c.fql);
    const bool index_only_answers =
        plan.ok() && plan->exact &&
        (!is_projection || plan->projection != nullptr);
    std::string cache_label = with_cache ? " cache=on" : " cache=off";

    for (int parallelism : {1, options.workers}) {
      sys.SetParallelism(parallelism);
      std::string label_tail =
          cache_label + " p=" + std::to_string(parallelism);
      struct ModeCase {
        ExecutionMode mode;
        const char* name;
      };
      std::vector<ModeCase> modes = {{ExecutionMode::kAuto, "auto"},
                                     {ExecutionMode::kTwoPhase,
                                      "two-phase"}};
      if (index_only_answers) {
        modes.push_back({ExecutionMode::kIndexOnly, "index-only"});
      }
      for (const ModeCase& mc : modes) {
        CanonExec tree = Canon(sys.Execute(c.fql, mc.mode, tree_engine));
        CanonExec ir = Canon(sys.Execute(c.fql, mc.mode, ir_engine));
        if (!Agrees("ir/" + std::string(mc.name) + label_tail, tree, ir,
                    c, failure)) {
          return Status::OK();
        }
      }
    }
  }
  return Status::OK();
}

/// Journal sub-check of the fault leg, run for the journal.* sites: a
/// mutation session journals every applied record through
/// AppendJournalRecordToFile (where journal.append can tear a frame —
/// the simulated crash mid-append), then a recovery session parses and
/// replays the file (where journal.replay can abort mid-record). The
/// invariants: a torn tail is detected and discarded, the replayable
/// records are exactly the appended prefix, an aborted replay stops at a
/// record boundary and resumes cleanly, and the replayed state is
/// byte-identical (after compaction) to applying the same records
/// directly.
Status CheckJournalFault(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const FaultInjector::Spec& spec, uint64_t seed,
    std::string* failure) {
  if (c.mutations.empty()) return Status::OK();
  auto fail = [&](const std::string& what) {
    *failure = "[fault-journal " + spec.site + " hit " +
               std::to_string(spec.hit) + "] " + what +
               " (fql: " + c.fql + ")";
    return Status::OK();
  };

  auto build_state = [&](Corpus* corpus) -> Result<BuiltIndexes> {
    for (const auto& [name, text] : docs) {
      QOF_RETURN_IF_ERROR(corpus->AddDocument(name, text).status());
    }
    return BuildIndexes(schema, *corpus, IndexSpec::Full());
  };

  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() /
                  ("qof-fuzz-journal-" + std::to_string(seed) + ".jnl");
  std::error_code ec;
  fs::remove(path, ec);

  // Session 1: apply the mutations, journaling each applied record. A
  // torn append is a simulated crash: the session ends on the spot.
  Corpus corpus1;
  QOF_ASSIGN_OR_RETURN(BuiltIndexes built1, build_state(&corpus1));
  IndexMaintainer m1(&schema, &corpus1, &built1, IndexSpec::Full());
  std::vector<JournalRecord> journaled;
  bool torn = false;
  {
    ScopedFaultInjector inject(spec);
    for (const MutationStep& m : c.mutations) {
      JournalRecord record;
      record.name = m.name;
      record.text = m.text;
      Status applied = Status::OK();
      switch (m.op) {
        case MutationStep::Op::kAdd:
          record.op = JournalOp::kAdd;
          applied = m1.AddDocument(m.name, m.text).status();
          break;
        case MutationStep::Op::kUpdate:
          record.op = JournalOp::kUpdate;
          applied = m1.UpdateDocument(m.name, m.text).status();
          break;
        case MutationStep::Op::kRemove:
          record.op = JournalOp::kRemove;
          record.text.clear();
          applied = m1.RemoveDocument(m.name);
          break;
      }
      if (!applied.ok()) {
        return Status::Internal("journal leg: mutation on '" + m.name +
                                "' failed: " + applied.ToString());
      }
      record.generation = m1.generation();
      Status appended = AppendJournalRecordToFile(path.string(), record);
      if (!appended.ok()) {
        torn = true;
        break;
      }
      journaled.push_back(std::move(record));
    }
  }

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  fs::remove(path, ec);

  auto parsed = ParseJournal(data);
  if (!parsed.ok()) {
    return fail("journal failed to parse after the injected fault: " +
                parsed.status().ToString());
  }
  if (torn && !parsed->truncated_tail) {
    return fail("torn append was not detected as a truncated tail");
  }
  if (!torn && parsed->truncated_tail) {
    return fail("intact journal reported a truncated tail");
  }
  if (parsed->records != journaled) {
    return fail("replayable records differ from the appended prefix (" +
                std::to_string(parsed->records.size()) + " vs " +
                std::to_string(journaled.size()) + ")");
  }

  // Session 2: recovery by replay, with the same fault spec re-armed so
  // journal.replay can abort mid-way. Mutations are atomic, so an abort
  // leaves the maintainer exactly at the last replayed record and the
  // remainder resumes cleanly once the one-shot fault has fired.
  Corpus corpus2;
  QOF_ASSIGN_OR_RETURN(BuiltIndexes built2, build_state(&corpus2));
  IndexMaintainer m2(&schema, &corpus2, &built2, IndexSpec::Full());
  {
    ScopedFaultInjector inject(spec);
    Status replayed = ReplayJournal(parsed->records, &m2);
    if (!replayed.ok()) {
      if (!inject.injector().fired()) {
        return Status::Internal(
            "journal leg: replay failed without the injected fault: " +
            replayed.ToString());
      }
      uint64_t done = m2.generation();
      if (done > parsed->records.size()) {
        return fail("aborted replay overshot the record count");
      }
      std::vector<JournalRecord> rest(
          parsed->records.begin() + static_cast<long>(done),
          parsed->records.end());
      Status resumed = ReplayJournal(rest, &m2);
      if (!resumed.ok()) {
        return fail("replay did not resume after the injected fault: " +
                    resumed.ToString());
      }
    }
  }
  if (m2.generation() != journaled.size()) {
    return fail("replayed generation " + std::to_string(m2.generation()) +
                " != journaled record count " +
                std::to_string(journaled.size()));
  }

  // Ground truth: the same records applied directly, fault-free.
  Corpus corpus3;
  QOF_ASSIGN_OR_RETURN(BuiltIndexes built3, build_state(&corpus3));
  IndexMaintainer m3(&schema, &corpus3, &built3, IndexSpec::Full());
  for (const JournalRecord& r : parsed->records) {
    Status applied = Status::OK();
    switch (r.op) {
      case JournalOp::kAdd:
        applied = m3.AddDocument(r.name, r.text).status();
        break;
      case JournalOp::kUpdate:
        applied = m3.UpdateDocument(r.name, r.text).status();
        break;
      case JournalOp::kRemove:
        applied = m3.RemoveDocument(r.name);
        break;
    }
    if (!applied.ok()) {
      return Status::Internal("journal leg: direct apply of '" + r.name +
                              "' failed: " + applied.ToString());
    }
  }

  Status c2 = m2.Compact();
  if (!c2.ok()) return fail("replayed state failed to compact: " + c2.ToString());
  Status c3 = m3.Compact();
  if (!c3.ok()) {
    return Status::Internal("journal leg: reference compaction failed: " +
                            c3.ToString());
  }
  auto blob2 =
      SerializeIndexes(built2, IndexSpec::Full(), corpus2, m2.generation());
  auto blob3 =
      SerializeIndexes(built3, IndexSpec::Full(), corpus3, m3.generation());
  if (!blob2.ok()) return blob2.status();
  if (!blob3.ok()) return blob3.status();
  if (*blob2 != *blob3) {
    return fail("replayed state diverges from direct application (" +
                std::to_string(blob2->size()) + " vs " +
                std::to_string(blob3->size()) + " blob bytes)");
  }
  return Status::OK();
}

/// The fault-injection leg (OracleOptions::fault_site): drives the full
/// life cycle — build, query in every mode, export/import, mutations —
/// with a one-shot fault armed, then verifies recovery: the system stays
/// queryable, every surviving answer is correct, failed steps left no
/// partial state behind, and after Compact() the index blob is
/// byte-identical to a from-scratch rebuild of exactly the steps that
/// succeeded.
Result<OracleOutcome> RunFaultLeg(const ConcreteCase& c,
                                  const OracleOptions& options,
                                  uint64_t seed) {
  OracleOutcome outcome;
  auto fail = [&](std::string message) {
    outcome.failed = true;
    outcome.failure = "[fault " + options.fault_site + " hit " +
                      std::to_string(options.fault_hit) + "] " +
                      std::move(message) + " (fql: " + c.fql + ")";
    return outcome;
  };

  QOF_ASSIGN_OR_RETURN(StructuringSchema schema, MaterializeSchema(c));
  QOF_ASSIGN_OR_RETURN(auto docs, MaterializeDocs(c));

  auto parsed_fql = ParseFql(c.fql);
  if (!parsed_fql.ok()) {
    // The invalid-query class ends at the parser; faults only matter on
    // executable queries.
    if (c.expect_valid) {
      return fail("generated query failed to parse: " +
                  parsed_fql.status().ToString());
    }
    return outcome;
  }

  FaultInjector::Spec spec{options.fault_site, options.fault_hit};

  FileQuerySystem sys(schema);
  for (const auto& [name, text] : docs) {
    QOF_RETURN_IF_ERROR(sys.AddFile(name, text));
  }
  sys.SetParallelism(1);

  // The fault-free answer on the pre-mutation corpus: any mode that still
  // answers under injection must agree with it (a fault may fail a query
  // or degrade its strategy, but never corrupt a returned answer).
  CanonExec pre = Canon(sys.Execute(c.fql, ExecutionMode::kBaseline));

  // Phase A: the life cycle under an armed injector. Nothing here may
  // crash or hang, and every failure must carry a diagnostic.
  std::vector<MutationStep> applied;
  bool built = false;
  {
    ScopedFaultInjector inject(spec);
    Status b = sys.BuildIndexes(IndexSpec::Full());
    built = b.ok();
    if (!built) {
      if (!inject.injector().fired()) {
        return Status::Internal(
            "fault leg: build failed without the injected fault: " +
            b.ToString());
      }
      if (b.message().empty()) {
        return fail("failed build carried no diagnostic");
      }
      // A failed build must leave the system queryable (the baseline
      // needs no indexes).
      auto q = sys.Execute(c.fql, ExecutionMode::kBaseline);
      CanonExec got = Canon(q);
      if (got.ok &&
          !Agrees("fault/baseline-after-failed-build", pre, got, c,
                  &outcome.failure)) {
        outcome.failed = true;
        return outcome;
      }
    }
    if (built) {
      struct ModeCase {
        ExecutionMode mode;
        const char* label;
      };
      for (const ModeCase& mc :
           {ModeCase{ExecutionMode::kAuto, "auto"},
            ModeCase{ExecutionMode::kTwoPhase, "two-phase"},
            ModeCase{ExecutionMode::kBaseline, "baseline"}}) {
        auto r = sys.Execute(c.fql, mc.mode);
        if (!r.ok()) {
          if (r.status().message().empty()) {
            return fail(std::string("mode ") + mc.label +
                        " failed without a diagnostic");
          }
          continue;
        }
        if (!Agrees(std::string("fault/") + mc.label, pre, Canon(r), c,
                    &outcome.failure)) {
          outcome.failed = true;
          return outcome;
        }
      }

      // Export / import under injection: a failed import must leave the
      // importing system intact and queryable.
      auto blob = sys.ExportIndexes();
      if (!blob.ok()) {
        if (blob.status().message().empty()) {
          return fail("export failure carried no diagnostic");
        }
      } else {
        FileQuerySystem importer(schema);
        for (const auto& [name, text] : docs) {
          QOF_RETURN_IF_ERROR(importer.AddFile(name, text));
        }
        Status imported = importer.ImportIndexes(*blob);
        if (!imported.ok()) {
          if (imported.message().empty()) {
            return fail("import failure carried no diagnostic");
          }
          CanonExec got =
              Canon(importer.Execute(c.fql, ExecutionMode::kBaseline));
          if (got.ok &&
              !Agrees("fault/importer-after-failed-import", pre, got, c,
                      &outcome.failure)) {
            outcome.failed = true;
            return outcome;
          }
        }
      }

      // Mutations: whether a step applied is read off the maintenance
      // generation — auto-compaction can fail *after* a successful
      // splice, which still counts as applied (compaction is atomic and
      // simply did not happen).
      for (const MutationStep& m : c.mutations) {
        uint64_t before = sys.maintain_stats().generation;
        Status s = Status::OK();
        switch (m.op) {
          case MutationStep::Op::kAdd:
            s = sys.AddFile(m.name, m.text);
            break;
          case MutationStep::Op::kUpdate:
            s = sys.UpdateFile(m.name, m.text);
            break;
          case MutationStep::Op::kRemove:
            s = sys.RemoveFile(m.name);
            break;
        }
        if (sys.maintain_stats().generation > before) {
          applied.push_back(m);
        }
        if (!s.ok() && s.message().empty()) {
          return fail("mutation on '" + m.name +
                      "' failed without a diagnostic");
        }
      }
    }
  }

  // Phase B: recovery, injector gone. A build that was failed by the
  // fault must now succeed from the untouched corpus.
  if (!built) {
    Status again = sys.BuildIndexes(IndexSpec::Full());
    if (!again.ok()) {
      return fail("rebuild after the injected build failure failed: " +
                  again.ToString());
    }
  }

  // Ground truth: a fresh system over the documents plus exactly the
  // mutations that applied, in the maintainer's append-at-tail order.
  std::vector<std::pair<std::string, std::string>> live = docs;
  for (const MutationStep& m : applied) {
    auto it = std::find_if(
        live.begin(), live.end(),
        [&](const auto& doc) { return doc.first == m.name; });
    if (m.op != MutationStep::Op::kAdd && it != live.end()) live.erase(it);
    if (m.op != MutationStep::Op::kRemove) live.emplace_back(m.name, m.text);
  }
  FileQuerySystem fresh(schema);
  for (const auto& [name, text] : live) {
    QOF_RETURN_IF_ERROR(fresh.AddFile(name, text));
  }
  fresh.SetParallelism(1);
  QOF_RETURN_IF_ERROR(fresh.BuildIndexes(IndexSpec::Full()));
  CanonExec want = Canon(fresh.Execute(c.fql, ExecutionMode::kBaseline));

  // Cross-mode agreement on the recovered system itself. Against the
  // rebuild only values and the region count are comparable before
  // compaction — region coordinates shift with corpus fragmentation
  // (applied updates tombstone the old span and re-append).
  CanonExec got = Canon(sys.Execute(c.fql, ExecutionMode::kBaseline));
  if (!Agrees("fault/recovered-auto", got,
              Canon(sys.Execute(c.fql, ExecutionMode::kAuto)), c,
              &outcome.failure) ||
      !Agrees("fault/recovered-two-phase", got,
              Canon(sys.Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  if (got.ok != want.ok ||
      (got.ok && (got.values != want.values ||
                  got.regions.size() != want.regions.size()))) {
    return fail("recovered system diverges from a from-scratch rebuild; "
                "recovered=" +
                Describe(got) + " rebuilt=" + Describe(want));
  }

  // Compaction must fold the survivor to an index byte-identical to the
  // from-scratch rebuild — the injected failure left no hidden
  // divergence behind.
  Status compacted = sys.CompactIndexes();
  if (!compacted.ok()) {
    return fail("compaction after recovery failed: " + compacted.ToString());
  }
  auto sys_blob = sys.ExportIndexes();
  if (!sys_blob.ok()) {
    return fail("export after recovery failed: " +
                sys_blob.status().ToString());
  }
  auto fresh_blob = fresh.ExportIndexes();
  if (!fresh_blob.ok()) return fresh_blob.status();
  if (StripGeneration(*sys_blob) != StripGeneration(*fresh_blob)) {
    return fail("post-recovery index blob differs from a from-scratch "
                "rebuild (" +
                std::to_string(sys_blob->size()) + " vs " +
                std::to_string(fresh_blob->size()) + " bytes)");
  }
  // Compaction folded the corpus to the rebuild's layout, so the full
  // region comparison is now meaningful.
  if (!Agrees("fault/compacted-baseline", want,
              Canon(sys.Execute(c.fql, ExecutionMode::kBaseline)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }

  if (options.fault_site.rfind("journal.", 0) == 0) {
    QOF_RETURN_IF_ERROR(CheckJournalFault(schema, docs, c, spec, seed,
                                          &outcome.failure));
    if (!outcome.failure.empty()) {
      outcome.failed = true;
      return outcome;
    }
  }
  return outcome;
}

bool HasRewrite(const std::vector<ChainRewrite>& rewrites, size_t position) {
  for (const ChainRewrite& r : rewrites) {
    if (r.kind == ChainRewrite::Kind::kRelaxDirect &&
        r.position == position) {
      return true;
    }
  }
  return false;
}

/// Thm. 3.6 check: random-order rewrite walks (buggy or not) must land on
/// Optimize()'s normal form, and so must re-optimizing any intermediate.
Status CheckChainConvergence(const Rig& rig, const OracleOptions& options,
                             uint64_t seed, std::string* failure) {
  ChainOptimizer optimizer(&rig);
  FuzzRng rng(seed * 0x9e3779b97f4a7c15ull + 0xc4a5ull);
  for (const InclusionChain& chain :
       EnumerateChains(rig, seed, options.max_chains)) {
    auto outcome = optimizer.Optimize(chain);
    if (!outcome.ok()) return outcome.status();
    if (outcome->trivially_empty) continue;

    InclusionChain cur = chain;
    for (int step = 0; step < 64; ++step) {
      std::vector<ChainRewrite> rewrites = optimizer.ApplicableRewrites(cur);
      size_t legit = rewrites.size();
      if (options.bug == InjectedBug::kRelaxDirect) {
        // The injected bug: every ⊃d is treated as relaxable, guard or no
        // guard.
        for (size_t i = 0; i + 1 < cur.names.size(); ++i) {
          if (cur.direct[i] && !HasRewrite(rewrites, i)) {
            rewrites.push_back(
                {ChainRewrite::Kind::kRelaxDirect, i});
          }
        }
      }
      if (rewrites.empty()) break;
      size_t pick = rng.Below(rewrites.size());
      if (pick < legit) {
        cur = optimizer.ApplyRewrite(cur, rewrites[pick]);
      } else {
        cur.direct[rewrites[pick].position] = false;  // unguarded relax
      }
      auto re = optimizer.Optimize(cur);
      if (!re.ok()) return re.status();
      if (!re->trivially_empty && !(re->chain == outcome->chain)) {
        *failure = "[optimizer] Thm 3.6 normal form divergence: chain " +
                   chain.ToString() + " rewrote to " + cur.ToString() +
                   " which re-optimizes to " + re->chain.ToString() +
                   " instead of " + outcome->chain.ToString();
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<OracleOutcome> RunOracle(const ConcreteCase& c,
                                const OracleOptions& options,
                                uint64_t seed) {
  if (!options.fault_site.empty()) return RunFaultLeg(c, options, seed);
  OracleOutcome outcome;
  auto fail = [&](std::string message) {
    outcome.failed = true;
    outcome.failure = std::move(message);
    return outcome;
  };

  QOF_ASSIGN_OR_RETURN(StructuringSchema schema, MaterializeSchema(c));
  QOF_ASSIGN_OR_RETURN(auto docs, MaterializeDocs(c));

  // Parse once up front: the invalid-query class ends here when the
  // parser (correctly) rejects with a diagnostic.
  auto parsed = ParseFql(c.fql);
  if (!parsed.ok()) {
    if (c.expect_valid) {
      return fail("[parse] generated query failed to parse: " +
                  parsed.status().ToString() + " (fql: " + c.fql + ")");
    }
    if (parsed.status().message().empty()) {
      return fail("[parse] rejection without a diagnostic (fql: " + c.fql +
                  ")");
    }
    return outcome;  // rejected with a diagnostic — exactly right
  }
  const bool is_projection = parsed->IsProjection();

  // FileQuerySystem is immovable (its state mutex and snapshot contract
  // pin its address), so fresh systems come back behind a unique_ptr.
  auto make_system = [&]() {
    auto system = std::make_unique<FileQuerySystem>(schema);
    for (const auto& [name, text] : docs) {
      (void)system->AddFile(name, text);
    }
    return system;
  };

  // 1. Baseline scan: the ground truth.
  std::unique_ptr<FileQuerySystem> base_system = make_system();
  CanonExec baseline =
      Canon(base_system->Execute(c.fql, ExecutionMode::kBaseline));

  // 2. Full indexing, serial and parallel.
  std::unique_ptr<FileQuerySystem> full_owner = make_system();
  FileQuerySystem& full = *full_owner;
  full.SetParallelism(1);
  Status built = full.BuildIndexes(IndexSpec::Full());
  if (!built.ok()) {
    return fail("[index] full index build failed: " + built.ToString());
  }
  if (!Agrees("auto/full p=1", baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kAuto)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  if (!Agrees("two-phase/full p=1", baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  auto full_plan = full.Plan(c.fql);
  if (full_plan.ok() && full_plan->exact &&
      (!is_projection || full_plan->projection != nullptr)) {
    if (!Agrees("index-only/full", baseline,
                Canon(full.Execute(c.fql, ExecutionMode::kIndexOnly)), c,
                &outcome.failure)) {
      outcome.failed = true;
      return outcome;
    }
  }

  full.SetParallelism(options.workers);
  IndexSpec parallel_spec = IndexSpec::Full();
  parallel_spec.parallelism = options.workers;
  built = full.BuildIndexes(parallel_spec);
  if (!built.ok()) {
    return fail("[index] parallel index build failed: " + built.ToString());
  }
  if (!Agrees("auto/full p=" + std::to_string(options.workers), baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kAuto)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  if (!Agrees("two-phase/full p=" + std::to_string(options.workers),
              baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }

  // 3. Random index subsets (§6): exact or not, answers must match.
  for (size_t si = 0; si < c.subsets.size(); ++si) {
    std::set<std::string> names(c.subsets[si].begin(), c.subsets[si].end());
    std::unique_ptr<FileQuerySystem> partial_owner = make_system();
    FileQuerySystem& partial = *partial_owner;
    partial.SetParallelism(1);
    built = partial.BuildIndexes(IndexSpec::Partial(names));
    if (!built.ok()) {
      return fail("[index] partial build " + std::to_string(si) +
                  " failed: " + built.ToString());
    }
    std::string label = "subset " + std::to_string(si);
    if (!Agrees("auto/" + label, baseline,
                Canon(partial.Execute(c.fql, ExecutionMode::kAuto)), c,
                &outcome.failure)) {
      outcome.failed = true;
      return outcome;
    }
    auto plan = partial.Plan(c.fql);
    if (plan.ok() && plan->view_indexed && !plan->trivially_empty) {
      if (!Agrees("two-phase/" + label, baseline,
                  Canon(partial.Execute(c.fql, ExecutionMode::kTwoPhase)),
                  c, &outcome.failure)) {
        outcome.failed = true;
        return outcome;
      }
      if (options.bug == InjectedBug::kExactSkip && baseline.ok &&
          !is_projection && !plan->exact && plan->candidates != nullptr) {
        // The injected bug: trust phase-1 candidates as the final answer
        // even though the plan is inexact (§6.3 violated).
        ExprEvaluator evaluator(&partial.region_index(),
                                &partial.word_index(), &partial.corpus());
        auto candidates = evaluator.Evaluate(*plan->candidates);
        if (candidates.ok()) {
          std::vector<Region> got(candidates->begin(), candidates->end());
          std::sort(got.begin(), got.end(),
                    [](const Region& a, const Region& b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.end < b.end;
                    });
          if (got != baseline.regions) {
            return fail(
                "[exact-skip/" + label +
                "] injected bug detected: unfiltered phase-1 candidates (" +
                std::to_string(got.size()) + ") differ from baseline (" +
                std::to_string(baseline.regions.size()) +
                ") on an inexact plan (fql: " + c.fql + ")");
          }
        }
      }
    }
  }

  // 4. Incremental maintenance: replay the mutation sequence through the
  // maintainer and cross-check against a from-scratch rebuild, down to
  // the post-compaction index blob bytes.
  if (!c.mutations.empty()) {
    QOF_RETURN_IF_ERROR(CheckMaintenance(schema, docs, c, options,
                                         is_projection, &outcome.failure));
    if (!outcome.failure.empty()) {
      outcome.failed = true;
      return outcome;
    }
  }

  // 5. Query caches: cached answers are byte-identical to uncached ones
  // cold, warm, across interleaved mutations, and past a compaction.
  QOF_RETURN_IF_ERROR(
      CheckCaching(schema, docs, c, options, &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 5b. Multi-client sessions: interleaved query/mutation schedules
  // through the QueryService, each session's answers byte-identical to a
  // replay at its pinned generation (snapshot isolation).
  QOF_RETURN_IF_ERROR(
      CheckSessions(schema, docs, c, options, seed, &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 5c. Disk-resident tier: answers served from a paged store (tiny
  // pages, lazy paging through the buffer pool) are byte-identical to
  // in-memory execution, and a forced full materialization reproduces
  // the export blob exactly.
  QOF_RETURN_IF_ERROR(
      CheckDiskTier(schema, docs, c, options, seed, &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 5d. Crash consistency: the mutation sequence replayed as a durable
  // index-directory trace, with a power cut simulated after every
  // mutating I/O op — recovery must always land on an acknowledged
  // prefix, never lose an acknowledged commit, never read a torn state.
  QOF_RETURN_IF_ERROR(CheckCrashConsistency(schema, docs, c, options, seed,
                                            &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 7. Dataflow IR engine vs. tree evaluator, every strategy, caches off
  // and on. (Runs before the chain check so a planted IR bug shrinks on
  // the cheap legs.)
  QOF_RETURN_IF_ERROR(CheckIrEquivalence(schema, docs, c, options,
                                         is_projection, &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 7b. Morsel-driven parallel execution: exec_workers ∈ {2, 4} (and the
  // worker × prefetch grid on a paged store) must be byte-identical to
  // serial execution, at a morsel grain low enough that small cases
  // split.
  QOF_RETURN_IF_ERROR(
      CheckParallelExec(schema, docs, c, options, seed, &outcome.failure));
  if (!outcome.failure.empty()) {
    outcome.failed = true;
    return outcome;
  }

  // 6. Thm. 3.6: rewrite walks converge to the unique normal form.
  if (options.check_chains) {
    Rig rig = DeriveFullRig(schema);
    QOF_RETURN_IF_ERROR(
        CheckChainConvergence(rig, options, seed, &outcome.failure));
    if (!outcome.failure.empty()) {
      outcome.failed = true;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace qof
