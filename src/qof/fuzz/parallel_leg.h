#ifndef QOF_FUZZ_PARALLEL_LEG_H_
#define QOF_FUZZ_PARALLEL_LEG_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"
#include "qof/schema/structuring_schema.h"
#include "qof/util/status.h"

namespace qof {

/// The parallel-execution leg: the morsel-driven IR executor must be
/// invisible in every answer. With the morsel grain forced low enough
/// that even the fuzzer's small corpora split (so range partitioning,
/// wavefront scheduling and per-range merges all actually run), the leg
/// checks:
///
///   1. in-memory, eval cache on: exec_workers ∈ {2, 4} produce regions
///      and rendered values byte-identical to the serial run, for both
///      kAuto and kTwoPhase, with warm-cache parallel runs equally
///      identical (the merge must not depend on whether a node came from
///      the cache);
///   2. cache-invariant stats hold: the phase-1 candidate count of every
///      parallel run equals the serial run's (morsel charges are
///      reconstructed, not re-measured);
///   3. on a paged store: exec_workers ∈ {1, 2, 4} × prefetch on/off all
///      match the in-memory serial baseline — batched prefetch admission
///      may change I/O counts, never answers.
///
/// This is the leg that catches kRacyMerge
/// (IrPlanOptions::inject_racy_merge), which makes the morsel merge lose
/// its first range — the lost-update outcome of an unsynchronized result
/// merge. Serial runs are unaffected, so the serial-vs-parallel
/// differential flags it.
///
/// Same conventions as the oracle's other legs: a Status error means the
/// harness itself broke; a filled `failure` means parallel execution
/// violated an invariant.
Status CheckParallelExec(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure);

}  // namespace qof

#endif  // QOF_FUZZ_PARALLEL_LEG_H_
