#ifndef QOF_FUZZ_ORACLE_H_
#define QOF_FUZZ_ORACLE_H_

#include <string>

#include "qof/fuzz/case.h"
#include "qof/util/result.h"

namespace qof {

/// Deliberate bugs the oracle can simulate, to prove the harness catches
/// (and the shrinker minimizes) real plan-equivalence defects:
///  - kRelaxDirect drops the Prop. 3.5(a) guard: the rewrite walk treats
///    every ⊃d as relaxable, so it can leave the legitimate rewrite
///    system's equivalence class and diverge from the Thm. 3.6 normal
///    form.
///  - kExactSkip returns phase-1 candidates as the final answer even for
///    inexact plans — skipping the §6.2 filter the §6.3 condition exists
///    to justify.
///  - kDropTombstone makes the incremental maintainer lose one
///    tombstone's index splice (MaintainOptions::inject_drop_tombstone):
///    the dead document's contribution survives in the indexes, so the
///    maintenance leg's differential checks — and compaction's own
///    consistency check — must flag it.
///  - kStaleCache makes the eval cache ignore index-epoch changes
///    (CacheOptions::inject_stale): entries cached before a mutation or
///    compaction keep being served after it, so the caching leg's
///    cached-vs-plain comparison across interleaved mutations must flag
///    the stale answers.
///  - kBadCse makes the IR optimizer's CSE pass hash selection nodes
///    without their word operands (IrPlanOptions::inject_bad_cse), so
///    structurally different selections merge; the IR leg's tree-vs-IR
///    differential must flag the wrong answers.
///  - kStaleSnapshot makes the query service ignore a session's pinned
///    snapshot (ServiceOptions::inject_stale_snapshot): queries are
///    silently served from the live state, so a session that should see
///    its pinned generation observes other sessions' later mutations.
///    The interleaved-session leg's replay-at-pinned-generation
///    comparison must flag the divergence.
///  - kEvictPinned makes the paged store's buffer pool evict frames that
///    are still pinned (PagedStoreOptions::inject_evict_pinned): a
///    multi-page posting read sees one of its pinned pages overwritten
///    mid-assembly, so decoded streams carry another page's bytes. The
///    disk-tier leg — on-disk answers and a forced full materialization
///    cross-checked against the in-memory indexes the store was saved
///    from, under a pool smaller than the longest stream — must flag the
///    corruption.
///  - kSkipDirSync makes the fault VFS's SyncDir a silent no-op
///    (FaultVfs::set_skip_dir_sync) — the classic forgot-to-fsync-the-
///    parent-directory durability bug: an atomic-rename commit (the
///    MANIFEST swing, the blob it names) succeeds and is acknowledged,
///    but the rename itself is still volatile, so a power cut rolls the
///    directory back. The crash-sweep leg — power loss simulated after
///    every mutating I/O op, then recovery — must flag the cut that
///    loses an acknowledged commit (or strands the directory
///    unreadable).
///  - kRacyMerge makes the morsel-driven IR executor's result merge lose
///    its first range (IrPlanOptions::inject_racy_merge) — the
///    lost-update outcome of an unsynchronized merge. Serial execution
///    is untouched, so the parallel leg's serial-vs-parallel
///    differential (run with a tiny morsel grain so even small cases
///    split) must flag the missing results.
enum class InjectedBug {
  kNone,
  kRelaxDirect,
  kExactSkip,
  kDropTombstone,
  kStaleCache,
  kBadCse,
  kStaleSnapshot,
  kEvictPinned,
  kSkipDirSync,
  kRacyMerge,
};

struct OracleOptions {
  InjectedBug bug = InjectedBug::kNone;
  /// Parallel worker count for the parallelism ∈ {1, workers} leg.
  int workers = 4;
  /// Cap on inclusion chains enumerated for the normal-form check.
  size_t max_chains = 160;
  bool check_chains = true;

  /// Fault-injection leg: when non-empty, the oracle skips the
  /// differential legs and instead drives the full life cycle (build,
  /// query in every mode, export/import, mutations, journal) with a
  /// one-shot fault armed at this site (see qof/exec/fault_injector.h,
  /// FaultSites()). The leg verifies the injected failure never crashes,
  /// always surfaces a diagnosable error, leaves the system queryable,
  /// and that after recovery the state compacts to an index blob
  /// byte-identical to a from-scratch rebuild.
  std::string fault_site;
  /// 1-based ordinal of the pass through `fault_site` that fails.
  uint64_t fault_hit = 1;
};

/// The oracle's verdict on one case. `failed` means the invariants were
/// violated (a differential mismatch or a normal-form divergence) —
/// distinct from the Result-level error, which means the harness itself
/// could not run the case (e.g. an unparseable generated schema) and
/// indicates a fuzzer bug.
struct OracleOutcome {
  bool failed = false;
  std::string failure;
};

/// Runs one case through every plan kind and checks the invariants:
///  1. baseline scan, full-index auto, forced two-phase, and (when the
///     plan is exact) index-only all return identical regions and
///     RenderedValues, at parallelism 1 and `workers`;
///  2. each index subset's auto and forced two-phase runs agree with the
///     baseline (§6.3 exact subsets answer on the index, inexact ones
///     must filter — either way the answers match);
///  3. errors are consistent: if one plan rejects the query, all do;
///  4. when the case carries a mutation sequence, the sequence is applied
///     to a *built* system (incremental maintenance, serial and parallel)
///     and cross-checked: all execution modes agree on the maintained
///     system, its answers match a from-scratch rebuild of the mutated
///     corpus, and after compaction the exported index blobs are
///     byte-identical to the rebuild's;
///  5. with both query caches enabled the same query run twice returns
///     byte-identical answers to an uncached system (the second run
///     served from the caches without recomputation), and the agreement
///     survives every interleaved mutation and a final compaction —
///     old-generation cache entries are never served;
///  6. for inclusion chains enumerated from the schema's RIG, every
///     random-order rewrite walk converges to Optimize()'s normal form,
///     and re-optimizing any intermediate chain yields the same normal
///     form (Thm. 3.6);
///  7. the dataflow IR engine (lowering + CSE/pushdown/ordering/fusion +
///     batched executor) agrees with the tree evaluator on regions and
///     rendered values for every strategy, at parallelism 1 and
///     `workers`, with the query caches off and on (sharing one system,
///     so cache entries cross engines);
///  8. driven through the multi-client QueryService on a deterministic
///     interleaved-session schedule, every session's queries are
///     byte-identical to a single-threaded replay at the generation the
///     session has pinned — repeatable reads across other sessions'
///     mutations, read-your-writes after its own (see
///     qof/fuzz/session_leg.h).
/// `seed` drives the walk order and chain sampling only — the case
/// itself is fixed by `concrete_case`.
Result<OracleOutcome> RunOracle(const ConcreteCase& concrete_case,
                                const OracleOptions& options,
                                uint64_t seed);

}  // namespace qof

#endif  // QOF_FUZZ_ORACLE_H_
