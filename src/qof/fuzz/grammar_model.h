#ifndef QOF_FUZZ_GRAMMAR_MODEL_H_
#define QOF_FUZZ_GRAMMAR_MODEL_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/rng.h"

namespace qof {

/// The random structuring-schema model. Rather than emitting arbitrary
/// grammars (most of which would violate the span-containment rules every
/// structuring schema must satisfy, §4.1), the generator composes schemas
/// from a template that is correct by construction and still spans the
/// interesting RIG shapes:
///
///   File ::= (Obj)*                      -- root collection
///   Obj  ::= "obj{" f1<F1> f2<F2> ... "}"  -- the view object
///   Fi   ::= leaf | "(" (Sub / ";")* ")" | "{" (Obj)* "}"
///
/// The knobs map to the paper's structural properties: a *recursive*
/// field gives a cyclic RIG (self-nested regions, §3.2); two collection
/// fields sharing one Sub non-terminal give the Authors/Editors-style
/// *ambiguity* (two RIG paths to one name, the §6.3 counterexample);
/// tuple subs give multi-level chains. Every non-terminal is wrapped in a
/// unique literal delimiter so parent spans strictly contain child spans
/// and generated documents parse deterministically.
enum class LeafKind { kUntil, kWord, kNumber };

/// A shared sub-non-terminal reachable from collection fields.
struct SubSpec {
  std::string name;  // "ItemA", "ItemB"
  bool tuple = false;
  LeafKind leaf = LeafKind::kUntil;      // when !tuple
  LeafKind key_leaf = LeafKind::kWord;   // tuple part 1
  LeafKind val_leaf = LeafKind::kUntil;  // tuple part 2

  std::string KeyName() const { return name + "Key"; }
  std::string ValName() const { return name + "Val"; }
};

/// One attribute of the view object.
struct FieldSpec {
  enum class Kind {
    kLeaf,     // token rule
    kSet,      // collection of a SubSpec
    kRecurse,  // collection of Obj itself (cyclic RIG)
  };
  Kind kind = Kind::kLeaf;
  std::string name;                 // "Alpha", "Beta", ...
  LeafKind leaf = LeafKind::kUntil; // kLeaf only
  int sub = 0;                      // kSet: index into SchemaModel::subs
  int min_count = 0;                // kSet: 0 ('*') or 1 ('+')
};

struct SchemaModel {
  std::vector<SubSpec> subs;
  std::vector<FieldSpec> fields;  // at least one

  /// The schema in the textual format ParseSchemaText accepts.
  std::string Render() const;

  /// Grammar rules excluding the fixed root collection rule (the shrinker
  /// reports repro size in these units): the Obj rule, one per field, and
  /// one (or three, for tuples) per *referenced* sub.
  int NumProductions() const;

  /// Non-terminals whose rule is a token rule — the RIG's sink nodes.
  /// Query paths end here: a sink's region text equals its flattened
  /// database value, so every plan kind renders projections identically.
  std::vector<std::string> SinkNames() const;

  bool HasRecursion() const;

  /// Sub indexes actually referenced by some kSet field.
  std::vector<int> UsedSubs() const;
};

struct SchemaGenOptions {
  int min_fields = 1;
  int max_fields = 4;
  int max_subs = 2;
  double set_rate = 0.45;       // a field is a collection
  double recursion_rate = 0.3;  // append a recursive field
  double ambiguity_rate = 0.5;  // collection fields share one sub
  double tuple_rate = 0.4;      // a sub is a two-part tuple
  double number_rate = 0.2;     // a leaf is numeric
};

SchemaModel GenerateSchemaModel(FuzzRng& rng, const SchemaGenOptions& options);

/// All single-step schema reductions (drop a field, collapse a collection
/// or recursive field to a leaf, collapse a tuple sub to a leaf) — the
/// shrinker's "drop productions" moves.
std::vector<SchemaModel> SchemaReductions(const SchemaModel& model);

/// The corpus is described, not stored: per-document object counts plus a
/// content seed regenerate identical text, so the shrinker can drop
/// documents and objects and re-render deterministically.
struct CorpusModel {
  std::vector<int> doc_objects;  // top-level objects per document
  uint32_t content_seed = 1;
  int max_depth = 1;      // nesting under recursive fields
  int max_items = 3;      // collection items per field
  double probe_rate = 0.3;  // leaf content uses the probe word

  /// Bench-scale knobs — defaults leave fuzzing behavior untouched.
  /// `scale` multiplies every document's object count at render time
  /// (the model stays shrinkable in its original units); `zipf_s > 0`
  /// draws leaf words rank-Zipfian (weight ∝ 1/rank^s) from the larger
  /// BenchVocab() instead of uniformly from FuzzVocab(), giving bench
  /// corpora the skewed posting-length distribution real text has.
  int scale = 1;
  double zipf_s = 0.0;
};

CorpusModel GenerateCorpusModel(FuzzRng& rng);

std::vector<CorpusModel> CorpusReductions(const CorpusModel& model);

/// Renders the documents for (schema, corpus): (name, text) pairs.
std::vector<std::pair<std::string, std::string>> RenderDocs(
    const SchemaModel& schema, const CorpusModel& corpus);

/// The closed word list leaf content draws from; delimiters never collide
/// with it, so word-index lookups hit content only where intended.
const std::vector<std::string>& FuzzVocab();

/// The benchmark word list (FuzzVocab plus generated alphanumeric words,
/// a few hundred total) — large enough that a Zipfian rank distribution
/// produces both hot words with long postings and a tail of rare ones.
const std::vector<std::string>& BenchVocab();

/// Deterministic benchmark corpus built on the grammar model: a fixed,
/// fully-featured schema (leaf, shared collection, tuple collection,
/// recursion) plus documents rendered until `target_bytes` is reached.
/// Same spec → same bytes, so 100 MB+ corpora regenerate from a seed
/// instead of being checked in.
struct BenchCorpusSpec {
  uint32_t seed = 1;
  size_t target_bytes = 1 << 20;
  double zipf_s = 1.1;        // word-rank skew; 0 = uniform
  int objects_per_doc = 512;  // scaling granularity (one doc ≈ 40 KiB)
};

struct BenchCorpus {
  std::string schema_text;
  std::vector<std::pair<std::string, std::string>> docs;
  size_t total_bytes = 0;
};

BenchCorpus MakeBenchCorpus(const BenchCorpusSpec& spec);

/// The planted probe word query literals are biased toward, so equality
/// and containment predicates have non-empty answers often enough.
inline constexpr const char* kFuzzProbeWord = "zulu";

}  // namespace qof

#endif  // QOF_FUZZ_GRAMMAR_MODEL_H_
