#ifndef QOF_FUZZ_SESSION_LEG_H_
#define QOF_FUZZ_SESSION_LEG_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"
#include "qof/schema/structuring_schema.h"
#include "qof/util/status.h"

namespace qof {

/// The interleaved-session leg: drives the case's mutation sequence
/// through a QueryService with several concurrently open sessions on a
/// deterministic (seed-derived) schedule — sessions query before and
/// after every mutation, the mutating session rotates, and sessions
/// occasionally REFRESH to the latest generation.
///
/// Invariant checked: every query a session runs is byte-identical
/// (regions and rendered values) to a fresh single-threaded incremental
/// replay of the document state at the session's pinned generation —
/// repeatable reads for non-mutators, read-your-writes for the mutator.
/// Pin metadata is cross-checked too (a session's reported generation
/// must equal the number of mutations it had observed at pin time).
///
/// This is the leg that catches kStaleSnapshot
/// (ServiceOptions::inject_stale_snapshot), which silently serves a
/// pinned session's queries from the live state instead of its snapshot.
///
/// Same conventions as the oracle's other legs: a Status error means the
/// harness broke (e.g. a mutation that cannot apply); a filled `failure`
/// means the isolation invariant was violated.
Status CheckSessions(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure);

}  // namespace qof

#endif  // QOF_FUZZ_SESSION_LEG_H_
