#include "qof/fuzz/repro.h"

#include <sstream>

namespace qof {
namespace {

constexpr char kMagic[] = "qof-fuzz-repro v1";

void WriteHeredoc(std::ostringstream& out, const std::string& body) {
  // Always one '\n' between body and END: a body that itself ends in
  // '\n' then shows an explicit empty line before END, and the reader's
  // join-with-'\n' recovers every body byte-exactly (schema text ends
  // with a newline, document text does not — both must round-trip).
  out << " <<END\n" << body << "\nEND\n";
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

}  // namespace

std::string InjectedBugName(InjectedBug bug) {
  switch (bug) {
    case InjectedBug::kNone:
      return "none";
    case InjectedBug::kRelaxDirect:
      return "relax-direct";
    case InjectedBug::kExactSkip:
      return "exact-skip";
    case InjectedBug::kDropTombstone:
      return "drop-tombstone";
    case InjectedBug::kStaleCache:
      return "stale-cache";
    case InjectedBug::kBadCse:
      return "bad-cse";
    case InjectedBug::kStaleSnapshot:
      return "stale-snapshot";
    case InjectedBug::kEvictPinned:
      return "evict-pinned";
    case InjectedBug::kSkipDirSync:
      return "skip-dir-sync";
    case InjectedBug::kRacyMerge:
      return "racy-merge";
  }
  return "none";
}

Result<InjectedBug> InjectedBugFromName(std::string_view name) {
  if (name == "none") return InjectedBug::kNone;
  if (name == "relax-direct") return InjectedBug::kRelaxDirect;
  if (name == "exact-skip") return InjectedBug::kExactSkip;
  if (name == "drop-tombstone") return InjectedBug::kDropTombstone;
  if (name == "stale-cache") return InjectedBug::kStaleCache;
  if (name == "bad-cse") return InjectedBug::kBadCse;
  if (name == "stale-snapshot") return InjectedBug::kStaleSnapshot;
  if (name == "evict-pinned") return InjectedBug::kEvictPinned;
  if (name == "skip-dir-sync") return InjectedBug::kSkipDirSync;
  if (name == "racy-merge") return InjectedBug::kRacyMerge;
  return Status::InvalidArgument("unknown injected bug name: " +
                                 std::string(name));
}

std::string WriteRepro(const ReproFile& repro) {
  const ConcreteCase& c = repro.concrete_case;
  std::ostringstream out;
  out << kMagic << "\n";
  out << "seed: " << repro.seed << "\n";
  out << "inject: " << InjectedBugName(repro.bug) << "\n";
  if (!repro.fault_site.empty()) {
    out << "inject-fault: " << repro.fault_site << " " << repro.fault_hit
        << "\n";
  }
  out << "expect-valid: " << (c.expect_valid ? 1 : 0) << "\n";
  if (!c.canned.empty()) {
    out << "canned: " << c.canned << " " << c.canned_seed << " "
        << c.canned_entries << "\n";
  }
  for (const std::vector<std::string>& subset : c.subsets) {
    out << "subset:";
    for (const std::string& name : subset) out << " " << name;
    out << "\n";
  }
  out << "query: " << c.fql << "\n";
  if (c.canned.empty()) {
    out << "schema";
    WriteHeredoc(out, c.schema_text);
    for (const auto& [name, text] : c.docs) {
      out << "doc " << name;
      WriteHeredoc(out, text);
    }
  }
  for (const MutationStep& m : c.mutations) {
    switch (m.op) {
      case MutationStep::Op::kAdd:
        out << "mutate add " << m.name;
        WriteHeredoc(out, m.text);
        break;
      case MutationStep::Op::kUpdate:
        out << "mutate update " << m.name;
        WriteHeredoc(out, m.text);
        break;
      case MutationStep::Op::kRemove:
        out << "mutate remove " << m.name << "\n";
        break;
    }
  }
  return out.str();
}

Result<ReproFile> ParseRepro(std::string_view text) {
  ReproFile repro;
  ConcreteCase& c = repro.concrete_case;

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(pos));
      break;
    }
    lines.emplace_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  // A trailing newline produces one empty final line; drop it.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();

  if (lines.empty() || lines[0] != kMagic) {
    return Status::ParseError("repro: missing '" + std::string(kMagic) +
                              "' header");
  }

  // Reads a heredoc starting after the "... <<END" line at index i;
  // returns the index of the line after the closing END.
  auto read_heredoc = [&](size_t i, std::string* body) -> Result<size_t> {
    std::string out;
    bool first = true;
    for (; i < lines.size(); ++i) {
      if (lines[i] == "END") {
        *body = std::move(out);
        return i + 1;
      }
      if (!first) out += "\n";
      out += lines[i];
      first = false;
    }
    return Status::ParseError("repro: unterminated heredoc");
  };

  bool saw_query = false;
  size_t i = 1;
  while (i < lines.size()) {
    const std::string& line = lines[i];
    if (line.empty()) {
      ++i;
      continue;
    }
    if (line.rfind("seed: ", 0) == 0) {
      repro.seed = std::stoull(line.substr(6));
      ++i;
    } else if (line.rfind("inject: ", 0) == 0) {
      QOF_ASSIGN_OR_RETURN(repro.bug, InjectedBugFromName(line.substr(8)));
      ++i;
    } else if (line.rfind("inject-fault: ", 0) == 0) {
      std::vector<std::string> words = SplitWords(line.substr(14));
      if (words.empty() || words.size() > 2) {
        return Status::ParseError("repro: inject-fault wants <site> [hit]");
      }
      repro.fault_site = words[0];
      repro.fault_hit = words.size() == 2 ? std::stoull(words[1]) : 1;
      ++i;
    } else if (line.rfind("expect-valid: ", 0) == 0) {
      c.expect_valid = line.substr(14) != "0";
      ++i;
    } else if (line.rfind("canned: ", 0) == 0) {
      std::vector<std::string> words = SplitWords(line.substr(8));
      if (words.size() != 3) {
        return Status::ParseError("repro: canned wants <kind> <seed> <n>");
      }
      c.canned = words[0];
      c.canned_seed = static_cast<uint32_t>(std::stoul(words[1]));
      c.canned_entries = std::stoi(words[2]);
      ++i;
    } else if (line.rfind("subset:", 0) == 0) {
      c.subsets.push_back(SplitWords(line.substr(7)));
      ++i;
    } else if (line.rfind("query: ", 0) == 0) {
      c.fql = line.substr(7);
      saw_query = true;
      ++i;
    } else if (line == "schema <<END") {
      QOF_ASSIGN_OR_RETURN(i, read_heredoc(i + 1, &c.schema_text));
    } else if (line.rfind("mutate ", 0) == 0) {
      std::string rest = line.substr(7);
      MutationStep m;
      if (rest.rfind("remove ", 0) == 0) {
        m.op = MutationStep::Op::kRemove;
        m.name = rest.substr(7);
        if (m.name.empty()) {
          return Status::ParseError("repro: mutate remove wants a name");
        }
        ++i;
      } else {
        bool is_add = rest.rfind("add ", 0) == 0;
        if (!is_add && rest.rfind("update ", 0) != 0) {
          return Status::ParseError(
              "repro: mutate wants add | update | remove");
        }
        m.op = is_add ? MutationStep::Op::kAdd : MutationStep::Op::kUpdate;
        size_t skip = is_add ? 4 : 7;
        size_t marker = rest.rfind(" <<END");
        if (marker == std::string::npos || marker <= skip) {
          return Status::ParseError(
              "repro: mutate wants 'mutate <op> <name> <<END'");
        }
        m.name = rest.substr(skip, marker - skip);
        QOF_ASSIGN_OR_RETURN(i, read_heredoc(i + 1, &m.text));
      }
      c.mutations.push_back(std::move(m));
    } else if (line.rfind("doc ", 0) == 0) {
      size_t marker = line.rfind(" <<END");
      if (marker == std::string::npos || marker <= 4) {
        return Status::ParseError("repro: doc wants 'doc <name> <<END'");
      }
      std::string name = line.substr(4, marker - 4);
      std::string body;
      QOF_ASSIGN_OR_RETURN(i, read_heredoc(i + 1, &body));
      c.docs.emplace_back(std::move(name), std::move(body));
    } else {
      return Status::ParseError("repro: unrecognized line: " + line);
    }
  }
  if (!saw_query) return Status::ParseError("repro: missing query line");
  if (c.canned.empty() && c.schema_text.empty()) {
    return Status::ParseError("repro: neither canned nor schema present");
  }
  return repro;
}

Result<OracleOutcome> ReplayRepro(std::string_view text, int workers) {
  QOF_ASSIGN_OR_RETURN(ReproFile repro, ParseRepro(text));
  OracleOptions options;
  options.bug = repro.bug;
  options.fault_site = repro.fault_site;
  options.fault_hit = repro.fault_hit;
  if (workers > 0) options.workers = workers;
  return RunOracle(repro.concrete_case, options, repro.seed);
}

}  // namespace qof
