#include "qof/fuzz/disk_leg.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "qof/engine/system.h"
#include "qof/fuzz/canon.h"
#include "qof/store/store_format.h"

namespace qof {
namespace {

/// One temp store file per oracle invocation; seed + pid keep parallel
/// fuzz runs out of each other's way.
std::string StorePath(uint64_t seed) {
  return "/tmp/qof-fuzz-disk-" + std::to_string(::getpid()) + "-" +
         std::to_string(seed) + ".qofstore";
}

/// Deletes the temp file however the leg exits.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

}  // namespace

Status CheckDiskTier(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure) {
  auto make_system = [&]() {
    auto system = std::make_unique<FileQuerySystem>(schema);
    for (const auto& [name, text] : docs) {
      (void)system->AddFile(name, text);
    }
    return system;
  };

  // The in-memory truth: full indexes, serial execution.
  std::unique_ptr<FileQuerySystem> mem = make_system();
  mem->SetParallelism(1);
  if (!mem->BuildIndexes(IndexSpec::Full()).ok()) {
    return Status::OK();  // the index legs report build failures
  }

  const std::string path = StorePath(seed);
  FileGuard guard{path};
  // 256-byte pages spread even a small corpus's posting streams over
  // several pages, so lazy paging, block skipping and (injected) pinned
  // multi-page reads all actually happen.
  QOF_RETURN_IF_ERROR(mem->SaveStore(path, /*page_size=*/256));

  std::unique_ptr<FileQuerySystem> disk = make_system();
  disk->SetParallelism(1);
  PagedStoreOptions store_options;
  // Clean runs get a pool big enough for the longest pinned read; the
  // injected bug needs a pool *smaller* than a multi-page stream so the
  // victim scan has to steal one of the read's own pinned frames — with
  // a single frame, any stream crossing a page boundary triggers it.
  const bool inject = options.bug == InjectedBug::kEvictPinned;
  store_options.pool_pages = inject ? 1 : 64;
  store_options.inject_evict_pinned = inject;
  QOF_RETURN_IF_ERROR(disk->OpenStore(path, store_options));

  CanonExec baseline = Canon(mem->Execute(c.fql, ExecutionMode::kAuto));
  if (!Agrees("disk/auto", baseline,
              Canon(disk->Execute(c.fql, ExecutionMode::kAuto)), c,
              failure)) {
    return Status::OK();
  }
  if (!Agrees("disk/two-phase",
              Canon(mem->Execute(c.fql, ExecutionMode::kTwoPhase)),
              Canon(disk->Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              failure)) {
    return Status::OK();
  }
  auto plan = mem->Plan(c.fql);
  if (plan.ok() && plan->exact) {
    if (!Agrees("disk/index-only",
                Canon(mem->Execute(c.fql, ExecutionMode::kIndexOnly)),
                Canon(disk->Execute(c.fql, ExecutionMode::kIndexOnly)), c,
                failure)) {
      return Status::OK();
    }
  }

  // Force full materialization: every region instance and posting list
  // pages in (through whatever the pool does to pinned frames), and the
  // re-export must reproduce the original blob byte-for-byte. This is
  // the check that corners kEvictPinned even when the query above never
  // crossed a stolen frame.
  auto mem_blob = mem->ExportIndexes();
  if (!mem_blob.ok()) return mem_blob.status();
  auto disk_blob = disk->ExportIndexes();
  if (!disk_blob.ok()) {
    *failure = "[disk/export] full materialization from the store failed: " +
               disk_blob.status().ToString() + " (fql: " + c.fql + ")";
    return Status::OK();
  }
  if (*mem_blob != *disk_blob) {
    *failure =
        "[disk/export] store round trip changed the index bytes: "
        "re-export from the paged store (" +
        std::to_string(disk_blob->size()) +
        " bytes) differs from the in-memory export (" +
        std::to_string(mem_blob->size()) + " bytes) (fql: " + c.fql + ")";
    return Status::OK();
  }
  return Status::OK();
}

}  // namespace qof
