#include "qof/fuzz/crash_leg.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qof/engine/index_io.h"
#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/maintain/durable_dir.h"
#include "qof/maintain/journal.h"
#include "qof/maintain/maintainer.h"
#include "qof/store/fault_vfs.h"
#include "qof/store/vfs.h"
#include "qof/text/corpus.h"

namespace qof {
namespace {

constexpr uint64_t kNoCommit = ~uint64_t{0};

/// Zeroes the maintenance-generation field (bytes [8, 16)) so blobs from
/// different recovery depths compare byte-equal (the v3 checksum does
/// not cover the generation; same convention as the maintenance leg).
std::string StripGeneration(std::string blob) {
  if (blob.size() >= 16) {
    std::fill(blob.begin() + 8, blob.begin() + 16, '\0');
  }
  return blob;
}

/// Everything the I/O trace writes, precomputed once: the replayed
/// traces differ only in where the power dies, so the in-memory side
/// (index builds, mutation application, the checkpoint blob) is shared
/// across all crash points.
struct TraceArtifacts {
  std::string blob0;                  // generation-0 blob Create publishes
  std::vector<JournalRecord> records; // one per mutation, in order
  /// Index into `records` after whose append the trace checkpoints
  /// (compacted blob + fresh journal), exercising the manifest swing.
  size_t checkpoint_after = 0;
  std::string checkpoint_blob;
  uint64_t checkpoint_generation = 0;
};

/// One maintained system built from the base docs; mutations applied
/// through it. Compaction is explicit (the trace's checkpoint), like the
/// CLI.
struct Maintained {
  Corpus corpus;
  BuiltIndexes built;
  std::unique_ptr<IndexMaintainer> maintainer;
};

Result<std::unique_ptr<Maintained>> BuildBase(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs) {
  auto m = std::make_unique<Maintained>();
  for (const auto& [name, text] : docs) {
    QOF_RETURN_IF_ERROR(m->corpus.AddDocument(name, text).status());
  }
  QOF_ASSIGN_OR_RETURN(m->built,
                       BuildIndexes(schema, m->corpus, IndexSpec::Full()));
  MaintainOptions options;
  options.auto_compact = false;
  m->maintainer = std::make_unique<IndexMaintainer>(
      &schema, &m->corpus, &m->built, IndexSpec::Full(), options);
  return m;
}

Status ApplyStep(IndexMaintainer* maintainer, const MutationStep& m) {
  switch (m.op) {
    case MutationStep::Op::kAdd:
      return maintainer->AddDocument(m.name, m.text).status();
    case MutationStep::Op::kUpdate:
      return maintainer->UpdateDocument(m.name, m.text).status();
    case MutationStep::Op::kRemove:
      return maintainer->RemoveDocument(m.name);
  }
  return Status::Internal("unreachable mutation op");
}

JournalRecord RecordFor(const MutationStep& m, uint64_t generation) {
  JournalRecord record;
  record.generation = generation;
  record.name = m.name;
  switch (m.op) {
    case MutationStep::Op::kAdd:
      record.op = JournalOp::kAdd;
      record.text = m.text;
      break;
    case MutationStep::Op::kUpdate:
      record.op = JournalOp::kUpdate;
      record.text = m.text;
      break;
    case MutationStep::Op::kRemove:
      record.op = JournalOp::kRemove;
      break;
  }
  return record;
}

/// The canonical blob for "base docs + the first `g` mutations": applied
/// directly, compacted, serialized. Crash recovery at any point must
/// land on one of these — never in between.
Result<std::string> ReferenceBlob(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const std::vector<MutationStep>& mutations, uint64_t g) {
  QOF_ASSIGN_OR_RETURN(std::unique_ptr<Maintained> m,
                       BuildBase(schema, docs));
  for (uint64_t i = 0; i < g; ++i) {
    QOF_RETURN_IF_ERROR(ApplyStep(m->maintainer.get(), mutations[i]));
  }
  QOF_RETURN_IF_ERROR(m->maintainer->Compact());
  return SerializeIndexes(m->built, IndexSpec::Full(), m->corpus,
                          m->maintainer->generation());
}

/// Replays the precomputed trace against `vfs` until it completes or the
/// armed crash point kills an I/O op. Returns the durability floor: the
/// highest generation whose append (or checkpoint) was acknowledged
/// before the cut, kNoCommit when not even Create() returned.
uint64_t RunIoTrace(Vfs* vfs, const std::string& dir,
                    const TraceArtifacts& artifacts) {
  // Append() routes through DefaultVfs (the journal module's path), so
  // the override must cover the whole trace.
  ScopedVfs scoped(vfs);
  uint64_t floor = kNoCommit;
  auto created = DurableIndexDir::Create(vfs, dir, artifacts.blob0,
                                         /*generation=*/0);
  if (!created.ok()) return floor;
  floor = 0;
  for (size_t j = 0; j < artifacts.records.size(); ++j) {
    if (!created->Append(artifacts.records[j]).ok()) return floor;
    floor = artifacts.records[j].generation;
    if (j == artifacts.checkpoint_after) {
      if (!created
               ->Checkpoint(artifacts.checkpoint_blob,
                            artifacts.checkpoint_generation)
               .ok()) {
        return floor;
      }
    }
  }
  return floor;
}

}  // namespace

Status CheckCrashConsistency(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure) {
  if (c.mutations.empty()) return Status::OK();

  const bool planted = options.bug == InjectedBug::kSkipDirSync;
  const std::string dir = "idx";

  // --- Precompute the trace (shared across every crash point) ----------
  auto base = BuildBase(schema, docs);
  if (!base.ok()) return Status::OK();  // the index legs report this
  TraceArtifacts artifacts;
  {
    std::unique_ptr<Maintained>& m = *base;
    auto blob0 = SerializeIndexes(m->built, IndexSpec::Full(), m->corpus,
                                  m->maintainer->generation());
    if (!blob0.ok()) return blob0.status();
    artifacts.blob0 = std::move(*blob0);
    artifacts.checkpoint_after = c.mutations.size() / 2;
    for (size_t j = 0; j < c.mutations.size(); ++j) {
      Status applied = ApplyStep(m->maintainer.get(), c.mutations[j]);
      if (!applied.ok()) {
        // A shrink artifact (a dropped add orphaned a later step), not a
        // finding — mirror the maintenance leg and refuse the case.
        return Status::Internal("crash leg: mutation " +
                                std::to_string(j) + " (" +
                                c.mutations[j].name +
                                ") failed: " + applied.ToString());
      }
      if (m->maintainer->generation() != j + 1) {
        return Status::Internal(
            "crash leg: generation did not track mutations (" +
            std::to_string(m->maintainer->generation()) + " after " +
            std::to_string(j + 1) + " steps)");
      }
      artifacts.records.push_back(
          RecordFor(c.mutations[j], m->maintainer->generation()));
      if (j == artifacts.checkpoint_after) {
        uint64_t before = m->maintainer->generation();
        QOF_RETURN_IF_ERROR(m->maintainer->Compact());
        if (m->maintainer->generation() != before) {
          return Status::Internal(
              "crash leg: Compact() moved the generation counter");
        }
        auto ckpt = SerializeIndexes(m->built, IndexSpec::Full(),
                                     m->corpus, before);
        if (!ckpt.ok()) return ckpt.status();
        artifacts.checkpoint_blob = std::move(*ckpt);
        artifacts.checkpoint_generation = before;
      }
    }
  }

  // --- Dry run: count the trace's I/O ops (the crash-point domain) -----
  uint64_t total_ops = 0;
  {
    FaultVfs dry;
    dry.set_skip_dir_sync(planted);
    uint64_t floor = RunIoTrace(&dry, dir, artifacts);
    if (floor != c.mutations.size()) {
      return Status::Internal(
          "crash leg: fault-free trace did not complete (floor " +
          std::to_string(floor) + " of " +
          std::to_string(c.mutations.size()) + ")");
    }
    total_ops = dry.op_count();
  }

  // Canonical per-generation blobs, computed lazily: most crash points
  // recover to one of a handful of generations.
  std::map<uint64_t, std::string> reference;
  auto reference_blob = [&](uint64_t g) -> Result<std::string> {
    auto it = reference.find(g);
    if (it != reference.end()) return it->second;
    QOF_ASSIGN_OR_RETURN(std::string blob,
                         ReferenceBlob(schema, docs, c.mutations, g));
    reference.emplace(g, blob);
    return blob;
  };

  // --- The sweep: die at every op, come back up, recover, check --------
  for (uint64_t crash_op = 0; crash_op < total_ops; ++crash_op) {
    auto fail = [&](const std::string& what) {
      *failure = "[crash-sweep op " + std::to_string(crash_op) + "/" +
                 std::to_string(total_ops) + "] " + what +
                 " (fql: " + c.fql + ")";
      return Status::OK();
    };

    FaultVfs vfs;
    vfs.set_skip_dir_sync(planted);
    vfs.set_crash_at_op(crash_op);
    uint64_t floor = RunIoTrace(&vfs, dir, artifacts);
    if (!vfs.crashed()) {
      return Status::Internal("crash leg: op " + std::to_string(crash_op) +
                              " of " + std::to_string(total_ops) +
                              " never fired");
    }
    vfs.CutPower(seed ^ (crash_op * 0x9e3779b97f4a7c15ull + 0xa11ceull));

    // Recovery, the CLI's path: manifest → blob → journal replay.
    ScopedVfs scoped(&vfs);
    auto opened = DurableIndexDir::Open(&vfs, dir);
    if (!opened.ok()) {
      if (floor != kNoCommit) {
        return fail("recovery failed after generation " +
                    std::to_string(floor) + " was acknowledged durable: " +
                    opened.status().ToString());
      }
      continue;  // nothing was ever committed; an empty directory is fine
    }

    auto blob = opened->ReadBlob();
    if (!blob.ok()) {
      return fail("committed blob unreadable: " + blob.status().ToString());
    }
    auto info = ReadBlobInfo(*blob);
    if (!info.ok()) {
      return fail("committed blob undecodable: " +
                  info.status().ToString());
    }
    const uint64_t blob_generation = opened->generation();
    if (info->generation != blob_generation) {
      return fail("manifest generation " + std::to_string(blob_generation) +
                  " but the blob it names carries generation " +
                  std::to_string(info->generation));
    }
    if (blob_generation > c.mutations.size()) {
      return fail("recovered blob from the future (generation " +
                  std::to_string(blob_generation) + " of " +
                  std::to_string(c.mutations.size()) + " mutations)");
    }

    // Rebuild the corpus at the blob's generation from the known history
    // and check every fingerprint: a committed blob may only describe
    // documents that actually existed at that generation.
    std::map<std::string, std::string> texts;
    for (const auto& [name, text] : docs) texts[name] = text;
    for (uint64_t i = 0; i < blob_generation; ++i) {
      const MutationStep& m = c.mutations[i];
      if (m.op == MutationStep::Op::kRemove) {
        texts.erase(m.name);
      } else {
        texts[m.name] = m.text;
      }
    }
    Corpus corpus;
    for (const DocFingerprint& doc : info->docs) {
      auto it = texts.find(doc.name);
      if (it == texts.end() || it->second.size() != doc.size ||
          CorpusFingerprint(it->second) != doc.fnv1a) {
        return fail("recovered blob names document '" + doc.name +
                    "' with a fingerprint no generation-" +
                    std::to_string(blob_generation) + " state ever had");
      }
      QOF_RETURN_IF_ERROR(
          corpus.AddDocument(doc.name, it->second).status());
    }

    auto loaded = DeserializeIndexes(*blob, corpus, DeserializeOptions{});
    if (!loaded.ok()) {
      return fail("committed blob failed to deserialize: " +
                  loaded.status().ToString());
    }
    MaintainOptions maintain_options;
    maintain_options.auto_compact = false;
    IndexMaintainer maintainer(&schema, &corpus, &loaded->indexes,
                               loaded->spec, maintain_options);
    maintainer.set_generation(loaded->generation);

    auto records = opened->ReadJournal();
    if (!records.ok()) {
      return fail("committed journal unreadable: " +
                  records.status().ToString());
    }
    // Surviving frames must be real appended records, in order — the
    // frame checksums admit garbage never, prefixes only.
    for (size_t k = 0; k < records->size(); ++k) {
      const JournalRecord& r = (*records)[k];
      if (r.generation != blob_generation + k + 1 ||
          r.generation > c.mutations.size() ||
          r != RecordFor(c.mutations[r.generation - 1], r.generation)) {
        return fail("journal frame " + std::to_string(k) +
                    " (generation " + std::to_string(r.generation) +
                    ") is not the record that was appended");
      }
    }
    Status replayed = ReplayJournal(*records, &maintainer);
    if (!replayed.ok()) {
      return fail("journal replay failed: " + replayed.ToString());
    }

    const uint64_t recovered = maintainer.generation();
    if (floor != kNoCommit && recovered < floor) {
      return fail("acknowledged generation " + std::to_string(floor) +
                  " was lost: recovered only generation " +
                  std::to_string(recovered));
    }

    // The recovered state must be byte-identical (compacted, generation
    // stripped) to a direct application of exactly `recovered` steps.
    Status compacted = maintainer.Compact();
    if (!compacted.ok()) {
      return fail("recovered state failed to compact: " +
                  compacted.ToString());
    }
    auto recovered_blob =
        SerializeIndexes(loaded->indexes, loaded->spec, corpus,
                         maintainer.generation());
    if (!recovered_blob.ok()) return recovered_blob.status();
    auto expect = reference_blob(recovered);
    if (!expect.ok()) return expect.status();
    if (StripGeneration(*recovered_blob) != StripGeneration(*expect)) {
      return fail("recovered state at generation " +
                  std::to_string(recovered) +
                  " diverges from direct application of the same " +
                  "prefix (" + std::to_string(recovered_blob->size()) +
                  " vs " + std::to_string(expect->size()) + " blob bytes)");
    }
  }
  return Status::OK();
}

}  // namespace qof
