#ifndef QOF_FUZZ_QUERY_GEN_H_
#define QOF_FUZZ_QUERY_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "qof/fuzz/rng.h"
#include "qof/query/ast.h"
#include "qof/rig/rig.h"

namespace qof {

/// One WHERE-clause leaf of a generated query.
struct QueryAtom {
  enum class Op { kEqLiteral, kContains, kStarts, kEqPath };
  Op op = Op::kEqLiteral;
  std::vector<PathStep> lhs;
  std::vector<PathStep> rhs;  // kEqPath
  std::string literal;        // the other ops
};

/// A generated condition tree: atoms combined by AND / OR / NOT.
struct QueryNode {
  enum class Kind { kAtom, kAnd, kOr, kNot };
  Kind kind = Kind::kAtom;
  QueryAtom atom;
  std::vector<QueryNode> kids;  // 2 for kAnd/kOr, 1 for kNot
};

/// A generated FQL query in model form, so the shrinker can drop atoms
/// and the projection structurally instead of editing strings.
struct QueryModel {
  std::string view;  // e.g. "Objs"
  std::string var = "r";
  std::vector<PathStep> target;  // empty: SELECT r
  std::optional<QueryNode> where;

  std::string Render() const;
  int AtomCount() const;
};

struct QueryGenOptions {
  double projection_rate = 0.3;
  double where_rate = 0.85;
  double wildcard_rate = 0.15;
  double bogus_rate = 0.06;  // off-schema attribute (error-path class)
  double join_rate = 0.1;
  int max_tree_depth = 2;
  int max_path_len = 5;
};

/// Emits a query whose paths are random walks on `rig` from the view
/// node, ending at sink non-terminals (see SchemaModel::SinkNames for
/// why), with occasional *X / ?X wildcards and off-schema attributes.
QueryModel GenerateQuery(FuzzRng& rng, const Rig& rig,
                         const std::string& view_node,
                         const std::string& view_name,
                         const std::vector<std::string>& literals,
                         const QueryGenOptions& options);

/// All single-step query reductions: drop the WHERE clause, drop the
/// projection, or replace an AND/OR/NOT node by one of its children.
std::vector<QueryModel> QueryReductions(const QueryModel& model);

/// Turns a valid FQL string into a (likely) invalid one: truncation,
/// unbalanced operators, stray characters, duplicated keywords, an
/// unknown view name. Parsers must diagnose these, never crash.
std::string MutateToInvalid(FuzzRng& rng, const std::string& fql);

}  // namespace qof

#endif  // QOF_FUZZ_QUERY_GEN_H_
