#include "qof/fuzz/fuzzer.h"

#include <set>
#include <vector>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/datagen/seed.h"
#include "qof/engine/index_spec.h"
#include "qof/exec/fault_injector.h"
#include "qof/fuzz/repro.h"
#include "qof/fuzz/rng.h"
#include "qof/fuzz/shrink.h"
#include "qof/schema/rig_derivation.h"
#include "qof/schema/schema_text.h"

namespace qof {
namespace {

/// The oracle seed of iteration `i` — also what the repro file records.
uint64_t IterationSeed(const FuzzOptions& options, int i) {
  return (options.seed + 1) * 0x9e3779b97f4a7c15ull ^
         (static_cast<uint64_t>(i) * 0xbf58476d1ce4e5b9ull);
}

struct CannedInfo {
  const char* kind;
  const char* view_node;
  const char* view_name;  // the alias used in FROM clauses
  std::vector<std::string> literals;
};

const std::vector<CannedInfo>& CannedCorpora() {
  static const std::vector<CannedInfo> kCanned = {
      {"bibtex", "Reference", "References", {"Chang", "Chang", "systems"}},
      {"mail", "Message", "Messages", {"Chang", "Dana", "meeting"}},
      {"log", "Entry", "Entrys", {"ERROR", "INFO", "session"}},
      {"outline", "Section", "Sections",
       {"Optimization", "Optimization", "prose"}},
  };
  return kCanned;
}

Result<StructuringSchema> CannedSchema(const std::string& kind) {
  if (kind == "bibtex") return BibtexSchema();
  if (kind == "mail") return MailSchema();
  if (kind == "log") return LogSchema();
  return OutlineSchema();
}

/// Random index subsets over the schema's indexable names. The view is
/// included often (0.75) so the two-phase leg usually runs; everything
/// else at 0.45 lands half way between full and view-only — the §6.3
/// exact/inexact boundary the fuzzer is hunting.
std::vector<std::vector<std::string>> MakeSubsets(
    FuzzRng& rng, const StructuringSchema& schema,
    const std::string& view_node, int count) {
  std::set<std::string> pool = IndexSpec::Full().IndexedNames(schema);
  std::vector<std::vector<std::string>> out;
  for (int s = 0; s < count; ++s) {
    std::vector<std::string> subset;
    for (const std::string& name : pool) {
      double keep = name == view_node ? 0.75 : 0.45;
      if (rng.Chance(keep)) subset.push_back(name);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

std::string CannedDocName(const std::string& kind) {
  if (kind == "bibtex") return "corpus.bib";
  if (kind == "mail") return "corpus.mbox";
  if (kind == "log") return "corpus.log";
  return "corpus.outline";
}

/// A small document that parses under the canned schema: one or two
/// entries from the matching datagen generator with a derived seed.
std::string CannedMutationText(const std::string& kind, uint32_t seed,
                               int entries) {
  if (kind == "bibtex") {
    BibtexGenOptions o;
    o.num_references = entries;
    o.seed = seed;
    o.probe_author_rate = 0.3;
    return GenerateBibtex(o);
  }
  if (kind == "mail") {
    MailGenOptions o;
    o.num_messages = entries;
    o.seed = seed;
    o.probe_sender_rate = 0.3;
    return GenerateMailbox(o);
  }
  if (kind == "log") {
    LogGenOptions o;
    o.num_entries = entries * 2;
    o.seed = seed;
    o.error_rate = 0.2;
    o.num_sessions = 2;
    return GenerateLog(o);
  }
  OutlineGenOptions o;
  o.num_top_sections = entries;
  o.seed = seed;
  o.max_depth = 2;
  o.probe_title_rate = 0.25;
  return GenerateOutline(o);
}

/// Renders one document's worth of content for a mutation step. Texts
/// are concrete from here on: they parse under the schema by
/// construction, and occasionally come back empty (the update-to-empty
/// edge the maintainer must splice cleanly).
std::string MutationText(FuzzRng& rng, const FuzzCase& fuzz_case,
                         uint32_t step_seed) {
  if (rng.Chance(0.1)) return "";
  if (!fuzz_case.canned.empty()) {
    return CannedMutationText(fuzz_case.canned, step_seed, rng.Range(1, 2));
  }
  CorpusModel content;
  content.doc_objects = {rng.Range(1, 3)};
  content.content_seed = step_seed;
  content.max_depth = fuzz_case.corpus.max_depth;
  content.max_items = fuzz_case.corpus.max_items;
  content.probe_rate = fuzz_case.corpus.probe_rate;
  return RenderDocs(fuzz_case.schema, content)[0].second;
}

/// The mutation_gen stage: a short random add/update/remove sequence
/// over the case's documents. Targets track liveness so every step
/// applies cleanly (updates and removes always name a live document, a
/// remove never empties the corpus — that edge lives in the unit tests).
void GenerateMutations(FuzzRng& rng, const FuzzOptions& options, int i,
                       FuzzCase* fuzz_case) {
  std::vector<std::string> live;
  if (!fuzz_case->canned.empty()) {
    live.push_back(CannedDocName(fuzz_case->canned));
  } else {
    for (size_t d = 0; d < fuzz_case->corpus.doc_objects.size(); ++d) {
      live.push_back("doc" + std::to_string(d) + ".txt");
    }
  }
  int added = 0;
  int count = rng.Range(1, options.max_mutations);
  for (int step = 0; step < count; ++step) {
    uint32_t step_seed =
        WithSeed(static_cast<uint32_t>(options.seed),
                 static_cast<uint32_t>(i) ^ 0x20000000u ^
                     static_cast<uint32_t>(step) << 8);
    MutationStep m;
    uint64_t roll = live.empty() ? 0 : rng.Below(10);
    if (roll < 4 || live.empty()) {
      m.op = MutationStep::Op::kAdd;
      m.name = "extra-" + std::to_string(added++) + ".txt";
      m.text = MutationText(rng, *fuzz_case, step_seed);
      live.push_back(m.name);
    } else if (roll < 8 || live.size() < 2) {
      m.op = MutationStep::Op::kUpdate;
      size_t at = rng.Below(live.size());
      m.name = live[at];
      m.text = MutationText(rng, *fuzz_case, step_seed);
      // The corpus appends replaced text at the tail; mirror that so the
      // oracle can rebuild the post-mutation corpus in physical order.
      live.erase(live.begin() + static_cast<long>(at));
      live.push_back(m.name);
    } else {
      m.op = MutationStep::Op::kRemove;
      size_t at = rng.Below(live.size());
      m.name = live[at];
      live.erase(live.begin() + static_cast<long>(at));
    }
    fuzz_case->mutations.push_back(std::move(m));
  }
}

}  // namespace

FuzzCase GenerateCase(const FuzzOptions& options, int i) {
  FuzzRng rng(IterationSeed(options, i) ^ 0xfeedc0deull);
  FuzzCase fuzz_case;

  std::string view_node;
  std::string view_name;
  std::vector<std::string> literals;
  Result<StructuringSchema> schema = Status::NotFound("unset");

  if (rng.Chance(options.canned_fraction)) {
    const CannedInfo& info = rng.Pick(CannedCorpora());
    Result<StructuringSchema> canned = CannedSchema(info.kind);
    if (canned.ok()) {
      fuzz_case.canned = info.kind;
      fuzz_case.canned_seed =
          WithSeed(static_cast<uint32_t>(options.seed),
                   static_cast<uint32_t>(i));
      fuzz_case.canned_entries = rng.Range(2, 6);
      view_node = info.view_node;
      view_name = info.view_name;
      literals = info.literals;
      schema = std::move(canned);
    }
  }
  if (fuzz_case.canned.empty()) {
    fuzz_case.schema = GenerateSchemaModel(rng, options.schema_gen);
    fuzz_case.corpus = GenerateCorpusModel(rng);
    fuzz_case.corpus.content_seed =
        WithSeed(static_cast<uint32_t>(options.seed),
                 static_cast<uint32_t>(i) ^ 0x40000000u);
    view_node = "Obj";
    view_name = "Objs";
    literals = FuzzVocab();
    // Bias toward the planted probe word so predicates hit non-trivially.
    literals.push_back(kFuzzProbeWord);
    literals.push_back(kFuzzProbeWord);
    literals.push_back("3");
    literals.push_back("17");
    schema = ParseSchemaText(fuzz_case.schema.Render());
  }

  if (schema.ok()) {
    Rig rig = DeriveFullRig(*schema);
    fuzz_case.query = GenerateQuery(rng, rig, view_node, view_name,
                                    literals, options.query_gen);
    fuzz_case.subsets =
        MakeSubsets(rng, *schema, view_node, options.subsets_per_case);
    if (rng.Chance(options.mutation_fraction)) {
      GenerateMutations(rng, options, i, &fuzz_case);
    }
  } else {
    // Should be unreachable (generated schemas are correct by
    // construction); emit a trivial query so the oracle reports the
    // schema problem itself.
    fuzz_case.query.view = view_name;
  }

  if (rng.Chance(options.invalid_fraction)) {
    fuzz_case.raw_fql = MutateToInvalid(rng, fuzz_case.query.Render());
    fuzz_case.expect_valid = false;
  }
  return fuzz_case;
}

Result<FuzzReport> RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.case_hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  auto hash_bytes = [&report](const std::string& bytes) {
    for (unsigned char b : bytes) {
      report.case_hash ^= b;
      report.case_hash *= 0x100000001b3ull;
    }
    report.case_hash ^= 0xff;  // field separator
    report.case_hash *= 0x100000001b3ull;
  };

  OracleOptions oracle_options;
  oracle_options.bug = options.bug;
  oracle_options.workers = options.workers;
  oracle_options.max_chains = options.max_chains;

  for (int i = 0; i < options.iterations; ++i) {
    FuzzCase fuzz_case = GenerateCase(options, i);
    ConcreteCase concrete = Concretize(fuzz_case);

    hash_bytes(concrete.canned);
    hash_bytes(std::to_string(concrete.canned_seed));
    hash_bytes(std::to_string(concrete.canned_entries));
    hash_bytes(concrete.schema_text);
    for (const auto& [name, text] : concrete.docs) {
      hash_bytes(name);
      hash_bytes(text);
    }
    hash_bytes(concrete.fql);
    for (const auto& subset : concrete.subsets) {
      for (const auto& name : subset) hash_bytes(name);
      hash_bytes("|");
    }
    for (const MutationStep& m : concrete.mutations) {
      hash_bytes(std::to_string(static_cast<int>(m.op)));
      hash_bytes(m.name);
      hash_bytes(m.text);
    }

    uint64_t seed = IterationSeed(options, i);
    if (!options.fault_site.empty()) {
      // Resolve "random" / hit 0 deterministically from the iteration
      // seed, so a run is reproducible from (options, i) alone and the
      // repro file can pin the resolved pair.
      FuzzRng fault_rng(seed ^ 0xfa017ull);
      oracle_options.fault_site =
          options.fault_site == "random"
              ? FaultSites()[fault_rng.Below(FaultSites().size())]
              : options.fault_site;
      oracle_options.fault_hit = options.fault_hit != 0
                                     ? options.fault_hit
                                     : 1 + fault_rng.Below(3);
    }
    QOF_ASSIGN_OR_RETURN(OracleOutcome outcome,
                         RunOracle(concrete, oracle_options, seed));
    ++report.iterations_run;
    if (!outcome.failed) continue;

    report.failed = true;
    report.failure = outcome.failure;
    report.failing_iteration = i;
    report.failing_seed = seed;
    report.original = fuzz_case;
    report.shrunk = fuzz_case;
    if (options.shrink) {
      ShrinkStats stats;
      report.shrunk = Shrink(fuzz_case, oracle_options, seed,
                             options.shrink_budget, &stats);
      report.shrink_oracle_runs = stats.oracle_runs;
    }
    ReproFile repro;
    repro.concrete_case = Concretize(report.shrunk);
    repro.bug = options.bug;
    repro.fault_site = oracle_options.fault_site;
    repro.fault_hit = oracle_options.fault_hit;
    repro.seed = seed;
    report.repro = WriteRepro(repro);
    return report;
  }
  return report;
}

}  // namespace qof
