#ifndef QOF_FUZZ_CRASH_LEG_H_
#define QOF_FUZZ_CRASH_LEG_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"
#include "qof/schema/structuring_schema.h"
#include "qof/util/status.h"

namespace qof {

/// The crash-sweep leg (ALICE-style): replays the case's mutation
/// sequence as a durable-index-directory trace — create, journaled
/// mutations, a mid-sequence compaction checkpoint — against an
/// in-memory FaultVfs, then simulates a power cut after *every* mutating
/// I/O operation the trace performs. For each crash point the machine
/// "comes back up" (FaultVfs::CutPower: the namespace reverts to its
/// durable mapping, unsynced file tails survive sector-wise
/// adversarially or rot to garbage), recovery runs the same path the
/// qof_index CLI uses (manifest → blob → journal replay, torn tails
/// discarded), and the leg asserts crash consistency:
///
///   1. recovery succeeds whenever a commit was ever acknowledged — the
///      manifest protocol may not strand the directory unreadable;
///   2. no acknowledged durable state is lost: the recovered generation
///      is at least the highest generation whose journal append (or
///      checkpoint) returned success before the cut — fsync means fsync;
///   3. the recovered state is *some* acknowledged prefix of the
///      mutation history, byte-identical (after compaction, generation
///      stripped) to applying exactly that prefix directly — never a
///      torn in-between; and
///   4. the journal frames that survive are exactly the mutation records
///      that were appended — checksums discard garbage, never admit it.
///
/// This is the leg that catches kSkipDirSync
/// (FaultVfs::set_skip_dir_sync), which turns the parent-directory fsync
/// after every atomic rename into a silent no-op: the rename that
/// publishes the MANIFEST (or the blob it names) is then volatile, so a
/// cut after a "durable" commit rolls the directory back — surfacing as
/// a failed recovery or a recovered generation below the durability
/// floor, both of which the sweep flags.
///
/// Skipped when the case carries no mutations. Same conventions as the
/// oracle's other legs: a Status error means the harness itself broke; a
/// filled `failure` means a crash point violated an invariant.
Status CheckCrashConsistency(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure);

}  // namespace qof

#endif  // QOF_FUZZ_CRASH_LEG_H_
