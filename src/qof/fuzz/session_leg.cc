#include "qof/fuzz/session_leg.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qof/engine/system.h"
#include "qof/fuzz/canon.h"
#include "qof/fuzz/rng.h"
#include "qof/server/service.h"

namespace qof {
namespace {

/// Applies one mutation step to a system; shared by the service host
/// (through the service) replay path.
Status ApplyStep(FileQuerySystem& system, const MutationStep& m) {
  switch (m.op) {
    case MutationStep::Op::kAdd:
      return system.AddFile(m.name, m.text);
    case MutationStep::Op::kUpdate:
      return system.UpdateFile(m.name, m.text);
    case MutationStep::Op::kRemove:
      return system.RemoveFile(m.name);
  }
  return Status::Internal("unreachable mutation op");
}

/// Ground truth per generation: a fresh single-threaded system built
/// from the original docs with the first `k` mutations replayed
/// *incrementally* — the same calls the service host saw — so the
/// physical corpus layout (tombstones, appended tails) and therefore
/// region coordinates are byte-identical to the state a session pinned
/// at generation k. A from-scratch rebuild of the mutated docs would
/// not do: fragmentation shifts offsets.
class ReplayOracle {
 public:
  ReplayOracle(const StructuringSchema& schema,
               const std::vector<std::pair<std::string, std::string>>& docs,
               const ConcreteCase& c)
      : schema_(schema), docs_(docs), c_(c),
        expected_(c.mutations.size() + 1) {}

  /// The canonical answer at generation k (k mutations applied).
  /// Replays lazily, memoized — at most one system per distinct pinned
  /// generation the schedule actually queries.
  Result<CanonExec> ExpectedAt(size_t k) {
    if (expected_[k].has_value()) return *expected_[k];
    FileQuerySystem replay(schema_);
    for (const auto& [name, text] : docs_) {
      QOF_RETURN_IF_ERROR(replay.AddFile(name, text));
    }
    replay.SetParallelism(1);
    QOF_RETURN_IF_ERROR(replay.BuildIndexes(IndexSpec::Full()));
    for (size_t i = 0; i < k; ++i) {
      Status applied = ApplyStep(replay, c_.mutations[i]);
      if (!applied.ok()) {
        return Status::Internal("session replay: mutation " +
                                std::to_string(i) + " (" +
                                c_.mutations[i].name +
                                ") failed: " + applied.ToString());
      }
    }
    expected_[k] = Canon(replay.Execute(c_.fql, ExecutionMode::kAuto));
    return *expected_[k];
  }

 private:
  const StructuringSchema& schema_;
  const std::vector<std::pair<std::string, std::string>>& docs_;
  const ConcreteCase& c_;
  std::vector<std::optional<CanonExec>> expected_;
};

}  // namespace

Status CheckSessions(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure) {
  auto fail = [&](const std::string& what) {
    *failure = "[session] " + what + " (fql: " + c.fql + ")";
    return Status::OK();
  };

  // The service host: caches on, so the leg also exercises pinned-epoch
  // eval-cache retention (a stale entry served across generations would
  // diverge from the replay).
  FileQuerySystem host(schema);
  for (const auto& [name, text] : docs) {
    QOF_RETURN_IF_ERROR(host.AddFile(name, text));
  }
  host.SetParallelism(1);
  host.SetCacheOptions(CacheOptions::Enabled());
  QOF_RETURN_IF_ERROR(host.BuildIndexes(IndexSpec::Full()));

  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.max_queued = 0;  // unbounded: the schedule never rejects
  service_options.inject_stale_snapshot =
      options.bug == InjectedBug::kStaleSnapshot;
  QueryService service(&host, service_options);

  constexpr int kSessions = 3;
  uint64_t sids[kSessions];
  size_t pinned[kSessions];  // generation each session last pinned
  for (int s = 0; s < kSessions; ++s) {
    QOF_ASSIGN_OR_RETURN(sids[s], service.OpenSession());
    pinned[s] = 0;
  }
  ReplayOracle replay(schema, docs, c);
  FuzzRng rng(seed ^ 0x5e551011d5eedull);

  // One session's query checked against the replay at its pin.
  bool violated = false;
  auto check_query = [&](int s, const std::string& when) -> Status {
    QOF_ASSIGN_OR_RETURN(CanonExec want, replay.ExpectedAt(pinned[s]));
    CanonExec got = Canon(service.Query(sids[s], c.fql));
    std::string label = "session/s" + std::to_string(s) + "@gen" +
                        std::to_string(pinned[s]) + " " + when;
    if (!Agrees(label, want, got, c, failure)) violated = true;
    return Status::OK();
  };
  auto check_generation = [&](int s) -> Status {
    QOF_ASSIGN_OR_RETURN(uint64_t gen,
                         service.SessionGeneration(sids[s]));
    if (gen != pinned[s]) {
      fail("session s" + std::to_string(s) + " reports generation " +
           std::to_string(gen) + ", schedule pinned it at " +
           std::to_string(pinned[s]));
      violated = true;
    }
    return Status::OK();
  };

  for (size_t mi = 0; mi <= c.mutations.size() && !violated; ++mi) {
    // Every session queries at its pin: non-mutators must see their old
    // generation untouched (repeatable reads), however many mutations
    // other sessions have applied since.
    for (int s = 0; s < kSessions && !violated; ++s) {
      QOF_RETURN_IF_ERROR(check_generation(s));
      if (violated) break;
      QOF_RETURN_IF_ERROR(
          check_query(s, "round " + std::to_string(mi)));
    }
    if (violated || mi == c.mutations.size()) break;

    // Occasionally a bystander refreshes to the latest generation.
    if (rng.Chance(0.3)) {
      int r = static_cast<int>(rng.Below(kSessions));
      QOF_RETURN_IF_ERROR(service.Refresh(sids[r]));
      pinned[r] = mi;
    }

    // A seed-chosen session applies the next mutation through the
    // service; it must observe its own write immediately.
    int mutator = static_cast<int>(rng.Below(kSessions));
    const MutationStep& m = c.mutations[mi];
    Status applied = Status::OK();
    switch (m.op) {
      case MutationStep::Op::kAdd:
        applied = service.AddFile(sids[mutator], m.name, m.text);
        break;
      case MutationStep::Op::kUpdate:
        applied = service.UpdateFile(sids[mutator], m.name, m.text);
        break;
      case MutationStep::Op::kRemove:
        applied = service.RemoveFile(sids[mutator], m.name);
        break;
    }
    if (!applied.ok()) {
      return Status::Internal("session leg: mutation " +
                              std::to_string(mi) + " (" + m.name +
                              ") failed: " + applied.ToString());
    }
    pinned[mutator] = mi + 1;
    QOF_RETURN_IF_ERROR(check_query(mutator, "read-your-writes"));
  }
  if (violated) return Status::OK();

  // Teardown sanity: closing every session must release every pin.
  for (int s = 0; s < kSessions; ++s) {
    QOF_RETURN_IF_ERROR(service.CloseSession(sids[s]));
  }
  ServiceStats stats = service.stats();
  if (stats.sessions_open != 0) {
    return fail("closed every session but " +
                std::to_string(stats.sessions_open) + " remain open");
  }
  if (stats.queries_failed != 0 && replay.ExpectedAt(0).ok() &&
      replay.ExpectedAt(0)->ok) {
    // Queries that legitimately error (rejected FQL) fail on the replay
    // too and were compared above; anything else is a service defect.
    return fail(std::to_string(stats.queries_failed) +
                " service queries failed where the replay succeeded");
  }
  return Status::OK();
}

}  // namespace qof
