#ifndef QOF_FUZZ_FUZZER_H_
#define QOF_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>

#include "qof/fuzz/case.h"
#include "qof/fuzz/grammar_model.h"
#include "qof/fuzz/oracle.h"
#include "qof/fuzz/query_gen.h"
#include "qof/util/result.h"

namespace qof {

struct FuzzOptions {
  int iterations = 100;
  uint64_t seed = 1;
  /// Fraction of queries mutated into (likely) invalid FQL — the parsers'
  /// never-crash class.
  double invalid_fraction = 0.15;
  /// Fraction of cases run against a canned datagen corpus (bibtex, mail,
  /// log, outline) instead of a random schema.
  double canned_fraction = 0.2;
  /// Random index subsets tried per case, beyond the always-run
  /// baseline/full-index legs.
  int subsets_per_case = 2;
  /// Fraction of cases that get a post-build mutation sequence (random
  /// adds/updates/removes replayed through the incremental maintainer and
  /// cross-checked against a from-scratch rebuild).
  double mutation_fraction = 0.35;
  /// Longest mutation sequence the generator appends.
  int max_mutations = 4;
  InjectedBug bug = InjectedBug::kNone;
  /// Fault-injection mode: "" runs the normal differential legs; a site
  /// name from FaultSites() arms that site every iteration; "random"
  /// draws a fresh (site, hit) pair per iteration. Either way the oracle
  /// runs its fault leg instead of the differential legs (see
  /// OracleOptions::fault_site).
  std::string fault_site;
  /// Hit ordinal for a fixed fault site; 0 draws 1..3 per iteration.
  uint64_t fault_hit = 0;
  bool shrink = true;
  int shrink_budget = 200;
  int workers = 4;
  size_t max_chains = 160;
  SchemaGenOptions schema_gen;
  QueryGenOptions query_gen;
};

struct FuzzReport {
  int iterations_run = 0;
  bool failed = false;
  std::string failure;
  int failing_iteration = -1;
  uint64_t failing_seed = 0;  // the failing iteration's oracle seed

  FuzzCase original;  // the failing case as generated
  FuzzCase shrunk;    // after greedy shrinking (== original when disabled)
  std::string repro;  // WriteRepro(shrunk) — empty on clean runs
  int shrink_oracle_runs = 0;

  /// FNV-1a over every concretized case (schema text, docs, FQL, subsets)
  /// in generation order. Two runs with the same options are
  /// byte-identical iff their hashes match — the reproducibility tests
  /// assert exactly this.
  uint64_t case_hash = 0;
};

/// Runs the differential fuzz loop: generate a case, concretize it, run
/// the oracle, and on the first failure shrink it and build a repro.
/// A Result-level error means the harness itself is broken (a generated
/// schema failed to parse, a canned corpus failed to build) — distinct
/// from `report.failed`, which means the system under test violated an
/// invariant.
Result<FuzzReport> RunFuzz(const FuzzOptions& options);

/// The case the fuzzer would generate at iteration `i` — exposed so tests
/// can pin generator behaviour without running the oracle.
FuzzCase GenerateCase(const FuzzOptions& options, int i);

}  // namespace qof

#endif  // QOF_FUZZ_FUZZER_H_
