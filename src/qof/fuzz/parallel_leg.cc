#include "qof/fuzz/parallel_leg.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "qof/engine/system.h"
#include "qof/fuzz/canon.h"

namespace qof {
namespace {

std::string StorePath(uint64_t seed) {
  return "/tmp/qof-fuzz-parallel-" + std::to_string(::getpid()) + "-" +
         std::to_string(seed) + ".qofstore";
}

struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

/// Candidate counts are cache- and worker-invariant: a mismatch means a
/// morsel path miscounted (or mis-merged) even if the final answer
/// happened to survive.
bool CandidatesAgree(const std::string& label, const Result<QueryResult>& a,
                     const Result<QueryResult>& b, const ConcreteCase& c,
                     std::string* failure) {
  if (!a.ok() || !b.ok()) return true;  // Agrees covers status identity
  if (a->stats.candidates == b->stats.candidates) return true;
  *failure = "[" + label + "] candidate counts diverge: serial=" +
             std::to_string(a->stats.candidates) +
             " parallel=" + std::to_string(b->stats.candidates) +
             " (fql: " + c.fql + ")";
  return false;
}

}  // namespace

Status CheckParallelExec(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure) {
  auto make_system = [&]() {
    auto system = std::make_unique<FileQuerySystem>(schema);
    for (const auto& [name, text] : docs) {
      (void)system->AddFile(name, text);
    }
    return system;
  };

  // Grain 2: inputs of four regions already split, so morsel machinery
  // runs on nearly every generated case instead of only the large ones.
  IrPlanOptions knobs;
  knobs.morsel_grain = 2;
  knobs.inject_racy_merge = options.bug == InjectedBug::kRacyMerge;

  std::unique_ptr<FileQuerySystem> sys = make_system();
  sys->SetParallelism(1);
  sys->SetCacheOptions(CacheOptions::Enabled());
  if (!sys->BuildIndexes(IndexSpec::Full()).ok()) {
    return Status::OK();  // the index legs report build failures
  }
  sys->SetIrOptions(knobs);

  QueryOptions serial;
  serial.use_ir = true;  // the morsel scheduler is the IR executor's

  // Serial baseline (this also warms the eval cache, so the parallel
  // runs below get the merge-from-cache interleavings too).
  Result<QueryResult> serial_auto = sys->Execute(c.fql, ExecutionMode::kAuto,
                                                 serial);
  CanonExec base = Canon(serial_auto);
  Result<QueryResult> serial_two =
      sys->Execute(c.fql, ExecutionMode::kTwoPhase, serial);
  CanonExec base_two = Canon(serial_two);

  for (int workers : {2, 4}) {
    QueryOptions par = serial;
    par.exec_workers = workers;
    const std::string tail = " w=" + std::to_string(workers);
    Result<QueryResult> got = sys->Execute(c.fql, ExecutionMode::kAuto, par);
    if (!Agrees("parallel/auto" + tail, base, Canon(got), c, failure)) {
      return Status::OK();
    }
    if (!CandidatesAgree("parallel/auto" + tail, serial_auto, got, c,
                         failure)) {
      return Status::OK();
    }
    if (!Agrees("parallel/two-phase" + tail, base_two,
                Canon(sys->Execute(c.fql, ExecutionMode::kTwoPhase, par)), c,
                failure)) {
      return Status::OK();
    }
  }

  // Disk tier: prefetch changes page-read batching, never answers; the
  // worker × prefetch grid must all land on the in-memory baseline.
  const std::string path = StorePath(seed);
  FileGuard guard{path};
  QOF_RETURN_IF_ERROR(sys->SaveStore(path, /*page_size=*/256));
  std::unique_ptr<FileQuerySystem> disk = make_system();
  disk->SetParallelism(1);
  QOF_RETURN_IF_ERROR(disk->OpenStore(path, PagedStoreOptions{}));
  disk->SetIrOptions(knobs);
  for (int workers : {1, 2, 4}) {
    for (bool prefetch : {true, false}) {
      QueryOptions par = serial;
      par.exec_workers = workers;
      par.prefetch = prefetch;
      const std::string tail = " w=" + std::to_string(workers) +
                               (prefetch ? " pf=on" : " pf=off");
      if (!Agrees("parallel/disk" + tail, base,
                  Canon(disk->Execute(c.fql, ExecutionMode::kAuto, par)), c,
                  failure)) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace qof
