#include "qof/fuzz/shrink.h"

namespace qof {
namespace {

bool StillFails(const FuzzCase& candidate, const OracleOptions& options,
                uint64_t seed, ShrinkStats* stats) {
  if (stats != nullptr) ++stats->oracle_runs;
  auto outcome = RunOracle(Concretize(candidate), options, seed);
  // A Result-level error means the reduction broke the harness's own
  // preconditions (not the bug under investigation) — never adopt it.
  return outcome.ok() && outcome->failed;
}

}  // namespace

std::vector<FuzzCase> CaseReductions(const FuzzCase& fuzz_case) {
  std::vector<FuzzCase> out;

  for (size_t i = 0; i < fuzz_case.subsets.size(); ++i) {
    FuzzCase reduced = fuzz_case;
    reduced.subsets.erase(reduced.subsets.begin() + static_cast<long>(i));
    out.push_back(std::move(reduced));
  }

  // Mutations shrink before the schema does: mutation texts were
  // rendered under the generation-time schema, so a schema reduction
  // with mutations still present usually fails to apply (and is
  // rejected); dropping steps first unblocks the deeper reductions.
  if (fuzz_case.mutations.size() > 1) {
    FuzzCase reduced = fuzz_case;
    reduced.mutations.clear();
    out.push_back(std::move(reduced));
  }
  for (size_t i = 0; i < fuzz_case.mutations.size(); ++i) {
    FuzzCase reduced = fuzz_case;
    reduced.mutations.erase(reduced.mutations.begin() +
                            static_cast<long>(i));
    out.push_back(std::move(reduced));
  }

  if (!fuzz_case.canned.empty()) {
    if (fuzz_case.canned_entries > 1) {
      FuzzCase reduced = fuzz_case;
      reduced.canned_entries = fuzz_case.canned_entries / 2;
      out.push_back(std::move(reduced));
    }
  } else {
    for (CorpusModel& corpus : CorpusReductions(fuzz_case.corpus)) {
      FuzzCase reduced = fuzz_case;
      reduced.corpus = std::move(corpus);
      out.push_back(std::move(reduced));
    }
  }

  if (fuzz_case.raw_fql.empty()) {
    for (QueryModel& query : QueryReductions(fuzz_case.query)) {
      FuzzCase reduced = fuzz_case;
      reduced.query = std::move(query);
      out.push_back(std::move(reduced));
    }
  }

  if (fuzz_case.canned.empty()) {
    for (SchemaModel& schema : SchemaReductions(fuzz_case.schema)) {
      FuzzCase reduced = fuzz_case;
      reduced.schema = std::move(schema);
      out.push_back(std::move(reduced));
    }
  }
  return out;
}

FuzzCase Shrink(const FuzzCase& failing, const OracleOptions& options,
                uint64_t seed, int budget, ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) stats = &local;
  FuzzCase current = failing;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const FuzzCase& candidate : CaseReductions(current)) {
      if (stats->oracle_runs >= budget) return current;
      if (StillFails(candidate, options, seed, stats)) {
        current = candidate;
        ++stats->steps_taken;
        progressed = true;
        break;  // restart from the smaller case
      }
    }
  }
  return current;
}

}  // namespace qof
