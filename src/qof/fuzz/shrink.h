#ifndef QOF_FUZZ_SHRINK_H_
#define QOF_FUZZ_SHRINK_H_

#include <vector>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"

namespace qof {

/// All single-step reductions of a failing case, cheapest-to-verify
/// first: drop an index subset, shrink the canned corpus, drop or halve
/// documents, simplify the query (skipped for raw mutated queries — they
/// have no model), then drop grammar productions.
std::vector<FuzzCase> CaseReductions(const FuzzCase& fuzz_case);

struct ShrinkStats {
  int oracle_runs = 0;
  int steps_taken = 0;
};

/// Greedy first-improvement shrink: repeatedly adopt the first reduction
/// that still fails the oracle (any failure counts, not just the original
/// one) until none does or `budget` oracle runs are spent. The input must
/// be a failing case; the result is failing too.
FuzzCase Shrink(const FuzzCase& failing, const OracleOptions& options,
                uint64_t seed, int budget, ShrinkStats* stats = nullptr);

}  // namespace qof

#endif  // QOF_FUZZ_SHRINK_H_
