#ifndef QOF_FUZZ_CASE_H_
#define QOF_FUZZ_CASE_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/grammar_model.h"
#include "qof/fuzz/query_gen.h"

namespace qof {

/// One corpus mutation applied after the indexes are built — the
/// incremental-maintenance leg replays these through
/// FileQuerySystem::{Add,Update,Remove}File and cross-checks against a
/// from-scratch rebuild. Steps are stored fully concrete (the generator
/// renders the text up front) so repro files replay byte-identically
/// even after the schema model shrinks.
struct MutationStep {
  enum class Op { kAdd, kUpdate, kRemove };
  Op op = Op::kAdd;
  std::string name;
  std::string text;  // empty for kRemove

  bool operator==(const MutationStep& other) const {
    return op == other.op && name == other.name && text == other.text;
  }
};

/// A fully concrete (schema, corpus, query) triple plus the index subsets
/// to try — everything the oracle needs, with no model-level structure.
/// Repro files serialize exactly this, so a replayed failure runs the
/// same code path as a fresh one.
struct ConcreteCase {
  /// Non-empty selects a datagen corpus ("bibtex" | "mail" | "log" |
  /// "outline") regenerated from (canned_seed, canned_entries); empty
  /// means schema_text/docs carry a random schema.
  std::string canned;
  uint32_t canned_seed = 0;
  int canned_entries = 0;

  std::string schema_text;
  std::vector<std::pair<std::string, std::string>> docs;

  std::string fql;
  /// False for the invalid-query class: the parser may reject fql (with a
  /// diagnostic, never a crash); if it happens to parse, the differential
  /// checks still apply.
  bool expect_valid = true;

  std::vector<std::vector<std::string>> subsets;

  /// Applied in order by the maintenance leg; empty skips that leg.
  std::vector<MutationStep> mutations;
};

/// The model-level form the generator produces and the shrinker reduces.
struct FuzzCase {
  std::string canned;  // same convention as ConcreteCase
  uint32_t canned_seed = 0;
  int canned_entries = 0;

  SchemaModel schema;
  CorpusModel corpus;

  QueryModel query;
  std::string raw_fql;  // set for mutated (invalid-class) queries
  bool expect_valid = true;

  std::vector<std::vector<std::string>> subsets;

  /// Concrete even at the model level: mutation texts are rendered from
  /// the *generation-time* schema, so shrinking the schema model cannot
  /// silently change them. The shrinker drops steps instead.
  std::vector<MutationStep> mutations;
};

/// Renders the model to the concrete triple (schema text, documents,
/// FQL). Deterministic: the same case always concretizes to the same
/// bytes.
ConcreteCase Concretize(const FuzzCase& fuzz_case);

}  // namespace qof

#endif  // QOF_FUZZ_CASE_H_
