#include "qof/cache/cache.h"

namespace qof {

std::shared_ptr<const PlanCache::Entry> PlanCache::Lookup(
    const std::string& fql) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fql);
  if (it == map_.end()) {
    ++stats_.plan_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.plan_hits;
  return it->second.entry;
}

void PlanCache::Insert(const std::string& fql,
                       std::shared_ptr<const Entry> entry) {
  if (max_plans_ == 0 || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fql);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(fql);
  map_[fql] = Slot{std::move(entry), lru_.begin()};
  EvictIfNeededLocked();
}

void PlanCache::EvictIfNeededLocked() {
  while (map_.size() > max_plans_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.plan_evictions;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  ++stats_.invalidations;
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qof
