#include "qof/cache/eval_cache.h"

namespace qof {

std::shared_ptr<const RegionSet> EvalCache::Lookup(const std::string& key,
                                                   const CacheEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  FlushForEpochLocked(epoch);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.eval_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.eval_hits;
  return it->second.set;
}

void EvalCache::Insert(const std::string& key, const CacheEpoch& epoch,
                       std::shared_ptr<const RegionSet> set) {
  if (set == nullptr || set->size() > max_regions_) return;
  std::lock_guard<std::mutex> lock(mu_);
  FlushForEpochLocked(epoch);
  auto it = map_.find(key);
  if (it != map_.end()) {
    regions_cached_ -= it->second.set->size();
    regions_cached_ += set->size();
    it->second.set = std::move(set);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    regions_cached_ += set->size();
    lru_.push_front(key);
    map_[key] = Slot{std::move(set), lru_.begin()};
  }
  stats_.eval_regions_cached = regions_cached_;
  EvictIfNeededLocked();
}

void EvalCache::FlushForEpochLocked(const CacheEpoch& epoch) {
  if (epoch == epoch_) return;
  // The planted stale-cache bug: skip the flush, so entries evaluated
  // under an older generation keep being served after mutations.
  if (!inject_stale_) {
    if (!map_.empty()) ++stats_.invalidations;
    map_.clear();
    lru_.clear();
    regions_cached_ = 0;
    stats_.eval_regions_cached = 0;
  }
  epoch_ = epoch;
}

void EvalCache::EvictIfNeededLocked() {
  while (regions_cached_ > max_regions_ && !lru_.empty()) {
    auto it = map_.find(lru_.back());
    regions_cached_ -= it->second.set->size();
    map_.erase(it);
    lru_.pop_back();
    ++stats_.eval_evictions;
  }
  stats_.eval_regions_cached = regions_cached_;
}

void EvalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  regions_cached_ = 0;
  stats_.eval_regions_cached = 0;
  ++stats_.invalidations;
}

CacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qof
