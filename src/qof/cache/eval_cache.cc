#include "qof/cache/eval_cache.h"

namespace qof {

std::string EvalCache::CompositeKey(const std::string& key,
                                    const CacheEpoch& epoch) const {
  // Under the planted bug entries are keyed by expression alone, so the
  // epoch check vanishes and stale answers keep flowing.
  if (inject_stale_) return key;
  return std::to_string(epoch.build) + ':' + std::to_string(epoch.generation) +
         ':' + std::to_string(epoch.compactions) + '|' + key;
}

bool EvalCache::IsPinnedLocked(const CacheEpoch& epoch) const {
  for (const auto& [pinned, count] : pins_) {
    if (pinned == epoch && count > 0) return true;
  }
  return false;
}

void EvalCache::ErasePlainLocked(const std::string& composite) {
  auto it = map_.find(composite);
  if (it == map_.end()) return;
  regions_cached_ -= it->second.set->size();
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void EvalCache::AdvanceEpochLocked(const CacheEpoch& epoch) {
  // Only ever move forwards: a snapshot query running under a pinned old
  // epoch must not reset "current" and prune the live state's entries.
  if (!(epoch_ < epoch)) return;
  if (!inject_stale_) {
    // Prune entries of epochs no live snapshot pins. Entries of pinned
    // epochs survive — that is the whole point of per-generation
    // retention: a mutation must not cost pinned readers their warm
    // cache.
    uint64_t pruned = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.epoch != epoch && !IsPinnedLocked(it->second.epoch)) {
        regions_cached_ -= it->second.set->size();
        lru_.erase(it->second.lru_it);
        it = map_.erase(it);
        ++pruned;
      } else {
        ++it;
      }
    }
    if (pruned > 0) ++stats_.invalidations;
    stats_.eval_regions_cached = regions_cached_;
  }
  epoch_ = epoch;
}

std::shared_ptr<const RegionSet> EvalCache::Lookup(const std::string& key,
                                                   const CacheEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceEpochLocked(epoch);
  auto it = map_.find(CompositeKey(key, epoch));
  if (it == map_.end()) {
    ++stats_.eval_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.eval_hits;
  return it->second.set;
}

void EvalCache::Insert(const std::string& key, const CacheEpoch& epoch,
                       std::shared_ptr<const RegionSet> set) {
  if (set == nullptr || set->size() > max_regions_) return;
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceEpochLocked(epoch);
  std::string composite = CompositeKey(key, epoch);
  auto it = map_.find(composite);
  if (it != map_.end()) {
    regions_cached_ -= it->second.set->size();
    regions_cached_ += set->size();
    it->second.set = std::move(set);
    it->second.epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    regions_cached_ += set->size();
    lru_.push_front(composite);
    map_[composite] = Slot{std::move(set), epoch, lru_.begin()};
  }
  stats_.eval_regions_cached = regions_cached_;
  EvictIfNeededLocked();
}

void EvalCache::Pin(const CacheEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pinned, count] : pins_) {
    if (pinned == epoch) {
      ++count;
      return;
    }
  }
  pins_.emplace_back(epoch, 1);
}

void EvalCache::Unpin(const CacheEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pins_.begin(); it != pins_.end(); ++it) {
    if (it->first != epoch) continue;
    if (--it->second > 0) return;
    pins_.erase(it);
    // Last pin dropped: if the epoch is no longer current its entries can
    // never be served again — reclaim them now rather than waiting for
    // the next epoch advance. Not an invalidation: no live query could
    // still observe these entries.
    if (epoch != epoch_ && !inject_stale_) {
      for (auto e = map_.begin(); e != map_.end();) {
        if (e->second.epoch == epoch) {
          regions_cached_ -= e->second.set->size();
          lru_.erase(e->second.lru_it);
          e = map_.erase(e);
        } else {
          ++e;
        }
      }
      stats_.eval_regions_cached = regions_cached_;
    }
    return;
  }
}

void EvalCache::AdvanceEpoch(const CacheEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceEpochLocked(epoch);
}

void EvalCache::EvictIfNeededLocked() {
  while (regions_cached_ > max_regions_ && !lru_.empty()) {
    auto it = map_.find(lru_.back());
    regions_cached_ -= it->second.set->size();
    map_.erase(it);
    lru_.pop_back();
    ++stats_.eval_evictions;
  }
  stats_.eval_regions_cached = regions_cached_;
}

void EvalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  regions_cached_ = 0;
  stats_.eval_regions_cached = 0;
  ++stats_.invalidations;
}

CacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qof
