#ifndef QOF_CACHE_CACHE_H_
#define QOF_CACHE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qof/cache/eval_cache.h"
#include "qof/compiler/query_compiler.h"
#include "qof/query/ast.h"

namespace qof {

/// Knobs for the two query caches (see FileQuerySystem::SetCacheOptions).
/// Both caches are off by default: enabling them never changes results —
/// only cost — which the fuzz cache leg cross-checks byte-for-byte.
struct CacheOptions {
  /// Query text → parsed AST + compiled plan. Invalidated when the
  /// compiler changes (BuildIndexes / ImportIndexes); mutations do not
  /// invalidate plans, which depend only on the schema and the index
  /// spec — never on the indexed data.
  bool enable_plan_cache = false;
  /// Normal-form subexpression string + index epoch → shared immutable
  /// RegionSet (see qof/cache/eval_cache.h).
  bool enable_eval_cache = false;
  /// LRU capacity of the plan cache, in entries.
  size_t max_plans = 256;
  /// LRU capacity of the eval cache, in total regions retained.
  uint64_t max_cached_regions = 1u << 20;
  /// Test-only planted bug: the eval cache ignores epoch changes and
  /// keeps serving entries cached under older generations (--inject
  /// stale-cache drives this through the fuzzer).
  bool inject_stale = false;

  bool any() const { return enable_plan_cache || enable_eval_cache; }

  static CacheOptions Enabled() {
    CacheOptions o;
    o.enable_plan_cache = true;
    o.enable_eval_cache = true;
    return o;
  }
};

/// LRU map from FQL text to its parsed AST and (once compiled) plan.
/// Entries are immutable once published; an update replaces the whole
/// entry. Thread-safe.
class PlanCache {
 public:
  struct Entry {
    SelectQuery query;
    /// The build counter (FileQuerySystem's BuildIndexes/ImportIndexes
    /// count) the entry was parsed and compiled under. Entries are only
    /// served to executions of the same build: plans never depend on
    /// the indexed data, but they do depend on the compiler, which is
    /// replaced per build — and snapshot queries (which may publish
    /// entries concurrently) can outlive a rebuild.
    uint64_t build = 0;
    /// Null until the query was executed in an index-backed mode (the
    /// baseline never compiles).
    std::shared_ptr<const QueryPlan> plan;
  };

  explicit PlanCache(size_t max_plans) : max_plans_(max_plans) {}

  /// Returns the entry and refreshes its LRU position, or null.
  std::shared_ptr<const Entry> Lookup(const std::string& fql);

  /// Publishes (or replaces) the entry for `fql`.
  void Insert(const std::string& fql, std::shared_ptr<const Entry> entry);

  void Clear();
  CacheStats stats() const;

 private:
  void EvictIfNeededLocked();

  const size_t max_plans_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = most recent
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  CacheStats stats_;
};

}  // namespace qof

#endif  // QOF_CACHE_CACHE_H_
