#ifndef QOF_CACHE_EVAL_CACHE_H_
#define QOF_CACHE_EVAL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qof/region/region_set.h"

namespace qof {

/// Counters for both query caches, exposed through
/// FileQuerySystem::cache_stats().
struct CacheStats {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t eval_hits = 0;
  uint64_t eval_misses = 0;
  uint64_t eval_evictions = 0;
  uint64_t eval_regions_cached = 0;  // currently retained
  uint64_t invalidations = 0;        // epoch flushes + explicit clears
};

/// Identifies one index state: entries cached under a different epoch are
/// never served *to a query running under it*. `generation` counts
/// mutations; `compactions` must ride along because Compact() rebases
/// region/posting offsets *without* bumping the generation; `build`
/// counts full index rebuilds/imports (which replace the compiler and may
/// change the index spec), so an epoch is globally unique across the
/// system's whole lifetime — required now that snapshots (see
/// qof/engine/snapshot.h) can keep an old epoch's entries alive across a
/// rebuild.
struct CacheEpoch {
  uint64_t generation = 0;
  uint64_t compactions = 0;
  uint64_t build = 0;

  friend bool operator==(const CacheEpoch& a, const CacheEpoch& b) {
    return a.generation == b.generation && a.compactions == b.compactions &&
           a.build == b.build;
  }
  friend bool operator!=(const CacheEpoch& a, const CacheEpoch& b) {
    return !(a == b);
  }
  /// Epochs are totally ordered by time: `build` dominates (a rebuild may
  /// reset the maintainer's compaction count), then generation, then
  /// compactions — each monotonic within one build. The cache uses this
  /// to advance only forwards: a pinned snapshot querying under an old
  /// epoch must never drag the current epoch backwards.
  friend bool operator<(const CacheEpoch& a, const CacheEpoch& b) {
    if (a.build != b.build) return a.build < b.build;
    if (a.generation != b.generation) return a.generation < b.generation;
    return a.compactions < b.compactions;
  }
};

/// LRU map from a serialized region expression (plus the index epoch it
/// was evaluated under) to the resulting RegionSet, shared immutably with
/// every consumer. Thm 3.6 normal forms are canonical and re-parseable,
/// so the serialized expression is a perfect key. Bounded by total
/// regions retained, not entry count — the budget-relevant quantity.
/// Thread-safe; sits below the algebra evaluator, which consults it.
///
/// Retention is *per epoch*, not wholesale: entries are keyed by
/// (epoch, expression), and when the current epoch advances, entries of
/// the old epoch are pruned — unless that epoch is pinned by a live
/// snapshot (Pin/Unpin), in which case they survive and keep serving the
/// snapshot's queries. This is what makes mutations cheap for pinned
/// readers: an unrelated UpdateFile no longer costs them their warm
/// cache.
class EvalCache {
 public:
  EvalCache(uint64_t max_regions, bool inject_stale)
      : max_regions_(max_regions), inject_stale_(inject_stale) {}

  /// Returns the cached set for (`epoch`, `key`), or null. An `epoch`
  /// newer than any seen so far advances the cache's notion of "current"
  /// and prunes entries of unpinned stale epochs. Under the planted
  /// inject_stale bug entries are keyed by expression alone — old-
  /// generation entries keep being served after mutations, which the
  /// fuzzer's cache leg exists to catch (--inject stale-cache).
  std::shared_ptr<const RegionSet> Lookup(const std::string& key,
                                          const CacheEpoch& epoch);

  void Insert(const std::string& key, const CacheEpoch& epoch,
              std::shared_ptr<const RegionSet> set);

  /// Marks `epoch` as pinned by a live snapshot: its entries survive
  /// epoch advances until the matching Unpin. Pins nest (refcounted).
  void Pin(const CacheEpoch& epoch);

  /// Releases one pin. When the last pin on a non-current epoch drops,
  /// its entries are reclaimed immediately (not counted as an
  /// invalidation — nothing a live query could still see was discarded).
  void Unpin(const CacheEpoch& epoch);

  /// Eagerly advances the current epoch (rebuild/import paths call this
  /// the moment the new index state is published, so stats reflect the
  /// flush without waiting for the next query).
  void AdvanceEpoch(const CacheEpoch& epoch);

  void Clear();
  CacheStats stats() const;

 private:
  void AdvanceEpochLocked(const CacheEpoch& epoch);
  void ErasePlainLocked(const std::string& composite);
  bool IsPinnedLocked(const CacheEpoch& epoch) const;
  void EvictIfNeededLocked();
  std::string CompositeKey(const std::string& key,
                           const CacheEpoch& epoch) const;

  const uint64_t max_regions_;
  const bool inject_stale_;
  mutable std::mutex mu_;
  CacheEpoch epoch_;
  std::list<std::string> lru_;  // front = most recent (composite keys)
  struct Slot {
    std::shared_ptr<const RegionSet> set;
    CacheEpoch epoch;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  /// Live snapshot pins: (epoch, refcount). A handful at most, so a flat
  /// vector beats a map.
  std::vector<std::pair<CacheEpoch, int>> pins_;
  uint64_t regions_cached_ = 0;
  CacheStats stats_;
};

}  // namespace qof

#endif  // QOF_CACHE_EVAL_CACHE_H_
