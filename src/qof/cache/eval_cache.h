#ifndef QOF_CACHE_EVAL_CACHE_H_
#define QOF_CACHE_EVAL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qof/region/region_set.h"

namespace qof {

/// Counters for both query caches, exposed through
/// FileQuerySystem::cache_stats().
struct CacheStats {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t eval_hits = 0;
  uint64_t eval_misses = 0;
  uint64_t eval_evictions = 0;
  uint64_t eval_regions_cached = 0;  // currently retained
  uint64_t invalidations = 0;        // epoch flushes + explicit clears
};

/// Identifies one index state: entries cached under a different epoch are
/// never served. `generation` counts mutations; `compactions` must ride
/// along because Compact() rebases region/posting offsets *without*
/// bumping the generation.
struct CacheEpoch {
  uint64_t generation = 0;
  uint64_t compactions = 0;

  friend bool operator==(const CacheEpoch& a, const CacheEpoch& b) {
    return a.generation == b.generation && a.compactions == b.compactions;
  }
  friend bool operator!=(const CacheEpoch& a, const CacheEpoch& b) {
    return !(a == b);
  }
};

/// LRU map from a serialized region expression (plus the index epoch it
/// was evaluated under) to the resulting RegionSet, shared immutably with
/// every consumer. Thm 3.6 normal forms are canonical and re-parseable,
/// so the serialized expression is a perfect key. Bounded by total
/// regions retained, not entry count — the budget-relevant quantity.
/// Thread-safe; sits below the algebra evaluator, which consults it.
class EvalCache {
 public:
  EvalCache(uint64_t max_regions, bool inject_stale)
      : max_regions_(max_regions), inject_stale_(inject_stale) {}

  /// Returns the cached set for `key` if it was cached under `epoch`
  /// (stale entries are flushed wholesale on the first access under a new
  /// epoch), or null. Under the planted inject_stale bug the epoch check
  /// is skipped — old-generation entries keep being served, which the
  /// fuzzer's cache leg exists to catch (--inject stale-cache).
  std::shared_ptr<const RegionSet> Lookup(const std::string& key,
                                          const CacheEpoch& epoch);

  void Insert(const std::string& key, const CacheEpoch& epoch,
              std::shared_ptr<const RegionSet> set);

  void Clear();
  CacheStats stats() const;

 private:
  void FlushForEpochLocked(const CacheEpoch& epoch);
  void EvictIfNeededLocked();

  const uint64_t max_regions_;
  const bool inject_stale_;
  mutable std::mutex mu_;
  CacheEpoch epoch_;
  std::list<std::string> lru_;  // front = most recent
  struct Slot {
    std::shared_ptr<const RegionSet> set;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  uint64_t regions_cached_ = 0;
  CacheStats stats_;
};

}  // namespace qof

#endif  // QOF_CACHE_EVAL_CACHE_H_
