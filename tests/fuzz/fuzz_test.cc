#include "qof/fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include "qof/fuzz/repro.h"
#include "qof/fuzz/shrink.h"

namespace qof {
namespace {

FuzzOptions FastOptions() {
  FuzzOptions options;
  options.workers = 2;
  options.max_chains = 60;  // keep the convergence check cheap in tests
  return options;
}

TEST(FuzzTest, CleanRunHoldsAllInvariants) {
  FuzzOptions options = FastOptions();
  options.iterations = 50;
  options.seed = 3;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->failed) << report->failure;
  EXPECT_EQ(report->iterations_run, 50);
  EXPECT_NE(report->case_hash, 0u);
  EXPECT_TRUE(report->repro.empty());
}

TEST(FuzzTest, SeededRunsAreByteReproducible) {
  FuzzOptions options = FastOptions();
  options.iterations = 30;
  options.seed = 17;
  auto first = RunFuzz(options);
  auto second = RunFuzz(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The case hash folds every byte of every generated case, so equal
  // hashes mean the two runs generated identical work.
  EXPECT_EQ(first->case_hash, second->case_hash);

  options.seed = 18;
  auto other = RunFuzz(options);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(first->case_hash, other->case_hash);
}

TEST(FuzzTest, GeneratedCasesAreDeterministic) {
  FuzzOptions options = FastOptions();
  options.seed = 5;
  for (int i = 0; i < 10; ++i) {
    ConcreteCase a = Concretize(GenerateCase(options, i));
    ConcreteCase b = Concretize(GenerateCase(options, i));
    EXPECT_EQ(a.schema_text, b.schema_text);
    EXPECT_EQ(a.docs, b.docs);
    EXPECT_EQ(a.fql, b.fql);
    EXPECT_EQ(a.subsets, b.subsets);
  }
}

TEST(FuzzTest, InjectedRelaxDirectBugIsCaughtAndShrunkSmall) {
  // Dropping the ⊃d→⊃ rewrite guard (Prop. 3.5) breaks normal-form
  // convergence on self-nested schemas. The fuzzer must catch it and the
  // shrinker must reduce the witness to a near-minimal case.
  FuzzOptions options = FastOptions();
  options.iterations = 40;
  options.seed = 2;
  options.bug = InjectedBug::kRelaxDirect;
  options.canned_fraction = 0.0;
  options.invalid_fraction = 0.0;
  options.schema_gen.recursion_rate = 1.0;  // cycles make the guard load-bearing
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected optimizer bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("chain"), std::string::npos)
      << report->failure;
  // Near-minimal: a couple of grammar productions and at most a couple
  // of query atoms suffice to witness the broken rewrite.
  EXPECT_LE(report->shrunk.schema.NumProductions(), 3)
      << "schema:\n"
      << report->shrunk.schema.Render();
  EXPECT_LE(report->shrunk.query.AtomCount(), 2);
  ASSERT_FALSE(report->repro.empty());

  // The written repro replays to the same failure under the same bug.
  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed);
}

TEST(FuzzTest, InjectedExactSkipBugIsCaught) {
  // Treating a superset candidate set as exact (skipping phase 2) must
  // surface as a differential failure against the baseline.
  FuzzOptions options = FastOptions();
  options.iterations = 120;
  options.seed = 6;
  options.bug = InjectedBug::kExactSkip;
  options.invalid_fraction = 0.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->failed) << "injected exactness bug survived "
                              << report->iterations_run << " iterations";
}

TEST(FuzzTest, InjectedDropTombstoneBugIsCaught) {
  // Losing one tombstone's index splice leaves the dead document's
  // contribution in the indexes. The maintenance leg must flag it —
  // either as a differential mismatch against the baseline scan or as
  // compaction's own consistency check firing.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 4;
  options.bug = InjectedBug::kDropTombstone;
  options.invalid_fraction = 0.0;
  options.mutation_fraction = 1.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected maintenance bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[maintain"), std::string::npos)
      << report->failure;

  // The written repro replays to the same failure under the same bug.
  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedStaleCacheBugIsCaught) {
  // An eval cache that ignores index-epoch changes keeps serving
  // answers computed before a mutation. The caching leg's cached-vs-
  // uncached comparison across interleaved mutations must flag it, and
  // the written repro must replay to the same failure.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 1;
  options.bug = InjectedBug::kStaleCache;
  options.invalid_fraction = 0.0;
  options.mutation_fraction = 1.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected stale-cache bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[cache"), std::string::npos)
      << report->failure;

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedStaleSnapshotBugIsCaughtAndShrunk) {
  // A service that silently runs a session's queries against the live
  // state instead of its pinned snapshot breaks repeatable reads. The
  // interleaved-session leg replays each session's pinned generation
  // through a fresh oracle system and must flag the divergence; the
  // shrinker must cut the witness down and the repro must replay.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 1;
  options.bug = InjectedBug::kStaleSnapshot;
  options.invalid_fraction = 0.0;
  options.mutation_fraction = 1.0;  // no mutations, no divergence to see
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected stale-snapshot bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[session"), std::string::npos)
      << report->failure;

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedEvictPinnedBugIsCaughtAndShrunk) {
  // A buffer pool that evicts pinned frames overwrites pages mid-read:
  // a multi-page posting stream assembled under a one-frame pool decodes
  // another page's bytes. The disk-tier leg's on-disk-vs-in-memory
  // cross-checks (queries plus the forced-materialization export
  // comparison) must flag it, and the repro must replay to the same
  // failure.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 1;
  options.bug = InjectedBug::kEvictPinned;
  options.invalid_fraction = 0.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected evict-pinned bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[disk"), std::string::npos)
      << report->failure;

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedSkipDirSyncBugIsCaughtAndShrunk) {
  // A commit protocol whose atomic renames are never made durable (the
  // parent-directory fsync silently skipped) acknowledges commits that a
  // power cut rolls back. The crash-sweep leg simulates the cut after
  // every I/O op and must flag the lost commit; the shrinker must cut
  // the witness down and the repro must replay to the same failure.
  FuzzOptions options = FastOptions();
  options.iterations = 30;
  options.seed = 1;
  options.bug = InjectedBug::kSkipDirSync;
  options.invalid_fraction = 0.0;
  options.mutation_fraction = 1.0;  // the leg is the mutation trace
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected skip-dir-sync bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[crash-sweep"), std::string::npos)
      << report->failure;
  // Near-minimal: one mutation step suffices to witness the volatile
  // rename (the very first checkpoint's MANIFEST publish is the bug).
  EXPECT_LE(report->shrunk.mutations.size(), 2u);

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedRacyMergeBugIsCaughtAndShrunk) {
  // An unsynchronized morsel merge loses a range's results (modeled as
  // the first range dropped). Serial execution is untouched, so only the
  // parallel leg's serial-vs-parallel differential — run at a tiny
  // morsel grain so even shrunk cases still split — can flag it, and the
  // repro must replay to the same failure.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 1;
  options.bug = InjectedBug::kRacyMerge;
  options.invalid_fraction = 0.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected racy-merge bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[parallel"), std::string::npos)
      << report->failure;

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, InjectedBadCseBugIsCaught) {
  // A CSE pass that hashes selection nodes without their word operands
  // merges structurally different selections, so the IR engine returns
  // answers for the wrong word. The IR leg's tree-vs-IR differential
  // must flag it, and the written repro must replay to the same failure.
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 1;
  options.bug = InjectedBug::kBadCse;
  options.invalid_fraction = 0.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed) << "injected bad-CSE bug survived "
                              << report->iterations_run << " iterations";
  EXPECT_NE(report->failure.find("[ir"), std::string::npos)
      << report->failure;

  auto replay = ReplayRepro(report->repro, /*workers=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->failed) << report->repro;
}

TEST(FuzzTest, MutationSequencesHoldInvariants) {
  // Every case gets a mutation sequence: incremental maintenance must
  // match a from-scratch rebuild, down to the compacted blob bytes.
  FuzzOptions options = FastOptions();
  options.iterations = 40;
  options.seed = 21;
  options.invalid_fraction = 0.0;
  options.mutation_fraction = 1.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->failed) << report->failure;
}

TEST(FuzzTest, InvalidQueryClassNeverCrashes) {
  FuzzOptions options = FastOptions();
  options.iterations = 60;
  options.seed = 9;
  options.invalid_fraction = 1.0;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->failed) << report->failure;
}

TEST(FuzzTest, ReproRoundTripIsByteIdentical) {
  FuzzOptions options = FastOptions();
  options.seed = 11;
  for (int i = 0; i < 8; ++i) {
    ReproFile repro;
    repro.concrete_case = Concretize(GenerateCase(options, i));
    repro.bug = InjectedBug::kNone;
    repro.seed = 42 + i;
    std::string text = WriteRepro(repro);
    auto parsed = ParseRepro(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(WriteRepro(*parsed), text);
    EXPECT_EQ(parsed->concrete_case.schema_text,
              repro.concrete_case.schema_text);
    EXPECT_EQ(parsed->concrete_case.docs, repro.concrete_case.docs);
    EXPECT_EQ(parsed->concrete_case.fql, repro.concrete_case.fql);
    EXPECT_EQ(parsed->concrete_case.subsets, repro.concrete_case.subsets);
    EXPECT_EQ(parsed->concrete_case.mutations,
              repro.concrete_case.mutations);
    EXPECT_EQ(parsed->seed, repro.seed);
  }
}

TEST(FuzzTest, MutationStepsRoundTripThroughRepro) {
  // Force mutations on every case so the repro's mutate lines (add and
  // update heredocs, bare removes, empty-text updates) all get exercised.
  FuzzOptions options = FastOptions();
  options.seed = 23;
  options.mutation_fraction = 1.0;
  bool saw_mutations = false;
  for (int i = 0; i < 12; ++i) {
    ReproFile repro;
    repro.concrete_case = Concretize(GenerateCase(options, i));
    repro.bug = InjectedBug::kDropTombstone;
    repro.seed = 7 + i;
    saw_mutations |= !repro.concrete_case.mutations.empty();
    std::string text = WriteRepro(repro);
    auto parsed = ParseRepro(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(WriteRepro(*parsed), text);
    EXPECT_EQ(parsed->concrete_case.mutations,
              repro.concrete_case.mutations);
    EXPECT_EQ(parsed->bug, InjectedBug::kDropTombstone);
  }
  EXPECT_TRUE(saw_mutations);
}

TEST(FuzzTest, ShrinkerReductionsShrinkTheCase) {
  FuzzOptions options = FastOptions();
  options.seed = 13;
  FuzzCase fuzz_case = GenerateCase(options, 0);
  for (const FuzzCase& reduced : CaseReductions(fuzz_case)) {
    ConcreteCase a = Concretize(fuzz_case);
    ConcreteCase b = Concretize(reduced);
    size_t size_a = a.schema_text.size() + a.fql.size() +
                    a.subsets.size() * 8;
    size_t size_b = b.schema_text.size() + b.fql.size() +
                    b.subsets.size() * 8;
    for (const auto& [name, text] : a.docs) size_a += text.size() + 16;
    for (const auto& [name, text] : b.docs) size_b += text.size() + 16;
    EXPECT_LE(size_b, size_a);
  }
}

TEST(FuzzTest, InjectedBugNamesRoundTrip) {
  for (InjectedBug bug : {InjectedBug::kNone, InjectedBug::kRelaxDirect,
                          InjectedBug::kExactSkip,
                          InjectedBug::kDropTombstone,
                          InjectedBug::kStaleCache,
                          InjectedBug::kBadCse,
                          InjectedBug::kStaleSnapshot,
                          InjectedBug::kEvictPinned,
                          InjectedBug::kSkipDirSync,
                          InjectedBug::kRacyMerge}) {
    auto parsed = InjectedBugFromName(InjectedBugName(bug));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, bug);
  }
  EXPECT_FALSE(InjectedBugFromName("no-such-bug").ok());
}

}  // namespace
}  // namespace qof
