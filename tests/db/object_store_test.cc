#include "qof/db/object_store.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(ObjectStoreTest, InsertAndGet) {
  ObjectStore store;
  ObjectId id = store.Insert(
      "Reference", Value::MakeTuple({{"Key", Value::Str("Corl82a")}}));
  EXPECT_EQ(id, 1u);
  auto obj = store.Get(id);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->class_name, "Reference");
  EXPECT_EQ((*obj)->state.Field("Key")->str(), "Corl82a");
}

TEST(ObjectStoreTest, GetInvalidId) {
  ObjectStore store;
  EXPECT_FALSE(store.Get(0).ok());
  EXPECT_FALSE(store.Get(1).ok());
  store.Insert("X", Value::Null());
  EXPECT_TRUE(store.Get(1).ok());
  EXPECT_FALSE(store.Get(2).ok());
}

TEST(ObjectStoreTest, ExtentsByClassInInsertionOrder) {
  ObjectStore store;
  ObjectId a = store.Insert("A", Value::Int(1));
  ObjectId b = store.Insert("B", Value::Int(2));
  ObjectId a2 = store.Insert("A", Value::Int(3));
  EXPECT_EQ(store.Extent("A"), (std::vector<ObjectId>{a, a2}));
  EXPECT_EQ(store.Extent("B"), (std::vector<ObjectId>{b}));
  EXPECT_TRUE(store.Extent("C").empty());
  EXPECT_EQ(store.size(), 3u);
}

TEST(ObjectStoreTest, ApproxBytesGrows) {
  ObjectStore small;
  small.Insert("A", Value::Str("x"));
  ObjectStore big;
  for (int i = 0; i < 10; ++i) {
    big.Insert("A", Value::Str("a longer string value here"));
  }
  EXPECT_LT(small.ApproxBytes(), big.ApproxBytes());
}

}  // namespace
}  // namespace qof
