#include "qof/db/evaluator.h"

#include <set>

#include <gtest/gtest.h>

namespace qof {
namespace {

// A Reference object shaped like the paper's database view:
//   {Key, Authors: {Name...}, Editors: {Name...}, Year}
class Fixture : public ::testing::Test {
 protected:
  static Value Name(const char* first, const char* last) {
    return Value::MakeTuple({{"First_Name", Value::Str(first)},
                             {"Last_Name", Value::Str(last)}})
        .WithType("Name");
  }

  void SetUp() override {
    Value authors = Value::MakeSet({Name("Y. F.", "Chang"),
                                    Name("G. F.", "Corliss")})
                        .WithType("Authors");
    Value editors =
        Value::MakeSet({Name("A.", "Griewank")}).WithType("Editors");
    Value state = Value::MakeTuple({{"Key", Value::Str("Corl82a")},
                                    {"Authors", authors},
                                    {"Editors", editors},
                                    {"Year", Value::Int(1982)}})
                      .WithType("Reference");
    ref_id_ = store_.Insert("Reference", state);
    root_ = Value::Ref(ref_id_).WithType("Reference");
  }

  ObjectStore store_;
  ObjectId ref_id_ = 0;
  Value root_;
};

TEST_F(Fixture, AttributeStep) {
  auto out = NavigatePath(store_, root_, {NavStep::Attr("Key")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].str(), "Corl82a");
}

TEST_F(Fixture, PathThroughSetWithTypedStep) {
  // r.Authors.Name.Last_Name — the paper's flagship path.
  auto out = NavigatePath(store_, root_,
                          {NavStep::Attr("Authors"), NavStep::Attr("Name"),
                           NavStep::Attr("Last_Name")});
  ASSERT_EQ(out.size(), 2u);
  // Set elements are canonically ordered by content: the Corliss tuple
  // ("G. F." < "Y. F." on First_Name) sorts before the Chang tuple.
  EXPECT_EQ(out[0].str(), "Corliss");
  EXPECT_EQ(out[1].str(), "Chang");
}

TEST_F(Fixture, PathWithoutTypedStepAlsoWorks) {
  // r.Authors.Last_Name skips the Name type step: set elements are
  // traversed and the field looked up directly.
  auto out = NavigatePath(
      store_, root_,
      {NavStep::Attr("Authors"), NavStep::Attr("Last_Name")});
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(Fixture, EditorsPathIsSeparate) {
  auto out = NavigatePath(store_, root_,
                          {NavStep::Attr("Editors"), NavStep::Attr("Name"),
                           NavStep::Attr("Last_Name")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].str(), "Griewank");
}

TEST_F(Fixture, MissingAttributeYieldsNothing) {
  auto out = NavigatePath(store_, root_, {NavStep::Attr("Publisher")});
  EXPECT_TRUE(out.empty());
}

TEST_F(Fixture, WildcardStarReachesAllDepths) {
  // r.*X.Last_Name — any path to a Last_Name (paper §5.3). A value
  // reachable through several routes appears several times; wildcard
  // results are treated as sets (predicates are existential).
  auto out = NavigatePath(
      store_, root_, {NavStep::AnyStar(), NavStep::Attr("Last_Name")});
  std::set<std::string> distinct;
  for (const Value& v : out) distinct.insert(v.str());
  EXPECT_EQ(distinct,
            (std::set<std::string>{"Chang", "Corliss", "Griewank"}));
}

TEST_F(Fixture, WildcardStarIncludesEmptySequence) {
  auto out =
      NavigatePath(store_, root_, {NavStep::AnyStar(), NavStep::Attr("Key")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].str(), "Corl82a");
}

TEST_F(Fixture, CollectDescendantsIncludesSelfAndLeaves) {
  auto out = CollectDescendants(store_, root_);
  // Root resolves to the state tuple; includes atoms like 1982.
  bool found_year = false;
  for (const Value& v : out) {
    if (v.kind() == Value::Kind::kInt && v.int_value() == 1982) {
      found_year = true;
    }
  }
  EXPECT_TRUE(found_year);
  EXPECT_GE(out.size(), 10u);
}

TEST_F(Fixture, RefResolutionThroughStore) {
  // Navigation starts from a bare Ref and resolves through the store.
  auto out = NavigatePath(store_, Value::Ref(ref_id_),
                          {NavStep::Attr("Year")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].int_value(), 1982);
}

TEST_F(Fixture, DuplicatesPreservedAcrossSets) {
  // Two references each with a Chang author: navigating from a list of
  // refs yields two hits.
  Value state2 = Value::MakeTuple(
                     {{"Authors", Value::MakeSet({Name("Q.", "Chang")})
                                      .WithType("Authors")}})
                     .WithType("Reference");
  ObjectId id2 = store_.Insert("Reference", state2);
  Value both = Value::MakeList({Value::Ref(ref_id_), Value::Ref(id2)});
  auto out = NavigatePath(store_, both,
                          {NavStep::Attr("Authors"), NavStep::Attr("Name"),
                           NavStep::Attr("Last_Name")});
  int changs = 0;
  for (const Value& v : out) {
    if (v.str() == "Chang") ++changs;
  }
  EXPECT_EQ(changs, 2);
}

}  // namespace
}  // namespace qof
