#include "qof/db/value.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(ValueTest, NullValue) {
  Value v;
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_TRUE(v.Equals(Value::Null()));
}

TEST(ValueTest, Atoms) {
  Value s = Value::Str("Chang");
  EXPECT_EQ(s.kind(), Value::Kind::kString);
  EXPECT_EQ(s.str(), "Chang");
  EXPECT_EQ(s.ToString(), "\"Chang\"");

  Value i = Value::Int(1982);
  EXPECT_EQ(i.kind(), Value::Kind::kInt);
  EXPECT_EQ(i.int_value(), 1982);
  EXPECT_EQ(i.ToString(), "1982");

  Value r = Value::Ref(7);
  EXPECT_EQ(r.kind(), Value::Kind::kRef);
  EXPECT_EQ(r.ref_id(), 7u);
  EXPECT_EQ(r.ToString(), "@7");
}

TEST(ValueTest, TuplePreservesFieldOrder) {
  Value t = Value::MakeTuple({{"First_Name", Value::Str("Y. F.")},
                              {"Last_Name", Value::Str("Chang")}});
  EXPECT_EQ(t.kind(), Value::Kind::kTuple);
  ASSERT_NE(t.Field("Last_Name"), nullptr);
  EXPECT_EQ(t.Field("Last_Name")->str(), "Chang");
  EXPECT_EQ(t.Field("Missing"), nullptr);
  EXPECT_EQ(t.ToString(),
            "{First_Name: \"Y. F.\", Last_Name: \"Chang\"}");
}

TEST(ValueTest, SetOrdersCanonicallyKeepingOccurrences) {
  // Sets order canonically but keep duplicate occurrences: each element
  // is a region of file text, and the index-computed answer counts
  // regions, so the database view must too ("parsing; parsing" is two
  // keywords).
  Value s = Value::MakeSet(
      {Value::Str("b"), Value::Str("a"), Value::Str("b")});
  ASSERT_EQ(s.elements().size(), 3u);
  EXPECT_EQ(s.elements()[0].str(), "a");
  EXPECT_EQ(s.elements()[1].str(), "b");
  EXPECT_EQ(s.elements()[2].str(), "b");
}

TEST(ValueTest, ListKeepsOrderAndDuplicates) {
  Value l = Value::MakeList(
      {Value::Str("b"), Value::Str("a"), Value::Str("b")});
  ASSERT_EQ(l.elements().size(), 3u);
  EXPECT_EQ(l.elements()[0].str(), "b");
  EXPECT_EQ(l.ToString(), "[\"b\", \"a\", \"b\"]");
}

TEST(ValueTest, EqualityIgnoresTypeTags) {
  Value a = Value::Str("Chang").WithType("Last_Name");
  Value b = Value::Str("Chang");
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.type_name(), "Last_Name");
  EXPECT_EQ(b.type_name(), "");
}

TEST(ValueTest, EqualityIsStructural) {
  Value n1 = Value::MakeTuple({{"First_Name", Value::Str("A.")},
                               {"Last_Name", Value::Str("Chang")}});
  Value n2 = Value::MakeTuple({{"First_Name", Value::Str("A.")},
                               {"Last_Name", Value::Str("Chang")}});
  Value n3 = Value::MakeTuple({{"First_Name", Value::Str("B.")},
                               {"Last_Name", Value::Str("Chang")}});
  EXPECT_TRUE(n1.Equals(n2));
  EXPECT_FALSE(n1.Equals(n3));
}

TEST(ValueTest, CompareIsTotalOrder) {
  std::vector<Value> vals = {
      Value::Null(),         Value::Str("a"),  Value::Str("b"),
      Value::Int(1),         Value::Int(2),    Value::Ref(1),
      Value::MakeSet({}),    Value::MakeList({}),
      Value::MakeTuple({{"x", Value::Int(1)}}),
  };
  for (const Value& a : vals) {
    EXPECT_EQ(Value::Compare(a, a), 0);
    for (const Value& b : vals) {
      EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a));
    }
  }
}

TEST(ValueTest, KindsCompareDisjoint) {
  EXPECT_NE(Value::Compare(Value::Str("1"), Value::Int(1)), 0);
  EXPECT_NE(Value::Compare(Value::MakeSet({}), Value::MakeList({})), 0);
}

}  // namespace
}  // namespace qof
