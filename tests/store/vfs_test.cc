// The storage substrate's contract: RealVfs atomic replacement on a real
// filesystem, AtomicWriteFile's old-or-new guarantee under disk-full, and
// FaultVfs's disk model — live vs. durable content, volatile directory
// entries, deterministic power cuts, injected read errors, and the
// planted skip-dir-sync bug's observable effect.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/store/fault_vfs.h"
#include "qof/store/paged_file.h"
#include "qof/store/vfs.h"

namespace qof {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Status WriteAll(Vfs* vfs, const std::string& path, std::string_view bytes,
                bool sync) {
  auto out = vfs->OpenWrite(path, /*truncate=*/true);
  if (!out.ok()) return out.status();
  QOF_RETURN_IF_ERROR((*out)->Append(bytes));
  if (sync) QOF_RETURN_IF_ERROR((*out)->Sync());
  return (*out)->Close();
}

TEST(VfsTest, ParentDirSplitsPaths) {
  EXPECT_EQ(ParentDir("a/b/c.txt"), "a/b");
  EXPECT_EQ(ParentDir("dir/f"), "dir");
  EXPECT_EQ(ParentDir("plain.txt"), ".");
}

TEST(VfsTest, SyncPolicyNamesRoundTrip) {
  for (SyncPolicy p :
       {SyncPolicy::kAlways, SyncPolicy::kBatch, SyncPolicy::kNone}) {
    auto back = SyncPolicyFromName(SyncPolicyName(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(SyncPolicyFromName("sometimes").ok());
}

TEST(VfsTest, RealVfsWriteReadRoundTrip) {
  RealVfs vfs;
  const std::string path = TempPath("real_rt.bin");
  ASSERT_TRUE(WriteAll(&vfs, path, "hello vfs", /*sync=*/true).ok());
  EXPECT_TRUE(vfs.Exists(path));
  auto bytes = VfsReadFile(&vfs, path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello vfs");

  auto file = vfs.OpenRead(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->size(), 9u);
  std::string mid;
  ASSERT_TRUE((*file)->ReadAt(6, 3, &mid).ok());
  EXPECT_EQ(mid, "vfs");
  // Reading past EOF is an error, never a short read.
  EXPECT_FALSE((*file)->ReadAt(6, 4, &mid).ok());

  ASSERT_TRUE(vfs.Remove(path).ok());
  EXPECT_FALSE(vfs.Exists(path));
}

TEST(VfsTest, RealVfsAtomicWriteReplacesAndLeavesNoTemp) {
  RealVfs vfs;
  const std::string path = TempPath("real_atomic.bin");
  ASSERT_TRUE(AtomicWriteFile(&vfs, path, "first").ok());
  ASSERT_TRUE(AtomicWriteFile(&vfs, path, "second, longer").ok());
  auto bytes = VfsReadFile(&vfs, path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "second, longer");
  EXPECT_FALSE(vfs.Exists(path + ".tmp"));
  ASSERT_TRUE(vfs.Remove(path).ok());
}

TEST(VfsTest, RealVfsListsAndTruncates) {
  RealVfs vfs;
  const std::string dir = TempPath("real_list_dir");
  ASSERT_TRUE(vfs.CreateDir(dir).ok());
  ASSERT_TRUE(vfs.CreateDir(dir).ok());  // idempotent
  ASSERT_TRUE(WriteAll(&vfs, dir + "/b", "bb", true).ok());
  ASSERT_TRUE(WriteAll(&vfs, dir + "/a", "aaaa", true).ok());
  auto entries = vfs.ListDir(dir);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(vfs.Truncate(dir + "/a", 2).ok());
  auto a = VfsReadFile(&vfs, dir + "/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "aa");
  ASSERT_TRUE(vfs.Remove(dir + "/a").ok());
  ASSERT_TRUE(vfs.Remove(dir + "/b").ok());
}

// --------------------------------------------------------------------------
// FaultVfs: the disk model

TEST(FaultVfsTest, UnsyncedFileEntryDoesNotSurvivePowerCut) {
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "volatile", /*sync=*/true).ok());
  // File content synced, but the directory entry never was: the name is
  // still volatile, so the cut forgets the file entirely.
  EXPECT_TRUE(vfs.Exists("f"));
  vfs.CutPower(1);
  EXPECT_FALSE(vfs.Exists("f"));
}

TEST(FaultVfsTest, SyncPlusDirSyncMakesFileDurable) {
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "durable bytes", /*sync=*/true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  vfs.CutPower(2);
  auto bytes = VfsReadFile(&vfs, "f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "durable bytes");
}

TEST(FaultVfsTest, UnsyncedAppendMayRotButDurablePrefixSurvives) {
  FaultVfs vfs;
  vfs.set_torn_sector_bytes(4);
  ASSERT_TRUE(WriteAll(&vfs, "f", "AAAA", /*sync=*/true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  {
    auto out = vfs.OpenWrite("f", /*truncate=*/false);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append("BBBBBBBB").ok());  // never synced
    ASSERT_TRUE((*out)->Close().ok());
  }
  vfs.CutPower(3);
  auto bytes = VfsReadFile(&vfs, "f");
  ASSERT_TRUE(bytes.ok());
  // The synced prefix is inviolate; the unsynced tail is any
  // sector-aligned length of arbitrary bytes.
  ASSERT_GE(bytes->size(), 4u);
  EXPECT_EQ(bytes->substr(0, 4), "AAAA");
  EXPECT_LE(bytes->size(), 12u);
  EXPECT_EQ(bytes->size() % 4, 0u);
}

TEST(FaultVfsTest, CutPowerIsSeedDeterministic) {
  auto build = [](FaultVfs* vfs) {
    ASSERT_TRUE(WriteAll(vfs, "f", "base-", /*sync=*/true).ok());
    ASSERT_TRUE(vfs->SyncDir(".").ok());
    auto out = vfs->OpenWrite("f", /*truncate=*/false);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append("unsynced tail of some length").ok());
    ASSERT_TRUE((*out)->Close().ok());
  };
  FaultVfs a, b;
  build(&a);
  build(&b);
  a.CutPower(99);
  b.CutPower(99);
  auto fa = a.PeekFile("f");
  auto fb = b.PeekFile("f");
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(*fa, *fb);
}

TEST(FaultVfsTest, AtomicRenameIsDurableOnlyAfterDirSync) {
  // The happy path: AtomicWriteFile (write tmp, sync, rename, dirsync)
  // over a durable old version survives the cut with the new content.
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "old", /*sync=*/true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  ASSERT_TRUE(AtomicWriteFile(&vfs, "f", "new").ok());
  vfs.CutPower(4);
  auto bytes = VfsReadFile(&vfs, "f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "new");
}

TEST(FaultVfsTest, SkipDirSyncMakesAcknowledgedRenameRollBack) {
  // The planted bug: SyncDir lies. The same AtomicWriteFile returns
  // success, but the rename was never persisted — the cut rolls the
  // name back to the old content. This observable difference is what
  // the crash-sweep fuzz leg detects end to end.
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "old", /*sync=*/true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  vfs.set_skip_dir_sync(true);
  ASSERT_TRUE(AtomicWriteFile(&vfs, "f", "new").ok());  // acknowledged!
  vfs.CutPower(4);
  auto bytes = VfsReadFile(&vfs, "f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "old");
}

TEST(FaultVfsTest, DiskFullAtomicWriteLeavesOldContentIntact) {
  // Regression for the WriteFileBytes path: a failed atomic replace
  // (disk full mid-tmp-write) must leave the previous file byte-intact
  // and clean up the temp file — never a partial image at either name.
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "precious old image", /*sync=*/true).ok());
  ASSERT_TRUE(vfs.SyncDir(".").ok());
  vfs.set_space_limit(24);  // room for a few bytes of tmp, not the image

  ScopedVfs scoped(&vfs);
  std::string big(4096, 'x');
  Status status = WriteFileBytes("f", big);
  EXPECT_FALSE(status.ok());
  auto bytes = VfsReadFile(&vfs, "f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "precious old image");
  EXPECT_FALSE(vfs.Exists("f.tmp"));
}

TEST(FaultVfsTest, InjectedReadErrorsAreTransient) {
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "f", "readable", /*sync=*/true).ok());
  auto file = vfs.OpenRead("f");
  ASSERT_TRUE(file.ok());
  vfs.set_fail_reads(2);
  std::string buf;
  EXPECT_FALSE((*file)->ReadAt(0, 4, &buf).ok());
  EXPECT_FALSE((*file)->ReadAt(0, 4, &buf).ok());
  ASSERT_TRUE((*file)->ReadAt(0, 4, &buf).ok());
  EXPECT_EQ(buf, "read");
}

TEST(FaultVfsTest, CrashAtOpFailsEverythingUntilCutPower) {
  FaultVfs vfs;
  ASSERT_TRUE(WriteAll(&vfs, "a", "1", /*sync=*/false).ok());
  const uint64_t ops = vfs.op_count();
  ASSERT_GT(ops, 0u);
  vfs.set_crash_at_op(ops);  // the very next mutating op dies
  EXPECT_FALSE(WriteAll(&vfs, "b", "2", /*sync=*/false).ok());
  EXPECT_TRUE(vfs.crashed());
  // Once power is lost every op fails, reads included.
  EXPECT_FALSE(vfs.Rename("a", "c").ok());
  EXPECT_FALSE(VfsReadFile(&vfs, "a").ok());
  vfs.CutPower(5);
  EXPECT_FALSE(vfs.crashed());
  ASSERT_TRUE(WriteAll(&vfs, "b", "2", /*sync=*/false).ok());
}

TEST(FaultVfsTest, OpChargingIsDeterministic) {
  auto trace = [](FaultVfs* vfs) {
    ASSERT_TRUE(vfs->CreateDir("d").ok());
    ASSERT_TRUE(WriteAll(vfs, "d/f", "xyz", /*sync=*/true).ok());
    ASSERT_TRUE(vfs->Rename("d/f", "d/g").ok());
    ASSERT_TRUE(vfs->SyncDir("d").ok());
    ASSERT_TRUE(vfs->Truncate("d/g", 1).ok());
    ASSERT_TRUE(vfs->Remove("d/g").ok());
  };
  FaultVfs a, b;
  trace(&a);
  trace(&b);
  EXPECT_EQ(a.op_count(), b.op_count());
  // Arming the crash at each op k < total makes exactly op k fail.
  for (uint64_t k = 0; k < a.op_count(); ++k) {
    FaultVfs probe;
    probe.set_crash_at_op(k);
    // Re-run the trace permissively: it must fail partway, never crash.
    probe.CreateDir("d").ok();
    if (auto out = probe.OpenWrite("d/f", true); out.ok()) {
      (*out)->Append("xyz").ok();
      (*out)->Sync().ok();
      (*out)->Close().ok();
    }
    probe.Rename("d/f", "d/g").ok();
    probe.SyncDir("d").ok();
    probe.Truncate("d/g", 1).ok();
    probe.Remove("d/g").ok();
    EXPECT_TRUE(probe.crashed()) << "op " << k << " never fired";
  }
}

TEST(FaultVfsTest, ListDirSeesLiveNamespace) {
  FaultVfs vfs;
  ASSERT_TRUE(vfs.CreateDir("dir").ok());
  ASSERT_TRUE(WriteAll(&vfs, "dir/z", "1", false).ok());
  ASSERT_TRUE(WriteAll(&vfs, "dir/a", "2", false).ok());
  auto entries = vfs.ListDir("dir");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, (std::vector<std::string>{"a", "z"}));
}

}  // namespace
}  // namespace qof
