// Read-fault behavior of the buffer pool: transient I/O errors are
// absorbed by one retry, persistent errors and checksum failures surface
// loudly and never leave a bad frame cached, and the stats counters
// account for all of it — under concurrency too (this file runs in the
// store-tsan CI leg).

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qof/store/buffer_pool.h"
#include "qof/store/fault_vfs.h"
#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/store/store_format.h"
#include "qof/store/vfs.h"

namespace qof {
namespace {

/// A little n-page image of kPostings pages ("page-<i>" payloads)
/// written into `vfs`, fully durable.
void WritePages(Vfs* vfs, const std::string& path, uint32_t n,
                uint32_t page_size) {
  std::string image;
  for (uint32_t i = 0; i < n; ++i) {
    AppendPage(PageType::kPostings, "page-" + std::to_string(i), page_size,
               &image);
  }
  ASSERT_TRUE(AtomicWriteFile(vfs, path, image).ok());
}

class BufferPoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scoped_ = std::make_unique<ScopedVfs>(&vfs_);
    WritePages(&vfs_, "store", 6, kMinStorePageSize);
    auto file = PagedFile::Open("store", kMinStorePageSize);
    ASSERT_TRUE(file.ok()) << file.status().message();
    file_ = std::make_unique<PagedFile>(std::move(*file));
  }

  FaultVfs vfs_;
  std::unique_ptr<ScopedVfs> scoped_;
  std::unique_ptr<PagedFile> file_;
};

TEST_F(BufferPoolFaultTest, TransientReadErrorIsRetriedOnce) {
  BufferPool pool(file_.get(), BufferPoolOptions{4, false});
  vfs_.set_fail_reads(1);
  auto page = pool.Fetch(0);
  ASSERT_TRUE(page.ok()) << page.status().message();
  EXPECT_EQ(page->payload(), "page-0");
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.read_retries, 1u);
  EXPECT_EQ(s.io_errors, 0u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(BufferPoolFaultTest, PersistentReadErrorFailsAndIsNotCached) {
  BufferPool pool(file_.get(), BufferPoolOptions{4, false});
  vfs_.set_fail_reads(100);
  auto bad = pool.Fetch(1);
  EXPECT_FALSE(bad.ok());
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.io_errors, 1u);
  EXPECT_EQ(s.read_retries, 1u);  // the one retry was spent, then gave up
  EXPECT_EQ(s.pinned_frames, 0u);

  // The failed page must not linger in the pool: once the disk heals,
  // the same fetch goes back to disk (a miss, not a poisoned hit).
  vfs_.set_fail_reads(0);
  auto good = pool.Fetch(1);
  ASSERT_TRUE(good.ok()) << good.status().message();
  EXPECT_EQ(good->payload(), "page-1");
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST_F(BufferPoolFaultTest, RetryShortReadCannotCacheStaleFrame) {
  // The stale-frame hazard on the retry path: a one-frame pool evicts
  // page 0's image to read page 1; the first read attempt hits a
  // transient EIO and the retry "succeeds" without transferring a byte
  // (FaultVfs leaves the buffer untouched — the contract-violating
  // driver case). The page checksum covers content only, so if the
  // frame buffer were not cleared per attempt, page 0's leftover image
  // would verify and be cached *as page 1*. The pool must instead
  // surface a short-read error and cache nothing.
  BufferPool pool(file_.get(), BufferPoolOptions{1, false});
  {
    auto warm = pool.Fetch(0);
    ASSERT_TRUE(warm.ok()) << warm.status().message();
    EXPECT_EQ(warm->payload(), "page-0");
  }

  vfs_.set_fail_reads(1);   // attempt 1: transient EIO
  vfs_.set_short_reads(1);  // attempt 2 (the retry): OK but no bytes
  auto bad = pool.Fetch(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("short read of page"),
            std::string::npos)
      << bad.status().message();
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.read_retries, 1u);
  EXPECT_EQ(s.io_errors, 1u);
  EXPECT_EQ(s.resident_pages, 0u);  // neither page 0 nor a fake page 1

  // Disk healed: both pages come back with their own bytes — the fetch
  // below must miss (nothing stale was cached) and read real data.
  auto good = pool.Fetch(1);
  ASSERT_TRUE(good.ok()) << good.status().message();
  EXPECT_EQ(good->payload(), "page-1");
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST_F(BufferPoolFaultTest, ChecksumFailurePagesAreNotCached) {
  // Corrupt one payload byte of page 2 in the store image.
  auto image = vfs_.PeekFile("store");
  ASSERT_TRUE(image.ok());
  std::string damaged = *image;
  damaged[2 * kMinStorePageSize + kPageHeaderSize + 1] ^= 0x20;
  ASSERT_TRUE(AtomicWriteFile(&vfs_, "store", damaged).ok());
  auto file = PagedFile::Open("store", kMinStorePageSize);
  ASSERT_TRUE(file.ok());

  BufferPool pool(&*file, BufferPoolOptions{4, false});
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto bad = pool.Fetch(2);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("checksum"), std::string::npos)
        << bad.status().message();
  }
  // Each attempt re-read and re-verified: the damaged page was never
  // admitted to the pool as either a frame or a hit.
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.checksum_failures, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.resident_pages, 0u);
  // Healthy neighbors are unaffected.
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(3).ok());
}

TEST_F(BufferPoolFaultTest, ConcurrentFetchesUnderInjectedFaultsAreClean) {
  BufferPool pool(file_.get(), BufferPoolOptions{3, false});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &pool, t] {
      for (int i = 0; i < 200; ++i) {
        if (t == 0 && i % 17 == 0) vfs_.set_fail_reads(1);
        uint32_t page = static_cast<uint32_t>((i * 7 + t) % 6);
        auto ref = pool.Fetch(page);
        if (ref.ok()) {
          // A successful pin always reads verified, correct bytes, even
          // when other threads are absorbing injected I/O errors.
          EXPECT_EQ(ref->payload(), "page-" + std::to_string(page));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.pinned_frames, 0u);
  EXPECT_EQ(s.fetches, 800u);
  EXPECT_GT(s.misses, 0u);
  // Every fetch resolves as a hit, a verified miss, a surfaced I/O
  // error, or an all-frames-pinned refusal — never double-counted.
  EXPECT_LE(s.hits + s.misses + s.io_errors, s.fetches);
}

TEST_F(BufferPoolFaultTest, ConcurrentPrefetchRacingEvictionIsClean) {
  // Prefetch admission racing clock eviction under a pool smaller than
  // the file: hint threads keep admitting unpinned frames while fetch
  // threads pin, read, and (by exhausting the 3 frames) force the clock
  // hand over both prefetched and demand frames. Every successful pin
  // must still observe its own page's verified bytes, and occasional
  // injected read faults must stay absorbed or surfaced — never turn
  // into a wrong payload. Run under TSan in the store-tsan CI leg.
  BufferPool pool(file_.get(), BufferPoolOptions{3, false});
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&pool, t] {
      FetchIo io;
      for (int i = 0; i < 300; ++i) {
        uint32_t first = static_cast<uint32_t>((i + 3 * t) % 5);
        pool.PrefetchHint(first, 2, &io);
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([this, &pool, t] {
      FetchIo io;
      for (int i = 0; i < 300; ++i) {
        if (t == 0 && i % 23 == 0) vfs_.set_fail_reads(1);
        uint32_t page = static_cast<uint32_t>((i * 5 + t) % 6);
        auto ref = pool.Fetch(page, &io);
        if (ref.ok()) {
          EXPECT_EQ(ref->payload(), "page-" + std::to_string(page));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.pinned_frames, 0u);
  EXPECT_EQ(s.fetches, 900u);
  EXPECT_LE(s.resident_pages, 3u);
  // Prefetch hits can only come from frames a hint admitted.
  EXPECT_LE(s.prefetch_hits, s.prefetch_pages);
  // pages_read decomposes exactly into demand misses and prefetched
  // admissions, however the race interleaved them.
  EXPECT_EQ(s.pages_read, s.misses + s.prefetch_pages);
}

}  // namespace
}  // namespace qof
