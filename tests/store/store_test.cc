// Unit battery for the disk-resident index tier: posting codec
// roundtrips, buffer-pool pin/eviction semantics (including loud checksum
// failures), and writer→reader roundtrips through a real paged file.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/region/region_cursor.h"
#include "qof/region/region_index.h"
#include "qof/region/region_set.h"
#include "qof/store/buffer_pool.h"
#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/store/paged_store.h"
#include "qof/store/posting_codec.h"
#include "qof/store/store_format.h"
#include "qof/store/store_index_source.h"
#include "qof/store/store_writer.h"
#include "qof/text/word_index.h"

namespace qof {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Posting codec

std::vector<uint64_t> MakePostings(size_t n, uint64_t stride) {
  std::vector<uint64_t> v;
  v.reserve(n);
  uint64_t x = 7;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(x);
    x += 1 + (i * stride) % 997;
  }
  return v;
}

std::vector<uint64_t> DecodeWholePostingStream(const std::string& stream) {
  auto header = DecodeStreamHeader(stream, "test");
  EXPECT_TRUE(header.ok()) << header.status().message();
  std::vector<uint64_t> out;
  for (const auto& b : header->blocks) {
    std::string_view bytes =
        std::string_view(stream).substr(header->header_bytes + b.byte_off,
                                        b.byte_len);
    Status s = DecodePostingBlock(b, bytes, "test", &out);
    EXPECT_TRUE(s.ok()) << s.message();
  }
  return out;
}

TEST(PostingCodecTest, RoundTripsVariousSizes) {
  for (size_t n : {0u, 1u, 2u, 127u, 128u, 129u, 1000u}) {
    std::vector<uint64_t> values = MakePostings(n, 3);
    std::string stream;
    uint64_t header_len = EncodePostingStream(values, &stream);
    ASSERT_LE(header_len, stream.size());
    auto header = DecodeStreamHeader(stream, "t");
    ASSERT_TRUE(header.ok()) << header.status().message();
    EXPECT_EQ(header->total_count, n);
    EXPECT_EQ(header->header_bytes, header_len);
    EXPECT_EQ(header->blocks.size(),
              (n + kPostingBlockEntries - 1) / kPostingBlockEntries);
    EXPECT_EQ(DecodeWholePostingStream(stream), values);
  }
}

TEST(PostingCodecTest, SkipTableBoundsMatchBlockContents) {
  std::vector<uint64_t> values = MakePostings(500, 11);
  std::string stream;
  EncodePostingStream(values, &stream);
  auto header = DecodeStreamHeader(stream, "t");
  ASSERT_TRUE(header.ok());
  size_t off = 0;
  for (const auto& b : header->blocks) {
    EXPECT_EQ(b.first, values[off]);
    EXPECT_EQ(b.last, values[off + b.count - 1]);
    // Posting streams are point positions: the end bound degenerates to
    // the last key (and costs one zero byte in the skip table).
    EXPECT_EQ(b.max_end, b.last);
    off += b.count;
  }
  EXPECT_EQ(off, values.size());
}

std::vector<Region> MakeRegions(size_t n) {
  std::vector<Region> v;
  uint64_t start = 3;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(Region{start, start + 5 + (i % 40)});
    start += 1 + (i % 13);
  }
  return RegionSet::FromUnsorted(std::move(v)).regions();
}

TEST(RegionCodecTest, RoundTripsIncludingEqualStarts) {
  // Equal starts with different ends exercise the canonical order
  // (start asc, end desc) across a block boundary.
  std::vector<Region> regions;
  for (uint64_t s = 0; s < 100; ++s) {
    for (uint64_t e = 4; e > 0; --e) regions.push_back(Region{s * 10, s * 10 + e});
  }
  regions = RegionSet::FromUnsorted(std::move(regions)).regions();
  std::string stream;
  uint64_t header_len = EncodeRegionStream(regions, &stream);
  auto header = DecodeStreamHeader(stream, "r");
  ASSERT_TRUE(header.ok()) << header.status().message();
  EXPECT_EQ(header->total_count, regions.size());
  std::vector<Region> out;
  for (const auto& b : header->blocks) {
    std::string_view bytes = std::string_view(stream).substr(
        header_len + b.byte_off, b.byte_len);
    ASSERT_TRUE(DecodeRegionBlock(b, bytes, "r", &out).ok());
  }
  EXPECT_EQ(out, regions);
}

TEST(RegionCodecTest, SkipTableMaxEndCoversNestedRegions) {
  // A giant enclosing region first, then many small ones: in canonical
  // order (start asc, end desc) the giant's end lands in block 0 while
  // every later block's max_end is its own local maximum — exactly what
  // the enclosure kernels consult to skip blocks.
  std::vector<Region> regions;
  regions.push_back(Region{0, 100000});
  for (uint64_t i = 0; i < 600; ++i) {
    regions.push_back(Region{10 + i * 7, 12 + i * 7 + (i % 5)});
  }
  regions = RegionSet::FromUnsorted(std::move(regions)).regions();
  std::string stream;
  EncodeRegionStream(regions, &stream);
  auto header = DecodeStreamHeader(stream, "m");
  ASSERT_TRUE(header.ok()) << header.status().message();
  size_t off = 0;
  for (const auto& b : header->blocks) {
    uint64_t want = 0;
    for (uint64_t j = 0; j < b.count; ++j) {
      if (regions[off + j].end > want) want = regions[off + j].end;
    }
    EXPECT_EQ(b.max_end, want);
    EXPECT_GE(b.max_end, b.last);
    off += b.count;
  }
  EXPECT_EQ(off, regions.size());
}

TEST(RegionCodecTest, TamperedMaxEndFailsLoudly) {
  std::vector<Region> regions = MakeRegions(300);
  std::string stream;
  EncodeRegionStream(regions, &stream);
  auto header = DecodeStreamHeader(stream, "tamper");
  ASSERT_TRUE(header.ok());
  // The kernels trust max_end to skip blocks without decoding them, so a
  // decoded block that contradicts its skip entry must be rejected.
  PostingBlockMeta meta = header->blocks.front();
  meta.max_end += 1;
  std::string_view bytes = std::string_view(stream).substr(
      header->header_bytes + meta.byte_off, meta.byte_len);
  std::vector<Region> out;
  EXPECT_FALSE(DecodeRegionBlock(meta, bytes, "tamper", &out).ok());
}

TEST(RegionCodecTest, EmptyStreamRoundTrips) {
  std::string stream;
  EncodeRegionStream({}, &stream);
  auto header = DecodeStreamHeader(stream, "empty");
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->total_count, 0u);
  EXPECT_TRUE(header->blocks.empty());
}

TEST(PostingCodecTest, TruncatedHeaderFailsLoudly) {
  std::vector<uint64_t> values = MakePostings(300, 5);
  std::string stream;
  uint64_t header_len = EncodePostingStream(values, &stream);
  ASSERT_GT(header_len, 2u);
  auto r = DecodeStreamHeader(stream.substr(0, header_len / 2), "trunc");
  EXPECT_FALSE(r.ok());
}

TEST(PostingCodecTest, CorruptBlockFailsLoudly) {
  std::vector<uint64_t> values = MakePostings(200, 5);
  std::string stream;
  EncodePostingStream(values, &stream);
  auto header = DecodeStreamHeader(stream, "c");
  ASSERT_TRUE(header.ok());
  const auto& b = header->blocks.back();
  // Truncating the block's bytes must fail (count or terminal mismatch).
  std::string_view bytes = std::string_view(stream).substr(
      header->header_bytes + b.byte_off, b.byte_len - 1);
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodePostingBlock(b, bytes, "c", &out).ok());
}

// ---------------------------------------------------------------------------
// Buffer pool

// Writes a little paged file of `n` payload pages (type kPostings), each
// holding a recognizable payload.
std::string WriteLittleFile(const std::string& name, uint32_t n,
                            uint32_t page_size) {
  std::string image;
  for (uint32_t i = 0; i < n; ++i) {
    std::string payload = "page-" + std::to_string(i);
    AppendPage(PageType::kPostings, payload, page_size, &image);
  }
  std::string path = TempPath(name);
  EXPECT_TRUE(WriteFileBytes(path, image).ok());
  return path;
}

TEST(BufferPoolTest, HitsAndMissesAndPinAccounting) {
  std::string path = WriteLittleFile("pool_basic.qofstore", 8, kMinStorePageSize);
  auto file = PagedFile::Open(path, kMinStorePageSize);
  ASSERT_TRUE(file.ok()) << file.status().message();
  BufferPool pool(&*file, BufferPoolOptions{4, false});

  auto p0 = pool.Fetch(0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0->payload(), "page-0");
  EXPECT_EQ(p0->type(), PageType::kPostings);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().pinned_frames, 1u);

  {
    auto again = pool.Fetch(0);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(pool.stats().pinned_frames, 1u);  // same frame, two pins
  }
  EXPECT_EQ(pool.stats().pinned_frames, 1u);
  p0->Release();
  EXPECT_EQ(pool.stats().pinned_frames, 0u);
  EXPECT_EQ(pool.stats().resident_pages, 1u);
}

TEST(BufferPoolTest, EvictionNeverEvictsPinned) {
  std::string path = WriteLittleFile("pool_evict.qofstore", 8, kMinStorePageSize);
  auto file = PagedFile::Open(path, kMinStorePageSize);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, BufferPoolOptions{2, false});

  auto p0 = pool.Fetch(0);
  auto p1 = pool.Fetch(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  // Pool is full of pinned frames: a third fetch must fail, not steal.
  auto p2 = pool.Fetch(2);
  EXPECT_FALSE(p2.ok());
  // Pinned payloads are untouched.
  EXPECT_EQ(p0->payload(), "page-0");
  EXPECT_EQ(p1->payload(), "page-1");

  p1->Release();
  auto p3 = pool.Fetch(3);
  ASSERT_TRUE(p3.ok());  // evicted the unpinned frame
  EXPECT_EQ(p3->payload(), "page-3");
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(p0->payload(), "page-0");  // survivor still intact
}

TEST(BufferPoolTest, InjectedEvictPinnedStealsFrames) {
  std::string path = WriteLittleFile("pool_inject.qofstore", 8, kMinStorePageSize);
  auto file = PagedFile::Open(path, kMinStorePageSize);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, BufferPoolOptions{2, true});

  auto p0 = pool.Fetch(0);
  auto p1 = pool.Fetch(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  auto p2 = pool.Fetch(2);
  ASSERT_TRUE(p2.ok());  // the bug: a pinned frame was stolen
  // One of the earlier pins now reads the new page's bytes — wrong but
  // well-defined (frame memory is reused in place).
  EXPECT_TRUE(p0->payload() == "page-2" || p1->payload() == "page-2");
}

TEST(BufferPoolTest, ChecksumFailureFailsLoudly) {
  std::string path = WriteLittleFile("pool_corrupt.qofstore", 4, kMinStorePageSize);
  // Flip one payload bit of page 2 on disk.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[2 * kMinStorePageSize + kPageHeaderSize + 3] ^= 0x40;
  ASSERT_TRUE(WriteFileBytes(path, damaged).ok());

  auto file = PagedFile::Open(path, kMinStorePageSize);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, BufferPoolOptions{4, false});
  ASSERT_TRUE(pool.Fetch(1).ok());  // intact neighbors still readable
  auto bad = pool.Fetch(2);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos)
      << bad.status().message();
  EXPECT_EQ(pool.stats().checksum_failures, 1u);
  ASSERT_TRUE(pool.Fetch(3).ok());
}

TEST(BufferPoolTest, StatsTrackDistinctPagesAndReset) {
  std::string path = WriteLittleFile("pool_stats.qofstore", 6, kMinStorePageSize);
  auto file = PagedFile::Open(path, kMinStorePageSize);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, BufferPoolOptions{2, false});
  for (uint32_t round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 4; ++p) ASSERT_TRUE(pool.Fetch(p).ok());
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.pages_touched, 4u);
  EXPECT_EQ(s.fetches, 12u);
  EXPECT_EQ(s.bytes_read, s.misses * kMinStorePageSize);
  EXPECT_GT(s.misses, 4u);  // capacity 2 forces re-reads
  pool.ResetStats();
  s = pool.stats();
  EXPECT_EQ(s.fetches, 0u);
  EXPECT_EQ(s.pages_touched, 0u);
}

// ---------------------------------------------------------------------------
// Writer → reader roundtrip

struct Fixture {
  RegionIndex regions;
  WordIndex words;
  std::string spec = "spec-bytes:opaque\x01\x02";
  std::string doc_table = "doc-table-bytes\x03";
};

Fixture MakeFixture(size_t scale) {
  Fixture f;
  std::vector<Region> refs;
  std::vector<Region> titles;
  for (size_t i = 0; i < scale; ++i) {
    uint64_t base = i * 100;
    refs.push_back(Region{base, base + 90});
    titles.push_back(Region{base + 10, base + 40});
  }
  f.regions.Add("reference", RegionSet::FromUnsorted(std::move(refs)));
  f.regions.Add("title", RegionSet::FromUnsorted(std::move(titles)));
  f.regions.Add("empty", RegionSet());

  std::vector<std::pair<std::string, std::vector<TextPos>>> entries;
  for (size_t w = 0; w < 40; ++w) {
    std::string word = "word" + std::string(1, char('a' + w % 26)) +
                       std::to_string(w);
    entries.emplace_back(word, MakePostings(5 + w * scale / 4, w + 1));
  }
  entries.emplace_back("zzz-singleton", std::vector<TextPos>{12345});
  f.words = WordIndex::FromEntries(std::move(entries), /*fold_case=*/true);
  return f;
}

Result<std::shared_ptr<const PagedStore>> BuildAndOpen(
    const Fixture& f, const std::string& name, uint32_t page_size,
    PagedStoreOptions options = {}) {
  StoreWriterInput input;
  input.regions = &f.regions;
  input.words = &f.words;
  input.spec_bytes = f.spec;
  input.doc_table_bytes = f.doc_table;
  input.generation = 7;
  input.doc_count = 42;
  QOF_ASSIGN_OR_RETURN(std::string image, BuildStoreImage(input, page_size));
  std::string path = TempPath(name);
  QOF_RETURN_IF_ERROR(WriteFileBytes(path, image));
  return PagedStore::Open(path, options);
}

TEST(PagedStoreTest, MetaAndSectionsRoundTrip) {
  Fixture f = MakeFixture(50);
  for (uint32_t page_size : {kMinStorePageSize, 1024u, kDefaultPageSize}) {
    auto store = BuildAndOpen(f, "meta_rt_" + std::to_string(page_size), page_size);
    ASSERT_TRUE(store.ok()) << store.status().message();
    const StoreMeta& m = (*store)->meta();
    EXPECT_EQ(m.page_size, page_size);
    EXPECT_EQ(m.generation, 7u);
    EXPECT_EQ(m.doc_count, 42u);
    EXPECT_EQ(m.region_names, f.regions.num_names());
    EXPECT_EQ(m.total_regions, f.regions.num_regions());
    EXPECT_EQ(m.distinct_words, f.words.num_distinct_words());
    EXPECT_EQ(m.universe_size, f.regions.Universe().size());

    auto spec = (*store)->ReadSection(StoreSection::kSpec);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(*spec, f.spec);
    auto dt = (*store)->ReadSection(StoreSection::kDocTable);
    ASSERT_TRUE(dt.ok());
    EXPECT_EQ(*dt, f.doc_table);
  }
}

TEST(PagedStoreTest, RejectsBadPageSize) {
  Fixture f = MakeFixture(4);
  StoreWriterInput input;
  input.regions = &f.regions;
  input.words = &f.words;
  EXPECT_FALSE(BuildStoreImage(input, 100).ok());
  EXPECT_FALSE(BuildStoreImage(input, 0).ok());
  EXPECT_FALSE(BuildStoreImage(input, 300).ok());  // not a multiple of 256
}

TEST(PagedStoreTest, DictionaryProbesAndScans) {
  Fixture f = MakeFixture(80);
  auto store = BuildAndOpen(f, "dict.qofstore", kMinStorePageSize);
  ASSERT_TRUE(store.ok()) << store.status().message();

  for (const std::string& name : f.regions.Names()) {
    auto e = (*store)->FindRegionEntry(name);
    ASSERT_TRUE(e.ok()) << e.status().message();
    ASSERT_TRUE(e->has_value()) << name;
    auto set = f.regions.Get(name);
    ASSERT_TRUE(set.ok());
    EXPECT_EQ((*e)->count, (*set)->size());
  }
  auto absent = (*store)->FindRegionEntry("no-such-name");
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->has_value());
  // Probes below the first fence and above the last key.
  ASSERT_TRUE((*store)->FindWordEntry("").ok());
  EXPECT_FALSE((*store)->FindWordEntry("")->has_value());
  EXPECT_FALSE((*store)->FindWordEntry("zzzz")->has_value());

  auto all_words = (*store)->AllWordEntries();
  ASSERT_TRUE(all_words.ok());
  EXPECT_EQ(all_words->size(), f.words.num_distinct_words());
  for (size_t i = 1; i < all_words->size(); ++i) {
    EXPECT_LT((*all_words)[i - 1].key, (*all_words)[i].key);
  }

  uint64_t loaded_words = 0;
  f.words.ForEachWord([&](const std::string& word,
                          const std::vector<TextPos>& postings) {
    auto e = (*store)->FindWordEntry(word);
    ASSERT_TRUE(e.ok());
    ASSERT_TRUE(e->has_value()) << word;
    auto got = (*store)->LoadPostings(**e);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(*got, postings) << word;
    ++loaded_words;
  });
  EXPECT_EQ(loaded_words, f.words.num_distinct_words());
}

TEST(PagedStoreTest, WordsWithPrefixMatchesInMemory) {
  Fixture f = MakeFixture(30);
  auto store = BuildAndOpen(f, "prefix.qofstore", kMinStorePageSize);
  ASSERT_TRUE(store.ok());
  for (std::string prefix : {"word", "worda", "zzz", "nope", ""}) {
    auto got = (*store)->WordsWithPrefix(prefix);
    ASSERT_TRUE(got.ok()) << got.status().message();
    std::vector<std::string> want;
    f.words.ForEachWord([&](const std::string& w, const auto&) {
      if (w.compare(0, prefix.size(), prefix) == 0) want.push_back(w);
    });
    std::sort(want.begin(), want.end());
    EXPECT_EQ(*got, want) << "prefix=" << prefix;
  }
}

TEST(PagedStoreTest, RegionCursorMaterializesIdentically) {
  Fixture f = MakeFixture(500);
  auto store = BuildAndOpen(f, "cursor.qofstore", kMinStorePageSize,
                            PagedStoreOptions{8, false});
  ASSERT_TRUE(store.ok());
  for (const std::string& name : f.regions.Names()) {
    auto entry = (*store)->FindRegionEntry(name);
    ASSERT_TRUE(entry.ok() && entry->has_value());
    auto cursor = PagedStore::OpenRegionCursor(*store, **entry);
    ASSERT_TRUE(cursor.ok()) << cursor.status().message();
    auto materialized = MaterializeCursor(**cursor);
    ASSERT_TRUE(materialized.ok()) << materialized.status().message();
    auto want = f.regions.Get(name);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(materialized->regions(), (*want)->regions()) << name;
  }
}

TEST(PagedStoreTest, IntersectCursorSkipsBlocks) {
  Fixture f = MakeFixture(2000);  // "reference" has 2000 regions → ~16 blocks
  auto store = BuildAndOpen(f, "skip.qofstore", kMinStorePageSize,
                            PagedStoreOptions{16, false});
  ASSERT_TRUE(store.ok());
  auto entry = (*store)->FindRegionEntry("reference");
  ASSERT_TRUE(entry.ok() && entry->has_value());

  // A sparse probe: every 400th reference region.
  auto want_all = f.regions.Get("reference");
  ASSERT_TRUE(want_all.ok());
  std::vector<Region> probe_v;
  for (size_t i = 0; i < (*want_all)->size(); i += 400) {
    probe_v.push_back((*want_all)->regions()[i]);
  }
  RegionSet probe = RegionSet::FromSortedUnique(std::move(probe_v));

  auto cursor = PagedStore::OpenRegionCursor(*store, **entry);
  ASSERT_TRUE(cursor.ok());
  auto got = IntersectCursor(probe, **cursor);
  ASSERT_TRUE(got.ok()) << got.status().message();
  RegionSet want = Intersect(probe, **want_all);
  EXPECT_EQ(got->regions(), want.regions());
  EXPECT_EQ(got->size(), probe.size());
  // The point of the tier: most blocks were never decoded.
  EXPECT_LT((*cursor)->blocks_decoded(), (*cursor)->num_blocks());
}

TEST(PagedStoreTest, SelectiveReadsTouchFewPages) {
  Fixture f = MakeFixture(3000);
  auto store = BuildAndOpen(f, "touch.qofstore", kMinStorePageSize,
                            PagedStoreOptions{64, false});
  ASSERT_TRUE(store.ok());
  (*store)->ResetPoolStats();
  auto entry = (*store)->FindWordEntry("zzz-singleton");
  ASSERT_TRUE(entry.ok() && entry->has_value());
  auto postings = (*store)->LoadPostings(**entry);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(*postings, std::vector<uint64_t>{12345});
  BufferPoolStats s = (*store)->pool_stats();
  // A one-word probe touches a handful of pages, not the whole file.
  EXPECT_LT(s.pages_touched, uint64_t{8});
  EXPECT_LT(s.pages_touched, (*store)->num_pages() / 10);
}

TEST(PagedStoreTest, CorruptPostingPageFailsLoudly) {
  Fixture f = MakeFixture(200);
  StoreWriterInput input;
  input.regions = &f.regions;
  input.words = &f.words;
  input.spec_bytes = f.spec;
  input.doc_table_bytes = f.doc_table;
  auto image = BuildStoreImage(input, kMinStorePageSize);
  ASSERT_TRUE(image.ok());

  // Decode the meta to find the postings section and flip a payload bit
  // in its middle page.
  auto header = ParsePage(std::string_view(*image).substr(0, kMinStorePageSize),
                          kMinStorePageSize, 0);
  ASSERT_TRUE(header.ok());
  auto meta = DecodeStoreMeta(
      std::string_view(*image).substr(kPageHeaderSize, header->payload_len));
  ASSERT_TRUE(meta.ok()) << meta.status().message();
  const SectionInfo& postings = meta->section(StoreSection::kPostings);
  ASSERT_GT(postings.num_pages, 0u);
  std::string damaged = *image;
  size_t victim = postings.first_page + postings.num_pages / 2;
  damaged[victim * kMinStorePageSize + kPageHeaderSize + 1] ^= 0x10;
  std::string path = TempPath("corrupt.qofstore");
  ASSERT_TRUE(WriteFileBytes(path, damaged).ok());

  auto store = PagedStore::Open(path, PagedStoreOptions{16, false});
  ASSERT_TRUE(store.ok()) << store.status().message();  // lazy: open succeeds
  // Some load that crosses the damaged page must fail with a checksum
  // error; everything on intact pages still answers.
  auto all = (*store)->AllWordEntries();
  ASSERT_TRUE(all.ok());
  bool saw_checksum_error = false;
  bool saw_success = false;
  for (const auto& e : *all) {
    auto r = (*store)->LoadPostings(e);
    if (r.ok()) {
      saw_success = true;
    } else if (r.status().message().find("checksum") != std::string::npos) {
      saw_checksum_error = true;
    }
  }
  auto entries = (*store)->AllRegionEntries();
  if (entries.ok()) {
    for (const auto& e : *entries) {
      auto cursor = PagedStore::OpenRegionCursor(*store, e);
      if (!cursor.ok()) continue;
      auto m = MaterializeCursor(**cursor);
      if (m.ok()) saw_success = true;
      else if (m.status().message().find("checksum") != std::string::npos)
        saw_checksum_error = true;
    }
  }
  EXPECT_TRUE(saw_checksum_error);
  EXPECT_TRUE(saw_success);
  EXPECT_GT((*store)->pool_stats().checksum_failures, 0u);
}

TEST(PagedStoreTest, EmptyIndexesRoundTrip) {
  Fixture f;
  f.regions.Add("only-empty", RegionSet());
  auto store = BuildAndOpen(f, "empty.qofstore", kMinStorePageSize);
  ASSERT_TRUE(store.ok()) << store.status().message();
  auto e = (*store)->FindRegionEntry("only-empty");
  ASSERT_TRUE(e.ok() && e->has_value());
  EXPECT_EQ((*e)->count, 0u);
  auto cursor = PagedStore::OpenRegionCursor(*store, **e);
  ASSERT_TRUE(cursor.ok());
  auto m = MaterializeCursor(**cursor);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 0u);
  auto words = (*store)->AllWordEntries();
  ASSERT_TRUE(words.ok());
  EXPECT_TRUE(words->empty());
  EXPECT_TRUE((*store)->WordsWithPrefix("x").ok());
}

// ---------------------------------------------------------------------------
// Index sources

TEST(StoreSourceTest, SourcesMirrorTheStore) {
  Fixture f = MakeFixture(60);
  auto store = BuildAndOpen(f, "sources.qofstore", kMinStorePageSize);
  ASSERT_TRUE(store.ok());

  StoreRegionSource rsource(*store);
  EXPECT_EQ(rsource.universe_size(), f.regions.Universe().size());
  auto entries = rsource.Entries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), f.regions.num_names());
  auto cursor = rsource.OpenCursor("title");
  ASSERT_TRUE(cursor.ok());
  auto missing = rsource.OpenCursor("nope");
  EXPECT_FALSE(missing.ok());

  StorePostingSource wsource(*store);
  EXPECT_EQ(wsource.distinct_words(), f.words.num_distinct_words());
  EXPECT_EQ(wsource.total_postings(), f.words.num_postings());
  auto loaded = wsource.Load("zzz-singleton");
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ(**loaded, std::vector<TextPos>{12345});
  auto absent = wsource.Load("definitely-absent");
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->has_value());
  EXPECT_GT(rsource.approx_bytes() + wsource.approx_bytes(), 0u);
}

}  // namespace
}  // namespace qof
