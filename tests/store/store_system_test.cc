// Engine-level tests of the disk-resident index tier: SaveStore/OpenStore
// round trips must answer byte-identically to the in-memory indexes they
// were saved from, across every strategy, kernel policy and parallelism
// setting; damage must fail loudly; governance must reach into the
// buffer pool; and concurrent snapshot readers must survive eviction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/system.h"
#include "qof/store/paged_file.h"
#include "qof/store/store_format.h"

namespace qof {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

const char* const kQueries[] = {
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"",
    "SELECT r FROM References r WHERE r.Title CONTAINS \"search\"",
    "SELECT r.Authors.Name.Last_Name FROM References r "
    "WHERE r.Year = \"1993\"",
    "SELECT r FROM References r WHERE r.Keywords CONTAINS \"Taylor\" "
    "AND r.Authors.Name.Last_Name = \"Chang\"",
    "SELECT r.Title FROM References r",
};

/// Region spans + rendered projection values, order included — the
/// "byte-identical results" oracle.
std::string Fingerprint(const QueryResult& result) {
  std::string out;
  for (const Region& r : result.regions) {
    out += std::to_string(r.start) + ":" + std::to_string(r.end) + ";";
  }
  out += "|";
  for (const std::string& v : result.RenderedValues()) out += v + ";";
  return out;
}

class StoreSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    BibtexGenOptions gen;
    gen.num_references = 60;
    gen.probe_author_rate = 0.2;
    text_ = GenerateBibtex(gen);
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("gen.bib", text_).ok());
  }

  void TearDown() override { SetKernelPolicy(KernelPolicy::kAdaptive); }

  std::unique_ptr<FileQuerySystem> Fresh() {
    auto schema = BibtexSchema();
    auto fresh = std::make_unique<FileQuerySystem>(*schema);
    EXPECT_TRUE(fresh->AddFile("gen.bib", text_).ok());
    return fresh;
  }

  std::string text_;
  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(StoreSystemTest, OnDiskAnswersMatchInMemoryEverywhere) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("identical.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());
  EXPECT_TRUE(disk->index_stats().disk_resident);

  const ExecutionMode modes[] = {
      ExecutionMode::kAuto, ExecutionMode::kIndexOnly,
      ExecutionMode::kTwoPhase, ExecutionMode::kBaseline};
  const KernelPolicy kernels[] = {KernelPolicy::kAdaptive,
                                  KernelPolicy::kGalloping,
                                  KernelPolicy::kLinear};
  for (KernelPolicy kernel : kernels) {
    SetKernelPolicy(kernel);
    for (ExecutionMode mode : modes) {
      for (int threads : {1, 3}) {
        system_->SetParallelism(threads);
        disk->SetParallelism(threads);
        for (const char* fql : kQueries) {
          auto mem = system_->Execute(fql, mode);
          auto dsk = disk->Execute(fql, mode);
          ASSERT_TRUE(mem.ok()) << fql << ": " << mem.status().ToString();
          ASSERT_TRUE(dsk.ok()) << fql << ": " << dsk.status().ToString();
          EXPECT_EQ(Fingerprint(*mem), Fingerprint(*dsk))
              << fql << " mode=" << static_cast<int>(mode)
              << " kernel=" << static_cast<int>(kernel)
              << " threads=" << threads;
          EXPECT_EQ(mem->stats.strategy, dsk->stats.strategy) << fql;
        }
      }
    }
  }
}

TEST_F(StoreSystemTest, SelectiveQueryReadsFewPagesCold) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("selective.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());
  auto size = ReadFileBytes(path);
  ASSERT_TRUE(size.ok());

  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());
  // Open reads meta + fences + spec + doc table, not the index payload.
  auto open_stats = disk->index_stats();
  const uint32_t num_pages =
      static_cast<uint32_t>(size->size() / kDefaultPageSize);
  EXPECT_LT(open_stats.pool.pages_touched, num_pages / 2)
      << "open should not touch most of the file";

  auto r = disk->Execute(kQueries[0], ExecutionMode::kIndexOnly);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto query_stats = disk->index_stats();
  // A selective probe pages in a handful of dict/posting pages, far from
  // the whole file.
  EXPECT_LT(query_stats.pool.bytes_read, size->size())
      << "selective query read the entire store";
}

TEST_F(StoreSystemTest, SelectiveQueryStreamsWithoutMaterializing) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("streaming.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());
  ASSERT_TRUE(disk->index_stats().disk_resident);

  // The sigma + enclosure chain must stream the region instances through
  // block-skipping cursors: answers match the in-memory system while the
  // instances themselves stay on disk.
  auto mem = system_->Execute(kQueries[0], ExecutionMode::kIndexOnly);
  auto dsk = disk->Execute(kQueries[0], ExecutionMode::kIndexOnly);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(dsk.ok()) << dsk.status().ToString();
  EXPECT_EQ(Fingerprint(*mem), Fingerprint(*dsk));
  EXPECT_TRUE(disk->index_stats().disk_resident)
      << "selective query materialized the region instances";
}

TEST_F(StoreSystemTest, CorruptPostingPageFailsLoudlyOthersKeepAnswering) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("corrupt.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  // Flip one payload bit in the middle of the postings section.
  auto image = ReadFileBytes(path);
  ASSERT_TRUE(image.ok());
  auto header = ParsePage(
      std::string_view(*image).substr(0, kMinStorePageSize),
      kMinStorePageSize, 0);
  ASSERT_TRUE(header.ok());
  auto meta = DecodeStoreMeta(
      std::string_view(*image).substr(kPageHeaderSize, header->payload_len));
  ASSERT_TRUE(meta.ok());
  const SectionInfo& postings = meta->section(StoreSection::kPostings);
  ASSERT_GT(postings.num_pages, 0u);
  const uint32_t victim = postings.first_page + postings.num_pages / 2;
  std::string damaged = *image;
  damaged[static_cast<size_t>(victim) * kDefaultPageSize + kPageHeaderSize +
          3] ^= 0x10;
  const std::string bad_path = TempPath("corrupt-damaged.qofstore");
  ASSERT_TRUE(WriteFileBytes(bad_path, damaged).ok());

  // Open succeeds (postings page in lazily)...
  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(bad_path).ok());
  // ...and under kIndexOnly, some query that crosses the damaged page
  // fails loudly naming the checksum. Which queries hit it depends on
  // the layout, so probe them all and require at least one loud failure
  // while every success stays byte-identical to the truth.
  int failures = 0;
  for (const char* fql : kQueries) {
    auto truth = system_->Execute(fql, ExecutionMode::kIndexOnly);
    ASSERT_TRUE(truth.ok());
    auto r = disk->Execute(fql, ExecutionMode::kIndexOnly);
    if (r.ok()) {
      EXPECT_EQ(Fingerprint(*truth), Fingerprint(*r)) << fql;
    } else {
      ++failures;
      EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
          << r.status().ToString();
    }
  }
  EXPECT_GT(failures, 0) << "no query crossed the damaged page";

  // The system that still holds in-memory indexes is untouched.
  auto after = system_->Execute(kQueries[0], ExecutionMode::kIndexOnly);
  EXPECT_TRUE(after.ok());
}

TEST_F(StoreSystemTest, DamagedHeaderLeavesPriorIndexesInstalled) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("header.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());
  auto image = ReadFileBytes(path);
  ASSERT_TRUE(image.ok());
  // Damage the meta page: OpenStore must fail and the built indexes must
  // keep answering (all-or-nothing, like ImportIndexes).
  std::string damaged = *image;
  damaged[kPageHeaderSize + 10] ^= 0x01;
  const std::string bad_path = TempPath("header-damaged.qofstore");
  ASSERT_TRUE(WriteFileBytes(bad_path, damaged).ok());

  auto before = system_->Execute(kQueries[0]);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(system_->OpenStore(bad_path).ok());
  auto after = system_->Execute(kQueries[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Fingerprint(*before), Fingerprint(*after));
  EXPECT_EQ(system_->index_stats().source, "built");
}

TEST_F(StoreSystemTest, StaleCorpusIsRejectedByName) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("stale.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  auto schema = BibtexSchema();
  FileQuerySystem other(*schema);
  ASSERT_TRUE(other.AddFile("gen.bib", text_ + " ").ok());
  Status s = other.OpenStore(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("gen.bib"), std::string::npos) << s.message();
}

TEST_F(StoreSystemTest, MutationsForceResidencyAndKeepAnswering) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("mutate.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());
  EXPECT_TRUE(disk->index_stats().disk_resident);

  // Mutating pages everything in, then splices — same answers as the
  // in-memory system receiving the same mutation.
  BibtexGenOptions gen;
  gen.num_references = 5;
  gen.seed = 99;
  const std::string extra = GenerateBibtex(gen);
  ASSERT_TRUE(system_->AddFile("extra.bib", extra).ok());
  ASSERT_TRUE(disk->AddFile("extra.bib", extra).ok());
  EXPECT_FALSE(disk->index_stats().disk_resident);
  EXPECT_EQ(disk->index_generation(), 1u);

  for (const char* fql : kQueries) {
    auto mem = system_->Execute(fql);
    auto dsk = disk->Execute(fql);
    ASSERT_TRUE(mem.ok()) << mem.status().ToString();
    ASSERT_TRUE(dsk.ok()) << dsk.status().ToString();
    EXPECT_EQ(Fingerprint(*mem), Fingerprint(*dsk)) << fql;
  }

  // And a store saved from the mutated system round-trips again.
  const std::string path2 = TempPath("mutate2.qofstore");
  ASSERT_TRUE(disk->SaveStore(path2).ok());
  auto reread = Fresh();
  ASSERT_TRUE(reread->AddFile("extra.bib", extra).ok());
  ASSERT_TRUE(reread->OpenStore(path2).ok());
  auto a = disk->Execute(kQueries[0]);
  auto b = reread->Execute(kQueries[0]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Fingerprint(*a), Fingerprint(*b));
}

TEST_F(StoreSystemTest, ExportAfterOpenMatchesOriginalExport) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  const std::string path = TempPath("reexport.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  // Open the store, force everything resident via export: the blob must
  // be byte-identical to the one the original in-memory system wrote.
  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());
  auto reblob = disk->ExportIndexes();
  ASSERT_TRUE(reblob.ok()) << reblob.status().ToString();
  EXPECT_EQ(*blob, *reblob) << "paged round trip changed the index bytes";
}

TEST_F(StoreSystemTest, IndexStatsReportProvenance) {
  EXPECT_EQ(system_->index_stats().source, "none");
  EXPECT_FALSE(system_->index_stats().built);

  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  auto stats = system_->index_stats();
  EXPECT_TRUE(stats.built);
  EXPECT_EQ(stats.source, "built");
  EXPECT_EQ(stats.format_version, 0);
  EXPECT_FALSE(stats.disk_resident);

  // Importing a blob records its on-disk format version.
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  auto info = ReadBlobInfo(*blob);
  ASSERT_TRUE(info.ok());
  auto disk = Fresh();
  ASSERT_TRUE(disk->ImportIndexes(*blob).ok());
  stats = disk->index_stats();
  EXPECT_EQ(stats.format_version, info->version);
  EXPECT_EQ(stats.source, "blob-v" + std::to_string(info->version));
  EXPECT_FALSE(stats.disk_resident);

  // A v1 blob reports version 1.
  auto v1 = SerializeIndexes(BuiltIndexes{system_->region_index(),
                                          system_->word_index(), 0,
                                          system_->corpus().num_documents()},
                             system_->index_spec(), text_);
  ASSERT_TRUE(v1.ok());
  auto disk1 = Fresh();
  ASSERT_TRUE(disk1->ImportIndexes(*v1).ok());
  EXPECT_EQ(disk1->index_stats().format_version, 1);
  EXPECT_EQ(disk1->index_stats().source, "blob-v1");

  // An open store reports "paged-store" and live pool counters.
  const std::string path = TempPath("stats.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());
  auto disk2 = Fresh();
  ASSERT_TRUE(disk2->OpenStore(path).ok());
  stats = disk2->index_stats();
  EXPECT_EQ(stats.source, "paged-store");
  EXPECT_TRUE(stats.disk_resident);
  EXPECT_GT(stats.pool.pages_touched, 0u);
}

TEST_F(StoreSystemTest, GovernanceReachesTheBufferPool) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("governed.qofstore");
  ASSERT_TRUE(system_->SaveStore(path).ok());

  auto disk = Fresh();
  ASSERT_TRUE(disk->OpenStore(path).ok());

  // A pre-expired cancellation stops the very first page miss: the
  // error comes back typed, before the query loads the index tier.
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();
  auto r = disk->Execute(kQueries[0], ExecutionMode::kIndexOnly, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();

  // Decompressed index bytes count against the byte budget: a budget far
  // below the posting payload trips kBudgetExhausted on a disk-backed
  // plan.
  QueryOptions tight;
  tight.max_bytes = 1;
  auto b = disk->Execute(kQueries[0], ExecutionMode::kIndexOnly, tight);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kBudgetExhausted)
      << b.status().ToString();

  // An ungoverned rerun still answers — tripped limits poison nothing.
  auto ok = disk->Execute(kQueries[0], ExecutionMode::kIndexOnly);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(StoreSystemTest, SnapshotReadersRaceEvictionUnderTinyPool) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string path = TempPath("race.qofstore");
  // A small page size spreads the postings over many pages; a tiny pool
  // forces constant eviction under the concurrent readers.
  ASSERT_TRUE(system_->SaveStore(path, /*page_size=*/256).ok());

  auto disk = Fresh();
  PagedStoreOptions options;
  options.pool_pages = 4;
  ASSERT_TRUE(disk->OpenStore(path, options).ok());

  auto snapshot = disk->AcquireSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  std::string expected;
  {
    auto r = disk->ExecuteOnSnapshot(**snapshot, kQueries[0]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected = Fingerprint(*r);
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const char* fql = kQueries[(t + i) % 3];
        auto r = disk->ExecuteOnSnapshot(**snapshot, fql);
        if (!r.ok()) {
          ++errors;
          continue;
        }
        if (fql == kQueries[0] && Fingerprint(*r) != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace qof
