// Offline scrub/repair of paged stores: damage mapping (page → section →
// index instances → documents), the repairable-vs-fatal divide, and the
// salvage path (quarantine + rebuild from surviving streams) the
// qof_store CLI exposes.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/store/paged_store.h"
#include "qof/store/scrub.h"
#include "qof/store/store_format.h"

namespace qof {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    BibtexGenOptions gen;
    gen.num_references = 40;
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("gen.bib", GenerateBibtex(gen)).ok());
    ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  }

  /// Saves a fresh store with tiny pages (so each section spans several)
  /// and returns its path plus the decoded meta.
  std::string Save(const std::string& name, StoreMeta* meta) {
    const std::string path = TempPath(name);
    EXPECT_TRUE(system_->SaveStore(path, /*page_size=*/256).ok());
    auto head = ReadFilePrefix(path, kMinStorePageSize);
    EXPECT_TRUE(head.ok());
    auto header = ParsePage(*head, kMinStorePageSize, 0);
    EXPECT_TRUE(header.ok());
    auto decoded = DecodeStoreMeta(
        std::string_view(*head).substr(kPageHeaderSize,
                                       header->payload_len));
    EXPECT_TRUE(decoded.ok());
    *meta = *decoded;
    return path;
  }

  /// Flips one payload byte inside page `page_no`.
  void CorruptPage(const std::string& path, uint32_t page_no) {
    auto bytes = ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    std::string damaged = *bytes;
    damaged[page_no * 256 + kPageHeaderSize + 7] ^= 0x11;
    ASSERT_TRUE(WriteFileBytes(path, damaged).ok());
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(ScrubTest, CleanStoreScrubsCleanAndRepairIsANoOp) {
  StoreMeta meta;
  const std::string path = Save("clean.qofstore", &meta);
  auto report = ScrubStore(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean());
  EXPECT_TRUE(report->meta_ok);
  EXPECT_TRUE(report->structural_ok);
  EXPECT_TRUE(report->damaged_pages.empty());
  EXPECT_EQ(report->pages_total,
            ReadFileBytes(path)->size() / 256);
  EXPECT_FALSE(FormatScrubReport(*report).empty());

  auto repair = RepairStore(path);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->quarantine_path.empty());
  EXPECT_TRUE(repair->dropped.empty());
}

TEST_F(ScrubTest, PostingsDamageIsMappedAndRepairable) {
  StoreMeta meta;
  const std::string path = Save("postings.qofstore", &meta);
  const SectionInfo& postings = meta.section(StoreSection::kPostings);
  ASSERT_GT(postings.num_pages, 1u);
  const uint32_t victim = postings.first_page + postings.num_pages / 2;
  CorruptPage(path, victim);

  auto report = ScrubStore(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->clean());
  ASSERT_EQ(report->damaged_pages.size(), 1u);
  EXPECT_EQ(report->damaged_pages[0].page_no, victim);
  EXPECT_EQ(report->damaged_pages[0].section, "postings");
  EXPECT_TRUE(report->structural_ok);
  EXPECT_TRUE(report->repairable());
  // The damage maps to concrete index instances (the streams crossing
  // the damaged page), not just a page number.
  EXPECT_FALSE(report->damaged_instances.empty());

  auto repair = RepairStore(path);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_EQ(repair->quarantine_path, path + ".quarantined");
  EXPECT_TRUE(ReadFileBytes(repair->quarantine_path).ok());
  EXPECT_FALSE(repair->dropped.empty());

  // The rebuilt store verifies clean and opens.
  auto rescrubbed = ScrubStore(path);
  ASSERT_TRUE(rescrubbed.ok());
  EXPECT_TRUE(rescrubbed->clean()) << FormatScrubReport(*rescrubbed);
  EXPECT_TRUE(PagedStore::Open(path, {}).ok());
}

TEST_F(ScrubTest, StructuralDamageIsFatalNotRepairable) {
  StoreMeta meta;
  const std::string path = Save("structural.qofstore", &meta);
  const SectionInfo& doc_table = meta.section(StoreSection::kDocTable);
  ASSERT_GT(doc_table.num_pages, 0u);
  CorruptPage(path, doc_table.first_page);

  auto report = ScrubStore(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->clean());
  EXPECT_FALSE(report->structural_ok);
  EXPECT_FALSE(report->repairable());

  auto repair = RepairStore(path);
  ASSERT_FALSE(repair.ok());
  EXPECT_TRUE(repair.status().IsDataLoss()) << repair.status().ToString();
  // The damaged original is left in place, untouched.
  EXPECT_TRUE(ReadFileBytes(path).ok());
  EXPECT_FALSE(ReadFileBytes(path + ".quarantined").ok());
}

TEST_F(ScrubTest, UnreadableMetaPageIsReportedNotThrown) {
  StoreMeta meta;
  const std::string path = Save("meta.qofstore", &meta);
  CorruptPage(path, 0);
  auto report = ScrubStore(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->meta_ok);
  EXPECT_FALSE(report->clean());
  EXPECT_FALSE(report->repairable());
}

}  // namespace
}  // namespace qof
