#include "qof/util/status.h"

#include <gtest/gtest.h>

#include "qof/util/result.h"

namespace qof {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad path");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad path");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad path");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::ParseError("line 3");
  Status t = s;
  EXPECT_EQ(t, s);
  EXPECT_EQ(t.message(), "line 3");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalve(int x, int* out) {
  QOF_ASSIGN_OR_RETURN(int h, Halve(x));
  QOF_ASSIGN_OR_RETURN(h, Halve(h));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseHalve(8, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseHalve(6, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  QOF_RETURN_IF_ERROR(FailIfNegative(x));
  QOF_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_EQ(Chain(5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace qof
