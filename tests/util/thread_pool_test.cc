#include "qof/util/thread_pool.h"

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(EffectiveParallelismTest, PositiveIsLiteral) {
  EXPECT_EQ(EffectiveParallelism(1), 1);
  EXPECT_EQ(EffectiveParallelism(7), 7);
}

TEST(EffectiveParallelismTest, ZeroAndNegativeMeanHardware) {
  EXPECT_GE(EffectiveParallelism(0), 1);
  EXPECT_GE(EffectiveParallelism(-3), 1);
  EXPECT_EQ(EffectiveParallelism(0), EffectiveParallelism(-1));
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, [&](int, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](int, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](int worker, size_t i) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WorkerIdsAddressDistinctScratch) {
  ThreadPool pool(3);
  std::vector<uint64_t> per_worker(3, 0);
  constexpr size_t kItems = 5000;
  pool.ParallelFor(kItems, [&](int worker, size_t i) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 3);
    per_worker[static_cast<size_t>(worker)] += i + 1;
  });
  uint64_t total =
      std::accumulate(per_worker.begin(), per_worker.end(), uint64_t{0});
  EXPECT_EQ(total, kItems * (kItems + 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(100, [&](int, size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 100u * 99u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, [&](int, size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(TaskQueueTest, RunsEveryAcceptedTask) {
  TaskQueue queue(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.TrySubmit(
        [&] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  queue.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(TaskQueueTest, BoundedQueueRefusesExcessWithoutRunningIt) {
  TaskQueue queue(1, /*max_queued=*/1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> running;
  // Occupy the single worker...
  ASSERT_TRUE(queue.TrySubmit([&, released] {
    running.set_value();
    released.wait();
  }));
  running.get_future().wait();
  // ...one slot queues, the next is refused at the door.
  std::atomic<int> ran{0};
  EXPECT_TRUE(queue.TrySubmit([&] { ++ran; }));
  std::atomic<bool> rejected_ran{false};
  EXPECT_FALSE(queue.TrySubmit([&] { rejected_ran.store(true); }));
  release.set_value();
  queue.Shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(rejected_ran.load());
}

TEST(TaskQueueTest, SubmitAfterShutdownIsRefused) {
  TaskQueue queue(2);
  queue.Shutdown();
  queue.Shutdown();  // idempotent
  EXPECT_FALSE(queue.TrySubmit([] {}));
}

TEST(TaskQueueTest, ShutdownDrainsQueuedTasks) {
  // Tasks accepted before Shutdown must run even if Shutdown races the
  // workers picking them up.
  TaskQueue queue(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(queue.TrySubmit(
        [&] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  queue.Shutdown();
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskQueueTest, CountersAreConsistentWhenIdle) {
  TaskQueue queue(3);
  EXPECT_EQ(queue.size(), 3);
  queue.Shutdown();
  EXPECT_EQ(queue.queued(), 0u);
  EXPECT_EQ(queue.active(), 0);
}

}  // namespace
}  // namespace qof
