#include <gtest/gtest.h>

#include <set>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/datagen/seed.h"
#include "qof/parse/parser.h"

namespace qof {
namespace {

TEST(BibtexGenTest, DeterministicForSeed) {
  BibtexGenOptions opt;
  opt.num_references = 10;
  opt.seed = 123;
  EXPECT_EQ(GenerateBibtex(opt), GenerateBibtex(opt));
  opt.seed = 124;
  std::string other = GenerateBibtex(opt);
  opt.seed = 123;
  EXPECT_NE(GenerateBibtex(opt), other);
}

TEST(BibtexGenTest, GeneratedCorpusParses) {
  BibtexGenOptions opt;
  opt.num_references = 50;
  std::string text = GenerateBibtex(opt);
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  SchemaParser parser(&*schema);
  auto tree = parser.ParseDocument(text, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->children.size(), 50u);
}

TEST(BibtexGenTest, ProbeRatesControlChangMentions) {
  BibtexGenOptions opt;
  opt.num_references = 300;
  opt.probe_author_rate = 1.0;
  opt.probe_editor_rate = 0.0;
  std::string all = GenerateBibtex(opt);
  // Every reference mentions Chang at least once.
  size_t count = 0;
  for (size_t p = all.find("Chang"); p != std::string::npos;
       p = all.find("Chang", p + 1)) {
    ++count;
  }
  EXPECT_GE(count, 300u);

  opt.probe_author_rate = 0.0;
  std::string none = GenerateBibtex(opt);
  EXPECT_EQ(none.find("Chang"), std::string::npos);
}

TEST(BibtexGenTest, SizeScalesLinearly) {
  BibtexGenOptions opt;
  opt.num_references = 10;
  size_t s10 = GenerateBibtex(opt).size();
  opt.num_references = 100;
  size_t s100 = GenerateBibtex(opt).size();
  EXPECT_GT(s100, 8 * s10);
  EXPECT_LT(s100, 13 * s10);
}

TEST(MailGenTest, GeneratedMailboxParses) {
  MailGenOptions opt;
  opt.num_messages = 40;
  std::string text = GenerateMailbox(opt);
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  SchemaParser parser(&*schema);
  auto tree = parser.ParseDocument(text, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->children.size(), 40u);
}

TEST(MailGenTest, ProbePersonAppears) {
  MailGenOptions opt;
  opt.num_messages = 100;
  opt.probe_sender_rate = 1.0;
  std::string text = GenerateMailbox(opt);
  EXPECT_NE(text.find("Dana Chang"), std::string::npos);
}

TEST(LogGenTest, GeneratedLogParses) {
  LogGenOptions opt;
  opt.num_entries = 200;
  std::string text = GenerateLog(opt);
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok());
  SchemaParser parser(&*schema);
  auto tree = parser.ParseDocument(text, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->children.size(), 200u);
}

TEST(LogGenTest, ErrorRateRoughlyRespected) {
  LogGenOptions opt;
  opt.num_entries = 1000;
  opt.error_rate = 0.2;
  std::string text = GenerateLog(opt);
  size_t errors = 0;
  for (size_t p = text.find("ERROR"); p != std::string::npos;
       p = text.find("ERROR", p + 1)) {
    ++errors;
  }
  size_t fatals = 0;
  for (size_t p = text.find("FATAL"); p != std::string::npos;
       p = text.find("FATAL", p + 1)) {
    ++fatals;
  }
  double rate = static_cast<double>(errors + fatals) / 1000.0;
  EXPECT_GT(rate, 0.12);
  EXPECT_LT(rate, 0.28);
}

TEST(WithSeedTest, DerivedSeedsAreDeterministicAndDecorrelated) {
  // Same inputs, same seed — the whole fuzz-repro story rests on this.
  EXPECT_EQ(WithSeed(1, 0), WithSeed(1, 0));
  // Distinct children of one base, and the same child of adjacent bases,
  // must all differ.
  std::set<uint32_t> seen;
  for (uint32_t base = 0; base < 8; ++base) {
    for (uint32_t i = 0; i < 64; ++i) {
      seen.insert(WithSeed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(WithSeedTest, AdjacentSeedsProduceDifferentCorpora) {
  // The reason naive seed+i is not enough: generators fed adjacent
  // derived seeds must produce visibly different text.
  BibtexGenOptions a;
  a.num_references = 3;
  a.seed = WithSeed(7, 0);
  BibtexGenOptions b = a;
  b.seed = WithSeed(7, 1);
  EXPECT_NE(GenerateBibtex(a), GenerateBibtex(b));
}

}  // namespace
}  // namespace qof
