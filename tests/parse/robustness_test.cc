// Robustness: the parser and the indexing pipeline must fail cleanly (a
// ParseError naming the file, never a crash or hang) on truncated and
// corrupted inputs.

#include <random>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

class RobustnessTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Range(0u, 5u));

void CheckTruncations(const StructuringSchema& schema,
                      const std::string& text, std::mt19937& rng) {
  SchemaParser parser(&schema);
  std::uniform_int_distribution<size_t> cut(0, text.size());
  for (int i = 0; i < 40; ++i) {
    std::string truncated = text.substr(0, cut(rng));
    auto tree = parser.ParseDocument(truncated, 0);
    // Either it parses (cut fell on an entry boundary) or it reports a
    // parse error; both are fine — crashing or OOMing is not.
    if (!tree.ok()) {
      EXPECT_TRUE(tree.status().IsParseError())
          << tree.status().ToString();
    }
  }
}

void CheckMutations(const StructuringSchema& schema,
                    const std::string& text, std::mt19937& rng) {
  SchemaParser parser(&schema);
  std::uniform_int_distribution<size_t> pos(0, text.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int i = 0; i < 40; ++i) {
    std::string mutated = text;
    // Flip a handful of characters.
    for (int k = 0; k < 5; ++k) {
      mutated[pos(rng)] = static_cast<char>(ch(rng));
    }
    auto tree = parser.ParseDocument(mutated, 0);
    if (!tree.ok()) {
      EXPECT_TRUE(tree.status().IsParseError());
    }
  }
}

TEST_P(RobustnessTest, BibtexTruncationsAndMutations) {
  std::mt19937 rng(GetParam());
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  BibtexGenOptions gen;
  gen.num_references = 8;
  gen.seed = GetParam();
  std::string text = GenerateBibtex(gen);
  CheckTruncations(*schema, text, rng);
  CheckMutations(*schema, text, rng);
}

TEST_P(RobustnessTest, MailTruncations) {
  std::mt19937 rng(GetParam() + 100);
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  MailGenOptions gen;
  gen.num_messages = 8;
  gen.seed = GetParam();
  std::string text = GenerateMailbox(gen);
  CheckTruncations(*schema, text, rng);
  CheckMutations(*schema, text, rng);
}

TEST_P(RobustnessTest, OutlineTruncations) {
  std::mt19937 rng(GetParam() + 200);
  auto schema = OutlineSchema();
  ASSERT_TRUE(schema.ok());
  OutlineGenOptions gen;
  gen.num_top_sections = 5;
  gen.seed = GetParam();
  std::string text = GenerateOutline(gen);
  CheckTruncations(*schema, text, rng);
  CheckMutations(*schema, text, rng);
}

TEST(RobustnessTest2, EngineSurvivesBadFileThenGoodFile) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("bad.bib", "@INCOLLECTION{broken").ok());
  auto s = system.BuildIndexes();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad.bib"), std::string::npos);
  // The system remains usable: baseline also reports the error cleanly.
  auto r = system.Execute("SELECT r FROM References r",
                          ExecutionMode::kBaseline);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace qof
