#include "qof/parse/parser.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"

namespace qof {
namespace {

// The paper's Figure 1 entry, in the generator's field order/format.
constexpr const char* kFig1 = R"(@INCOLLECTION{Corl82a,
  AUTHOR = "G. F. Corliss and Y. F. Chang",
  TITLE = "Solving Ordinary Differential Equations Using Taylor Series",
  BOOKTITLE = "Automatic Differentiation Algorithms",
  YEAR = "1982",
  EDITOR = "A. Griewank and G. F. Corliss",
  PUBLISHER = "SIAM",
  ADDRESS = "Philadelphia, Penn.",
  PAGES = "114--144",
  REFERRED = "[Aber88a]; [Corl88a]; [Gupt85a]",
  KEYWORDS = "point algorithm; Taylor series; radius of convergence",
  ABSTRACT = "A Fortran pre-processor uses automatic differentiation"
}
)";

class BibtexParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::make_unique<StructuringSchema>(*schema);
    parser_ = std::make_unique<SchemaParser>(schema_.get());
  }

  // All nodes of a symbol, preorder.
  static void Collect(const ParseNode& node, SymbolId symbol,
                      std::vector<const ParseNode*>* out) {
    if (node.symbol == symbol) out->push_back(&node);
    for (const auto& c : node.children) Collect(*c, symbol, out);
  }

  std::vector<const ParseNode*> Find(const ParseNode& root,
                                     const char* name) {
    std::vector<const ParseNode*> out;
    Collect(root, schema_->grammar().FindSymbol(name), &out);
    return out;
  }

  std::string Text(std::string_view doc, const ParseNode& n) {
    return std::string(
        doc.substr(n.span.start, n.span.end - n.span.start));
  }

  std::unique_ptr<StructuringSchema> schema_;
  std::unique_ptr<SchemaParser> parser_;
};

TEST_F(BibtexParserTest, ParsesFigure1) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->symbol, schema_->root());
  ASSERT_EQ((*tree)->children.size(), 1u);  // one Reference
}

TEST_F(BibtexParserTest, LeafSpansAreTight) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto keys = Find(**tree, "Key");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(Text(kFig1, *keys[0]), "Corl82a");

  auto years = Find(**tree, "Year");
  ASSERT_EQ(years.size(), 1u);
  EXPECT_EQ(Text(kFig1, *years[0]), "1982");

  auto titles = Find(**tree, "Title");
  ASSERT_EQ(titles.size(), 1u);
  EXPECT_EQ(Text(kFig1, *titles[0]),
            "Solving Ordinary Differential Equations Using Taylor Series");
}

TEST_F(BibtexParserTest, NamesSplitFirstAndLast) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto names = Find(**tree, "Name");
  ASSERT_EQ(names.size(), 4u);  // 2 authors + 2 editors
  auto firsts = Find(**tree, "First_Name");
  auto lasts = Find(**tree, "Last_Name");
  ASSERT_EQ(firsts.size(), 4u);
  ASSERT_EQ(lasts.size(), 4u);
  EXPECT_EQ(Text(kFig1, *firsts[0]), "G. F.");
  EXPECT_EQ(Text(kFig1, *lasts[0]), "Corliss");
  EXPECT_EQ(Text(kFig1, *firsts[1]), "Y. F.");
  EXPECT_EQ(Text(kFig1, *lasts[1]), "Chang");
  EXPECT_EQ(Text(kFig1, *lasts[2]), "Griewank");
}

TEST_F(BibtexParserTest, CompositeSpansStrictlyContainChildren) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto authors = Find(**tree, "Authors");
  ASSERT_EQ(authors.size(), 1u);
  // Authors includes the quotes.
  std::string text = Text(kFig1, *authors[0]);
  EXPECT_EQ(text.front(), '"');
  EXPECT_EQ(text.back(), '"');
  auto names = Find(**tree, "Name");
  for (const ParseNode* n : names) {
    if (authors[0]->span.Contains(n->span)) {
      EXPECT_TRUE(authors[0]->span.StrictlyContains(n->span));
    }
  }
  // Name strictly contains First_Name and Last_Name.
  for (const ParseNode* n : names) {
    for (const auto& child : n->children) {
      EXPECT_TRUE(n->span.StrictlyContains(child->span));
    }
  }
}

TEST_F(BibtexParserTest, KeywordsSplitOnSemicolons) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto kws = Find(**tree, "Keyword");
  ASSERT_EQ(kws.size(), 3u);
  EXPECT_EQ(Text(kFig1, *kws[0]), "point algorithm");
  EXPECT_EQ(Text(kFig1, *kws[1]), "Taylor series");
  EXPECT_EQ(Text(kFig1, *kws[2]), "radius of convergence");
}

TEST_F(BibtexParserTest, MultipleReferences) {
  std::string doc = std::string(kFig1) + kFig1;
  // Duplicate keys are fine at parse level.
  auto tree = parser_->ParseDocument(doc, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->children.size(), 2u);
  auto refs = Find(**tree, "Reference");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_LT(refs[0]->span.end, refs[1]->span.start);
}

TEST_F(BibtexParserTest, BaseOffsetShiftsAllSpans) {
  auto t0 = parser_->ParseDocument(kFig1, 0);
  auto t100 = parser_->ParseDocument(kFig1, 100);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t100.ok());
  EXPECT_EQ((*t100)->span.start, (*t0)->span.start + 100);
  EXPECT_EQ((*t100)->span.end, (*t0)->span.end + 100);
}

TEST_F(BibtexParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(parser_->ParseDocument("@BOOK{x}", 0).ok());
  EXPECT_FALSE(
      parser_->ParseDocument("@INCOLLECTION{Key, AUTHOR = broken", 0).ok());
  // Trailing garbage after a valid entry.
  std::string doc = std::string(kFig1) + "garbage";
  EXPECT_FALSE(parser_->ParseDocument(doc, 0).ok());
}

TEST_F(BibtexParserTest, ErrorsCarryLineAndContext) {
  std::string doc = "@INCOLLECTION{Key,\n  AUTHOR = oops";
  auto r = parser_->ParseDocument(doc, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST_F(BibtexParserTest, EmptyDocumentIsEmptyRefSet) {
  auto tree = parser_->ParseDocument("", 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->children.empty());
}

TEST_F(BibtexParserTest, ParseSubtreeFromViewSymbol) {
  // Two-phase plans re-parse a candidate region rooted at Reference.
  std::string_view doc = kFig1;
  auto tree = parser_->ParseDocument(doc, 0);
  ASSERT_TRUE(tree.ok());
  const ParseNode& ref = *(*tree)->children[0];
  std::string_view region_text =
      doc.substr(ref.span.start, ref.span.end - ref.span.start);
  auto sub = parser_->Parse(region_text, ref.span.start, schema_->view());
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ((*sub)->span.start, ref.span.start);
  EXPECT_EQ((*sub)->span.end, ref.span.end);
}

TEST_F(BibtexParserTest, ParseTreeRendering) {
  auto tree = parser_->ParseDocument(kFig1, 0);
  ASSERT_TRUE(tree.ok());
  std::string rendered = ParseTreeToString(*schema_, **tree);
  EXPECT_NE(rendered.find("Ref_Set"), std::string::npos);
  EXPECT_NE(rendered.find("  Reference"), std::string::npos);
  EXPECT_NE(rendered.find("Last_Name"), std::string::npos);
}

class MailLogParserTest : public ::testing::Test {};

TEST_F(MailLogParserTest, ParsesMailMessage) {
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  SchemaParser parser(&*schema);
  const char* doc =
      "MESSAGE {\n  FROM [Alice Zhou <azhou@example.org>]\n"
      "  TO [Bob Tanaka <btanaka@example.org>; Carol Iverson "
      "<carol@example.com>]\n"
      "  SUBJECT [budget review]\n  DATE [1994-05-24]\n"
      "  TAGS [work; urgent]\n  BODY [please see attached]\n}\n";
  auto tree = parser.ParseDocument(doc, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_EQ((*tree)->children.size(), 1u);
}

TEST_F(MailLogParserTest, ParsesLogEntries) {
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok());
  SchemaParser parser(&*schema);
  const char* doc =
      "[1994-05-24T00:00:07] INFO (cache) sid=3 : cache hit for key ;;\n"
      "[1994-05-24T00:00:09] ERROR (auth) sid=12 : connection refused ;;\n";
  auto tree = parser.ParseDocument(doc, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->children.size(), 2u);
}

}  // namespace
}  // namespace qof
