#include "qof/parse/region_extractor.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"

namespace qof {
namespace {

constexpr const char* kDoc = R"(@INCOLLECTION{Corl82a,
  AUTHOR = "G. F. Corliss and Y. F. Chang",
  TITLE = "Solving Equations",
  BOOKTITLE = "Differentiation Algorithms",
  YEAR = "1982",
  EDITOR = "A. Griewank",
  PUBLISHER = "SIAM",
  ADDRESS = "Philadelphia, Penn.",
  PAGES = "114--144",
  REFERRED = "[Aber88a]",
  KEYWORDS = "point algorithm; Taylor series",
  ABSTRACT = "A Fortran pre-processor"
}
)";

class ExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<StructuringSchema>(*schema);
    SchemaParser parser(schema_.get());
    auto tree = parser.ParseDocument(kDoc, 0);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(*tree);
  }

  std::unique_ptr<StructuringSchema> schema_;
  std::unique_ptr<ParseNode> tree_;
};

TEST_F(ExtractorTest, FullIndexingCoversAllButRoot) {
  RegionIndex index;
  ExtractRegions(*schema_, *tree_, ExtractionFilter::Full(), &index);
  EXPECT_TRUE(index.Has("Reference"));
  EXPECT_TRUE(index.Has("Authors"));
  EXPECT_TRUE(index.Has("Last_Name"));
  EXPECT_FALSE(index.Has("Ref_Set"));
  auto refs = index.Get("Reference");
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ((*refs)->size(), 1u);
  auto lasts = index.Get("Last_Name");
  ASSERT_TRUE(lasts.ok());
  EXPECT_EQ((*lasts)->size(), 3u);  // Corliss, Chang, Griewank
}

TEST_F(ExtractorTest, UniverseIsLaminar) {
  RegionIndex index;
  ExtractRegions(*schema_, *tree_, ExtractionFilter::Full(), &index);
  EXPECT_TRUE(index.Universe().IsLaminar());
}

TEST_F(ExtractorTest, PartialIndexingOnlySelectedNames) {
  RegionIndex index;
  ExtractRegions(
      *schema_, *tree_,
      ExtractionFilter::Partial({"Reference", "Key", "Last_Name"}),
      &index);
  EXPECT_TRUE(index.Has("Reference"));
  EXPECT_TRUE(index.Has("Key"));
  EXPECT_TRUE(index.Has("Last_Name"));
  EXPECT_FALSE(index.Has("Authors"));
  EXPECT_FALSE(index.Has("Name"));
  EXPECT_EQ(index.num_names(), 3u);
}

TEST_F(ExtractorTest, PartialIndexingRegistersEmptyInstances) {
  RegionIndex index;
  // Pages exists in the schema but the filter also asks for a name with
  // no occurrences in this document ("Year" always occurs; use a filter
  // with an absent name from another schema to simulate).
  ExtractRegions(*schema_, *tree_,
                 ExtractionFilter::Partial({"Reference", "Ghost"}),
                 &index);
  EXPECT_TRUE(index.Has("Ghost"));
  auto ghost = index.Get("Ghost");
  ASSERT_TRUE(ghost.ok());
  EXPECT_TRUE((*ghost)->empty());
}

TEST_F(ExtractorTest, SelectiveIndexingWithinAncestor) {
  // §7: index Name regions only when they sit inside an Authors region.
  ExtractionFilter filter;
  filter.include = {"Reference", "Authors", "Editors", "Name"};
  filter.within["Name"] = "Authors";
  RegionIndex index;
  ExtractRegions(*schema_, *tree_, filter, &index);
  auto names = index.Get("Name");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ((*names)->size(), 2u);  // the two authors; editor excluded
  // Each indexed Name lies inside the Authors region.
  auto authors = index.Get("Authors");
  ASSERT_TRUE(authors.ok());
  EXPECT_EQ(IncludedIn(**names, **authors), **names);
}

TEST_F(ExtractorTest, ZeroLengthSpansSkipped) {
  // A single-word author ("Plato") yields an empty First_Name span.
  const char* doc =
      "@INCOLLECTION{K1,\n  AUTHOR = \"Plato\",\n  TITLE = \"T\",\n"
      "  BOOKTITLE = \"B\",\n  YEAR = \"390\",\n  EDITOR = \"A. Editor\",\n"
      "  PUBLISHER = \"P\",\n  ADDRESS = \"A\",\n  PAGES = \"1--2\",\n"
      "  REFERRED = \"\",\n  KEYWORDS = \"k\",\n  ABSTRACT = \"x\"\n}\n";
  SchemaParser parser(schema_.get());
  auto tree = parser.ParseDocument(doc, 0);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  RegionIndex index;
  ExtractRegions(*schema_, **tree, ExtractionFilter::Full(), &index);
  auto firsts = index.Get("First_Name");
  ASSERT_TRUE(firsts.ok());
  EXPECT_EQ((*firsts)->size(), 1u);  // only the editor's "A."
  auto lasts = index.Get("Last_Name");
  ASSERT_TRUE(lasts.ok());
  EXPECT_EQ((*lasts)->size(), 2u);  // Plato + Editor
}

}  // namespace
}  // namespace qof
