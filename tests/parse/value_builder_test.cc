#include "qof/parse/value_builder.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/db/evaluator.h"

namespace qof {
namespace {

constexpr const char* kDoc = R"(@INCOLLECTION{Corl82a,
  AUTHOR = "G. F. Corliss and Y. F. Chang",
  TITLE = "Solving Equations",
  BOOKTITLE = "Differentiation Algorithms",
  YEAR = "1982",
  EDITOR = "A. Griewank",
  PUBLISHER = "SIAM",
  ADDRESS = "Philadelphia, Penn.",
  PAGES = "114--144",
  REFERRED = "[Aber88a]; [Corl88a]",
  KEYWORDS = "point algorithm; Taylor series",
  ABSTRACT = "A Fortran pre-processor"
}
)";

class ValueBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<StructuringSchema>(*schema);
    ASSERT_TRUE(corpus_.AddDocument("doc.bib", kDoc).ok());
    SchemaParser parser(schema_.get());
    auto tree = parser.ParseDocument(corpus_.full_text(), 0);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(*tree);
  }

  std::unique_ptr<StructuringSchema> schema_;
  Corpus corpus_;
  std::unique_ptr<ParseNode> tree_;
};

TEST_F(ValueBuilderTest, BuildsReferenceObject) {
  ObjectStore store;
  auto value = BuildValue(*schema_, corpus_, *tree_, &store);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  // Root action is CollectSet over Reference objects.
  ASSERT_EQ(value->kind(), Value::Kind::kSet);
  ASSERT_EQ(value->elements().size(), 1u);
  const Value& ref = value->elements()[0];
  EXPECT_EQ(ref.kind(), Value::Kind::kRef);
  EXPECT_EQ(store.size(), 1u);

  auto obj = store.Get(ref.ref_id());
  ASSERT_TRUE(obj.ok());
  const Value& state = (*obj)->state;
  EXPECT_EQ(state.Field("Key")->str(), "Corl82a");
  EXPECT_EQ(state.Field("Title")->str(), "Solving Equations");
  EXPECT_EQ(state.Field("Year")->int_value(), 1982);
  EXPECT_EQ(state.Field("Publisher")->str(), "SIAM");
  EXPECT_EQ(state.Field("Pages")->str(), "114--144");
}

TEST_F(ValueBuilderTest, AuthorsAreTypedNameTuples) {
  ObjectStore store;
  auto value = BuildValue(*schema_, corpus_, *tree_, &store);
  ASSERT_TRUE(value.ok());
  auto obj = store.Get(value->elements()[0].ref_id());
  ASSERT_TRUE(obj.ok());
  const Value* authors = (*obj)->state.Field("Authors");
  ASSERT_NE(authors, nullptr);
  EXPECT_EQ(authors->kind(), Value::Kind::kSet);
  EXPECT_EQ(authors->type_name(), "Authors");
  ASSERT_EQ(authors->elements().size(), 2u);
  for (const Value& name : authors->elements()) {
    EXPECT_EQ(name.type_name(), "Name");
    EXPECT_NE(name.Field("Last_Name"), nullptr);
  }
}

TEST_F(ValueBuilderTest, NavigationFindsChangAuthor) {
  ObjectStore store;
  auto value = BuildValue(*schema_, corpus_, *tree_, &store);
  ASSERT_TRUE(value.ok());
  Value root = value->elements()[0];
  auto lasts = NavigatePath(store, root,
                            {NavStep::Attr("Authors"), NavStep::Attr("Name"),
                             NavStep::Attr("Last_Name")});
  ASSERT_EQ(lasts.size(), 2u);
  bool chang = false;
  for (const Value& v : lasts) chang = chang || v.str() == "Chang";
  EXPECT_TRUE(chang);
  // Editors' side has Griewank only.
  auto editors =
      NavigatePath(store, root,
                   {NavStep::Attr("Editors"), NavStep::Attr("Name"),
                    NavStep::Attr("Last_Name")});
  ASSERT_EQ(editors.size(), 1u);
  EXPECT_EQ(editors[0].str(), "Griewank");
}

TEST_F(ValueBuilderTest, KeywordsCollectAsStringSet) {
  ObjectStore store;
  auto value = BuildValue(*schema_, corpus_, *tree_, &store);
  ASSERT_TRUE(value.ok());
  auto obj = store.Get(value->elements()[0].ref_id());
  const Value* kw = (*obj)->state.Field("Keywords");
  ASSERT_NE(kw, nullptr);
  ASSERT_EQ(kw->elements().size(), 2u);
  EXPECT_EQ(kw->elements()[0].str(), "Taylor series");
  EXPECT_EQ(kw->elements()[1].str(), "point algorithm");
}

TEST_F(ValueBuilderTest, BuildingChargesNoExtraScanBytes) {
  // Leaf reads are free: the plan that acquired the text already paid for
  // it (see value_builder.h).
  corpus_.ResetBytesRead();
  ObjectStore store;
  auto value = BuildValue(*schema_, corpus_, *tree_, &store);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(corpus_.bytes_read(), 0u);
}

TEST_F(ValueBuilderTest, BuildObjectOnViewNode) {
  ObjectStore store;
  const ParseNode& ref_node = *tree_->children[0];
  auto id = BuildObject(*schema_, corpus_, ref_node, &store);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto obj = store.Get(*id);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->class_name, "Reference");
}

TEST_F(ValueBuilderTest, ObjectActionWithoutStoreFails) {
  auto value = BuildValue(*schema_, corpus_, *tree_, nullptr);
  ASSERT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsInvalidArgument());
}

}  // namespace
}  // namespace qof
