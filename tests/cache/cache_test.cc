// Tests of the generation-keyed query caches: the EvalCache and
// PlanCache units, and the FileQuerySystem wiring — warm runs served
// from cache, byte-identical answers, and invalidation on every path
// that changes what a query would see (mutations, compaction, rebuilds,
// imports).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/cache/cache.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

std::shared_ptr<const RegionSet> MakeSet(std::vector<Region> v) {
  return std::make_shared<const RegionSet>(
      RegionSet::FromUnsorted(std::move(v)));
}

TEST(EvalCacheTest, LookupReturnsInsertedSetUnderSameEpoch) {
  EvalCache cache(/*max_regions=*/100, /*inject_stale=*/false);
  CacheEpoch epoch{1, 0};
  EXPECT_EQ(cache.Lookup("k", epoch), nullptr);
  cache.Insert("k", epoch, MakeSet({{0, 5}, {7, 9}}));
  auto hit = cache.Lookup("k", epoch);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.eval_hits, 1u);
  EXPECT_EQ(stats.eval_misses, 1u);
  EXPECT_EQ(stats.eval_regions_cached, 2u);
}

TEST(EvalCacheTest, EpochChangeFlushesEverything) {
  EvalCache cache(100, false);
  cache.Insert("k", CacheEpoch{1, 0}, MakeSet({{0, 5}}));
  // Generation bump.
  EXPECT_EQ(cache.Lookup("k", CacheEpoch{2, 0}), nullptr);
  cache.Insert("k", CacheEpoch{2, 0}, MakeSet({{0, 5}}));
  // Compaction bump at the same generation must flush too: offsets were
  // rebased without touching the generation.
  EXPECT_EQ(cache.Lookup("k", CacheEpoch{2, 1}), nullptr);
  EXPECT_GE(cache.stats().invalidations, 2u);
}

TEST(EvalCacheTest, InjectStaleServesOldEpochEntries) {
  EvalCache cache(100, /*inject_stale=*/true);
  cache.Insert("k", CacheEpoch{1, 0}, MakeSet({{0, 5}}));
  // The planted bug: the entry survives the epoch change.
  EXPECT_NE(cache.Lookup("k", CacheEpoch{2, 0}), nullptr);
}

TEST(EvalCacheTest, EvictsLeastRecentlyUsedByRegionCount) {
  EvalCache cache(/*max_regions=*/10, false);
  CacheEpoch epoch{1, 0};
  cache.Insert("a", epoch, MakeSet({{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  cache.Insert("b", epoch, MakeSet({{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  ASSERT_NE(cache.Lookup("a", epoch), nullptr);  // refresh a; b is LRU
  cache.Insert("c", epoch, MakeSet({{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_NE(cache.Lookup("a", epoch), nullptr);
  EXPECT_EQ(cache.Lookup("b", epoch), nullptr);
  EXPECT_NE(cache.Lookup("c", epoch), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.eval_evictions, 1u);
  EXPECT_LE(stats.eval_regions_cached, 10u);
}

TEST(EvalCacheTest, RefusesSetsLargerThanTheWholeBudget) {
  EvalCache cache(/*max_regions=*/2, false);
  CacheEpoch epoch{1, 0};
  cache.Insert("big", epoch, MakeSet({{0, 1}, {2, 3}, {4, 5}}));
  EXPECT_EQ(cache.Lookup("big", epoch), nullptr);
  EXPECT_EQ(cache.stats().eval_regions_cached, 0u);
}

TEST(PlanCacheTest, LruEvictionByEntryCount) {
  PlanCache cache(/*max_plans=*/2);
  auto entry = [] {
    auto e = std::make_shared<PlanCache::Entry>();
    return e;
  };
  cache.Insert("q1", entry());
  cache.Insert("q2", entry());
  ASSERT_NE(cache.Lookup("q1"), nullptr);  // refresh q1; q2 is LRU
  cache.Insert("q3", entry());
  EXPECT_NE(cache.Lookup("q1"), nullptr);
  EXPECT_EQ(cache.Lookup("q2"), nullptr);
  EXPECT_NE(cache.Lookup("q3"), nullptr);
  EXPECT_EQ(cache.stats().plan_evictions, 1u);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("q3"), nullptr);
}

// ---- system wiring ---------------------------------------------------------

constexpr const char* kRefs = R"(@INCOLLECTION{Ref0,
  AUTHOR = "Y. F. Chang and G. F. Corliss",
  TITLE = "Solving Ordinary Differential Equations",
  BOOKTITLE = "Automatic Differentiation Algorithms",
  YEAR = "1982",
  EDITOR = "A. Griewank",
  PUBLISHER = "SIAM",
  ADDRESS = "Philadelphia, Penn.",
  PAGES = "114--144",
  REFERRED = "",
  KEYWORDS = "point algorithm",
  ABSTRACT = "a Fortran pre-processor"
}
@INCOLLECTION{Ref1,
  AUTHOR = "T. Milo",
  TITLE = "Querying Files",
  BOOKTITLE = "Database Systems",
  YEAR = "1993",
  EDITOR = "Q. Chang",
  PUBLISHER = "ACM Press",
  ADDRESS = "New York, NY",
  PAGES = "1--20",
  REFERRED = "",
  KEYWORDS = "file systems",
  ABSTRACT = "bridging databases and files"
}
)";

constexpr const char* kExtraRef = R"(@INCOLLECTION{Ref9,
  AUTHOR = "Z. Chang",
  TITLE = "Another Entry",
  BOOKTITLE = "More Databases",
  YEAR = "1994",
  EDITOR = "N. Body",
  PUBLISHER = "ACM Press",
  ADDRESS = "Toronto",
  PAGES = "2--4",
  REFERRED = "",
  KEYWORDS = "caching",
  ABSTRACT = "an extra reference"
}
)";

constexpr const char* kQuery =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = \"Chang\"";

class CacheSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    cached_ = std::make_unique<FileQuerySystem>(*schema);
    plain_ = std::make_unique<FileQuerySystem>(*schema);
    for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
      ASSERT_TRUE(s->AddFile("refs.bib", kRefs).ok());
      s->SetParallelism(1);
    }
    cached_->SetCacheOptions(CacheOptions::Enabled());
    ASSERT_TRUE(cached_->BuildIndexes(IndexSpec::Full()).ok());
    ASSERT_TRUE(plain_->BuildIndexes(IndexSpec::Full()).ok());
  }

  QueryResult Run(FileQuerySystem* s, const char* fql = kQuery) {
    auto r = s->Execute(fql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  void ExpectAgree(const char* fql = kQuery) {
    QueryResult a = Run(cached_.get(), fql);
    QueryResult b = Run(plain_.get(), fql);
    EXPECT_EQ(a.regions, b.regions) << fql;
    EXPECT_EQ(a.RenderedValues(), b.RenderedValues()) << fql;
  }

  std::unique_ptr<FileQuerySystem> cached_;
  std::unique_ptr<FileQuerySystem> plain_;
};

TEST_F(CacheSystemTest, WarmRunIsServedFromBothCaches) {
  QueryResult cold = Run(cached_.get());
  CacheStats after_cold = cached_->cache_stats();
  EXPECT_EQ(after_cold.plan_hits, 0u);
  EXPECT_GT(after_cold.eval_misses, 0u);
  EXPECT_EQ(cold.stats.algebra.cache_hits, 0u);

  QueryResult warm = Run(cached_.get());
  CacheStats after_warm = cached_->cache_stats();
  EXPECT_EQ(after_warm.plan_hits, 1u);
  EXPECT_EQ(after_warm.eval_misses, after_cold.eval_misses)
      << "warm run recomputed subexpressions";
  EXPECT_GT(warm.stats.algebra.cache_hits, 0u);
  EXPECT_EQ(warm.regions, cold.regions);
  EXPECT_EQ(warm.RenderedValues(), cold.RenderedValues());
  ExpectAgree();
}

TEST_F(CacheSystemTest, MutationsInvalidateCachedResults) {
  ExpectAgree();  // warms the caches
  for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
    ASSERT_TRUE(s->AddFile("extra.bib", kExtraRef).ok());
  }
  ExpectAgree();  // must include Ref9, not the cached two-ref answer
  for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
    ASSERT_TRUE(s->UpdateFile("extra.bib", kRefs).ok());
  }
  ExpectAgree();
  for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
    ASSERT_TRUE(s->RemoveFile("extra.bib").ok());
  }
  ExpectAgree();
  EXPECT_GT(cached_->cache_stats().invalidations, 0u);
}

TEST_F(CacheSystemTest, CompactionInvalidatesWithoutAGenerationBump) {
  for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
    ASSERT_TRUE(s->AddFile("extra.bib", kExtraRef).ok());
    ASSERT_TRUE(s->RemoveFile("extra.bib").ok());
  }
  ExpectAgree();  // warms the caches on the fragmented corpus
  for (FileQuerySystem* s : {cached_.get(), plain_.get()}) {
    ASSERT_TRUE(s->CompactIndexes().ok());
  }
  // Compaction rebased every region offset; a stale cached answer would
  // carry pre-compaction coordinates.
  ExpectAgree();
}

TEST_F(CacheSystemTest, RebuildAndImportFlushBothCaches) {
  ExpectAgree();
  CacheStats before = cached_->cache_stats();
  ASSERT_TRUE(cached_->BuildIndexes(IndexSpec::Full()).ok());
  EXPECT_GT(cached_->cache_stats().invalidations, before.invalidations);
  ExpectAgree();

  auto blob = plain_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  CacheStats mid = cached_->cache_stats();
  ASSERT_TRUE(cached_->ImportIndexes(*blob).ok());
  EXPECT_GT(cached_->cache_stats().invalidations, mid.invalidations);
  ExpectAgree();
}

TEST_F(CacheSystemTest, CacheHitsStillChargeTheRegionBudget) {
  // Governance must be cache-independent: a budget that fails the cold
  // run must fail the warm run identically, even though the warm run's
  // regions come from the cache.
  QueryOptions tight;
  tight.max_regions = 1;
  auto cold = cached_->Execute(kQuery, ExecutionMode::kAuto, tight);
  auto warm = cached_->Execute(kQuery, ExecutionMode::kAuto, tight);
  // Auto mode degrades a blown region budget to the baseline, so both
  // must *succeed* via the same fallback — or fail the same way.
  ASSERT_EQ(cold.ok(), warm.ok());
  if (cold.ok()) {
    EXPECT_EQ(cold->regions, warm->regions);
    EXPECT_EQ(cold->stats.strategy, warm->stats.strategy);
  } else {
    EXPECT_EQ(cold.status().code(), warm.status().code());
  }
}

TEST_F(CacheSystemTest, DisablingCachesRestoresUncachedBehavior) {
  ExpectAgree();
  cached_->SetCacheOptions(CacheOptions{});
  EXPECT_FALSE(cached_->cache_options().any());
  QueryResult r = Run(cached_.get());
  EXPECT_EQ(r.stats.algebra.cache_hits, 0u);
  CacheStats stats = cached_->cache_stats();
  EXPECT_EQ(stats.plan_hits + stats.plan_misses + stats.eval_hits +
                stats.eval_misses,
            0u);
  ExpectAgree();
}

TEST_F(CacheSystemTest, InjectStaleServesPreMutationAnswers) {
  // The planted bug the fuzzer's cache leg exists to catch: with
  // inject_stale the eval cache ignores the epoch change, so after a
  // mutation the cached system keeps answering from pre-mutation state.
  CacheOptions bugged = CacheOptions::Enabled();
  bugged.inject_stale = true;
  cached_->SetCacheOptions(bugged);
  QueryResult before = Run(cached_.get());
  ASSERT_TRUE(cached_->AddFile("extra.bib", kExtraRef).ok());
  ASSERT_TRUE(plain_->AddFile("extra.bib", kExtraRef).ok());
  QueryResult stale = Run(cached_.get());
  QueryResult fresh = Run(plain_.get());
  EXPECT_EQ(stale.regions, before.regions)
      << "inject_stale should have pinned the pre-mutation answer";
  EXPECT_NE(stale.regions, fresh.regions)
      << "the planted bug must be observable";
}

}  // namespace
}  // namespace qof
