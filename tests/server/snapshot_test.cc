// Generation-snapshot isolation at the engine level: pinned snapshots
// answer byte-identically across mutations, compaction, and full
// rebuilds (copy-on-write), and their eval-cache entries survive
// unrelated mutations for as long as the snapshot lives (see
// qof/engine/snapshot.h and DESIGN.md, "Server & snapshot isolation").

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

constexpr const char* kProbeFql =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::string Doc(uint32_t seed, int refs = 20) {
  BibtexGenOptions gen;
  gen.num_references = refs;
  gen.seed = seed;
  gen.probe_author_rate = 0.2;
  return GenerateBibtex(gen);
}

std::string Fingerprint(const Result<QueryResult>& r) {
  if (!r.ok()) return "error:" + r.status().ToString();
  std::string out;
  for (const Region& region : r->regions) {
    out += std::to_string(region.start) + "-" +
           std::to_string(region.end) + ";";
  }
  for (const std::string& v : r->RenderedValues()) out += v + "|";
  return out;
}

std::unique_ptr<FileQuerySystem> MakeSystem(bool caches = false) {
  auto schema = BibtexSchema();
  EXPECT_TRUE(schema.ok());
  auto system = std::make_unique<FileQuerySystem>(*schema);
  EXPECT_TRUE(system->AddFile("a.bib", Doc(11)).ok());
  EXPECT_TRUE(system->AddFile("b.bib", Doc(22)).ok());
  if (caches) system->SetCacheOptions(CacheOptions::Enabled());
  EXPECT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());
  return system;
}

TEST(Snapshot, PinnedReadsAreImmutableAcrossMutations) {
  auto system = MakeSystem();
  auto snapshot = system->AcquireSnapshot();
  ASSERT_TRUE(snapshot.ok());
  std::string before = Fingerprint(
      system->ExecuteOnSnapshot(**snapshot, kProbeFql));
  ASSERT_TRUE(before.rfind("error:", 0) != 0) << before;

  // Every mutation kind in turn; the pinned view never moves.
  ASSERT_TRUE(system->AddFile("c.bib", Doc(33)).ok());
  EXPECT_EQ(Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql)),
            before);
  ASSERT_TRUE(system->UpdateFile("a.bib", Doc(44)).ok());
  EXPECT_EQ(Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql)),
            before);
  ASSERT_TRUE(system->RemoveFile("b.bib").ok());
  EXPECT_EQ(Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql)),
            before);
  ASSERT_TRUE(system->CompactIndexes().ok());
  EXPECT_EQ(Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql)),
            before);

  // The live view did move.
  EXPECT_NE(Fingerprint(system->Execute(kProbeFql)), before);
}

TEST(Snapshot, GenerationStampsRecordThePinPoint) {
  auto system = MakeSystem();
  auto s0 = system->AcquireSnapshot();
  ASSERT_TRUE(s0.ok());
  uint64_t g0 = (*s0)->maintain.generation;

  ASSERT_TRUE(system->AddFile("c.bib", Doc(33)).ok());
  auto s1 = system->AcquireSnapshot();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ((*s0)->maintain.generation, g0);
  EXPECT_EQ((*s1)->maintain.generation, g0 + 1);
  EXPECT_EQ(system->index_generation(), g0 + 1);

  // Distinct pins answer for their own generation, concurrently valid.
  std::string old_answer =
      Fingerprint(system->ExecuteOnSnapshot(**s0, kProbeFql));
  std::string new_answer =
      Fingerprint(system->ExecuteOnSnapshot(**s1, kProbeFql));
  EXPECT_NE(old_answer, new_answer);
  EXPECT_EQ(new_answer, Fingerprint(system->Execute(kProbeFql)));
}

TEST(Snapshot, SurvivesFullRebuild) {
  // BuildIndexes replaces the compiler and resets maintenance counters;
  // a snapshot pinned before the rebuild keeps its own compiler and
  // index state (the plan cache must not serve it cross-build entries —
  // PlanCache::Entry::build guards that).
  auto system = MakeSystem(/*caches=*/true);
  auto snapshot = system->AcquireSnapshot();
  ASSERT_TRUE(snapshot.ok());
  std::string before = Fingerprint(
      system->ExecuteOnSnapshot(**snapshot, kProbeFql));

  ASSERT_TRUE(system->UpdateFile("a.bib", Doc(55)).ok());
  ASSERT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());

  EXPECT_EQ(Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql)),
            before);
  EXPECT_NE(Fingerprint(system->Execute(kProbeFql)), before);
}

TEST(Snapshot, WarmEvalEntriesSurviveUnrelatedMutation) {
  // The satellite regression: entries cached under a pinned epoch keep
  // serving that snapshot's queries after an unrelated UpdateFile — the
  // mutation must not cost pinned readers their warm cache.
  auto system = MakeSystem(/*caches=*/true);
  auto snapshot = system->AcquireSnapshot();
  ASSERT_TRUE(snapshot.ok());

  std::string cold = Fingerprint(
      system->ExecuteOnSnapshot(**snapshot, kProbeFql));
  CacheStats warm0 = system->cache_stats();
  std::string warm = Fingerprint(
      system->ExecuteOnSnapshot(**snapshot, kProbeFql));
  CacheStats warm1 = system->cache_stats();
  EXPECT_EQ(warm, cold);
  ASSERT_GT(warm1.eval_hits, warm0.eval_hits)
      << "second snapshot query did not hit the eval cache";

  // Unrelated mutation: advances the epoch, prunes unpinned entries.
  ASSERT_TRUE(system->UpdateFile("b.bib", Doc(66)).ok());

  std::string after = Fingerprint(
      system->ExecuteOnSnapshot(**snapshot, kProbeFql));
  CacheStats warm2 = system->cache_stats();
  EXPECT_EQ(after, cold);
  EXPECT_GT(warm2.eval_hits, warm1.eval_hits)
      << "pinned-epoch entry was flushed by an unrelated mutation";
}

TEST(Snapshot, ReleasingThePinReclaimsItsCacheEntries) {
  auto system = MakeSystem(/*caches=*/true);
  {
    auto snapshot = system->AcquireSnapshot();
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(
        system->ExecuteOnSnapshot(**snapshot, kProbeFql).ok());
    // Move the live epoch past the pin so the pinned entries are the
    // only survivors of their epoch.
    ASSERT_TRUE(system->UpdateFile("b.bib", Doc(77)).ok());
    ASSERT_TRUE(system->Execute(kProbeFql).ok());
    EXPECT_GT(system->cache_stats().eval_regions_cached, 0u);
    uint64_t while_pinned = system->cache_stats().eval_regions_cached;
    // Snapshot drops here; its epoch unpins and its entries reclaim.
    (void)while_pinned;
  }
  // Only current-epoch entries remain; re-running the live query still
  // hits (its epoch was never reclaimed).
  CacheStats s0 = system->cache_stats();
  ASSERT_TRUE(system->Execute(kProbeFql).ok());
  CacheStats s1 = system->cache_stats();
  EXPECT_GT(s1.eval_hits, s0.eval_hits);
}

TEST(Snapshot, CopyOnWriteSharesUntouchedState) {
  // Before any mutation, a snapshot shares the live corpus (no copy);
  // the first mutation under a pin clones, after which the snapshot
  // holds the only reference to the old state.
  auto system = MakeSystem();
  auto snapshot = system->AcquireSnapshot();
  ASSERT_TRUE(snapshot.ok());
  long shared_before = (*snapshot)->corpus.use_count();
  EXPECT_GE(shared_before, 2) << "snapshot should share pre-mutation state";
  ASSERT_TRUE(system->UpdateFile("a.bib", Doc(88)).ok());
  EXPECT_LT((*snapshot)->corpus.use_count(), shared_before)
      << "mutation should have cloned, leaving the snapshot its own copy";
}

}  // namespace
}  // namespace qof
