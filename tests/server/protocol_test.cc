// The qof_serve line protocol: command parsing, field escaping, and
// response formatting (see qof/server/protocol.h for the grammar).

#include <string>

#include <gtest/gtest.h>

#include "qof/server/protocol.h"

namespace qof {
namespace {

TEST(Escaping, RoundTripsEveryEscapedByte) {
  const std::string raw = "a\\b\nline2\r\ntrailing\\";
  std::string escaped = EscapeField(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  auto back = UnescapeField(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(Escaping, PlainTextPassesThrough) {
  EXPECT_EQ(EscapeField("hello world"), "hello world");
  auto back = UnescapeField("hello world");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello world");
}

TEST(Escaping, RejectsDanglingAndUnknownEscapes) {
  EXPECT_FALSE(UnescapeField("oops\\").ok());
  EXPECT_FALSE(UnescapeField("bad\\x").ok());
}

TEST(ParseCommand, OpenAndQuitTakeNoSession) {
  auto open = ParseCommand("OPEN");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->kind, CommandKind::kOpen);
  EXPECT_EQ(open->session, 0u);

  auto quit = ParseCommand("QUIT\n");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit->kind, CommandKind::kQuit);
}

TEST(ParseCommand, QueryKeepsRestOfLineVerbatim) {
  auto cmd = ParseCommand(
      "QUERY 7 SELECT r FROM References r WHERE r.Year = \"1994\"\n");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->kind, CommandKind::kQuery);
  EXPECT_EQ(cmd->session, 7u);
  EXPECT_EQ(cmd->text,
            "SELECT r FROM References r WHERE r.Year = \"1994\"");
}

TEST(ParseCommand, AddUnescapesThePayload) {
  auto cmd = ParseCommand("ADD 3 refs.bib line1\\nline2");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->kind, CommandKind::kAdd);
  EXPECT_EQ(cmd->session, 3u);
  EXPECT_EQ(cmd->name, "refs.bib");
  EXPECT_EQ(cmd->text, "line1\nline2");

  auto update = ParseCommand("UPDATE 3 refs.bib new\\\\text");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->kind, CommandKind::kUpdate);
  EXPECT_EQ(update->text, "new\\text");
}

TEST(ParseCommand, SessionOnlyVerbs) {
  struct Case {
    const char* line;
    CommandKind kind;
  } cases[] = {
      {"REMOVE 5 refs.bib", CommandKind::kRemove},
      {"COMPACT 5", CommandKind::kCompact},
      {"REFRESH 5", CommandKind::kRefresh},
      {"STATS 5", CommandKind::kStats},
      {"CANCEL 5", CommandKind::kCancel},
      {"CLOSE 5", CommandKind::kClose},
  };
  for (const Case& c : cases) {
    auto cmd = ParseCommand(c.line);
    ASSERT_TRUE(cmd.ok()) << c.line;
    EXPECT_EQ(cmd->kind, c.kind) << c.line;
    EXPECT_EQ(cmd->session, 5u) << c.line;
  }
}

TEST(ParseCommand, MalformedLinesAreInvalidArgument) {
  for (const char* line :
       {"", "   ", "NOPE 1", "QUERY", "QUERY x SELECT",
        "QUERY 1", "ADD 1", "ADD 1 refs.bib bad\\x", "REMOVE 2",
        "STATS abc"}) {
    auto cmd = ParseCommand(line);
    EXPECT_FALSE(cmd.ok()) << "accepted: \"" << line << "\"";
    if (!cmd.ok()) {
      EXPECT_TRUE(cmd.status().IsInvalidArgument())
          << cmd.status().ToString();
    }
  }
}

TEST(Format, ResponsesAreTaggedAndNewlineTerminated) {
  EXPECT_EQ(FormatOk(4, "generation=2"), "OK 4 generation=2\n");
  EXPECT_EQ(FormatOk(0, ""), "OK 0\n");
  EXPECT_EQ(FormatRow(9, "a\nb"), "ROW 9 a\\nb\n");
  EXPECT_EQ(FormatErr(2, Status::NotFound("no session 2")),
            "ERR 2 not-found no session 2\n");
  EXPECT_EQ(FormatErr(1, Status::Unavailable("queue full\nretry")),
            "ERR 1 unavailable queue full\\nretry\n");
}

TEST(Format, RoundTripThroughParse) {
  // A response payload that went through EscapeField can be safely
  // embedded in a follow-up ADD command — the protocol is closed under
  // its own escaping.
  const std::string text = "@article{k,\n  title = {T}\n}\n";
  auto cmd = ParseCommand("ADD 1 f.bib " + EscapeField(text));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->text, text);
}

}  // namespace
}  // namespace qof
