// QueryService semantics: session lifecycle, repeatable reads,
// read-your-writes, refresh, admission control, option clamping,
// cancellation, and stats accounting (see qof/server/service.h).

#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/server/service.h"

namespace qof {
namespace {

constexpr const char* kProbeFql =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::string Doc(uint32_t seed, int refs = 20) {
  BibtexGenOptions gen;
  gen.num_references = refs;
  gen.seed = seed;
  gen.probe_author_rate = 0.2;
  return GenerateBibtex(gen);
}

std::string Fingerprint(const Result<QueryResult>& r) {
  if (!r.ok()) return "error:" + r.status().ToString();
  std::string out;
  for (const Region& region : r->regions) {
    out += std::to_string(region.start) + "-" +
           std::to_string(region.end) + ";";
  }
  return out;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("a.bib", Doc(11)).ok());
    ASSERT_TRUE(system_->AddFile("b.bib", Doc(22)).ok());
    system_->SetCacheOptions(CacheOptions::Enabled());
    ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(ServiceTest, SessionLifecycleAndStats) {
  QueryService service(system_.get());
  auto a = service.OpenSession();
  auto b = service.OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(service.stats().sessions_open, 2u);
  EXPECT_EQ(service.stats().sessions_opened, 2u);

  EXPECT_TRUE(service.CloseSession(*a).ok());
  EXPECT_EQ(service.stats().sessions_open, 1u);
  // Double close and unknown ids are kNotFound, as are all operations
  // on them.
  EXPECT_TRUE(service.CloseSession(*a).IsNotFound());
  EXPECT_TRUE(service.Query(999, kProbeFql).status().IsNotFound());
  EXPECT_TRUE(service.Refresh(999).IsNotFound());
  EXPECT_TRUE(service.AddFile(999, "x.bib", "text").IsNotFound());
  EXPECT_TRUE(service.CancelActive(999).IsNotFound());
}

TEST_F(ServiceTest, QueryMatchesDirectExecution) {
  std::string expected = Fingerprint(system_->Execute(kProbeFql));
  QueryService service(system_.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(Fingerprint(service.Query(*sid, kProbeFql)), expected);
  auto count = service.SessionQueryCount(*sid);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_EQ(service.stats().queries_executed, 1u);
  EXPECT_EQ(service.stats().queries_failed, 0u);
}

TEST_F(ServiceTest, RepeatableReadsUntilRefresh) {
  QueryService service(system_.get());
  auto reader = service.OpenSession();
  auto writer = service.OpenSession();
  ASSERT_TRUE(reader.ok() && writer.ok());

  std::string before = Fingerprint(service.Query(*reader, kProbeFql));
  auto gen_before = service.SessionGeneration(*reader);
  ASSERT_TRUE(gen_before.ok());

  // Writer mutates; reader's pinned view must not move.
  ASSERT_TRUE(service.AddFile(*writer, "c.bib", Doc(33)).ok());
  EXPECT_EQ(Fingerprint(service.Query(*reader, kProbeFql)), before);
  EXPECT_EQ(*service.SessionGeneration(*reader), *gen_before);

  // Writer sees its own write immediately (read-your-writes).
  EXPECT_NE(Fingerprint(service.Query(*writer, kProbeFql)), before);
  EXPECT_GT(*service.SessionGeneration(*writer), *gen_before);

  // REFRESH repins the reader to the current state.
  ASSERT_TRUE(service.Refresh(*reader).ok());
  EXPECT_NE(Fingerprint(service.Query(*reader, kProbeFql)), before);
  EXPECT_EQ(*service.SessionGeneration(*reader),
            *service.SessionGeneration(*writer));
  EXPECT_EQ(service.stats().refreshes, 1u);
  EXPECT_EQ(service.stats().mutations, 1u);
}

TEST_F(ServiceTest, EveryMutationKindRepinsTheMutator) {
  QueryService service(system_.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());
  uint64_t gen = *service.SessionGeneration(*sid);

  ASSERT_TRUE(service.AddFile(*sid, "c.bib", Doc(33)).ok());
  EXPECT_GT(*service.SessionGeneration(*sid), gen);
  gen = *service.SessionGeneration(*sid);
  ASSERT_TRUE(service.UpdateFile(*sid, "c.bib", Doc(44)).ok());
  EXPECT_GT(*service.SessionGeneration(*sid), gen);
  gen = *service.SessionGeneration(*sid);
  ASSERT_TRUE(service.RemoveFile(*sid, "c.bib").ok());
  EXPECT_GT(*service.SessionGeneration(*sid), gen);
  ASSERT_TRUE(service.Compact(*sid).ok());
  EXPECT_EQ(service.stats().mutations, 4u);

  // Mutation failures surface the engine's status untouched.
  EXPECT_TRUE(service.RemoveFile(*sid, "no-such.bib").IsNotFound());
}

TEST_F(ServiceTest, AdmissionControlRejectsWhenQueueIsFull) {
  ServiceOptions options;
  options.workers = 1;
  options.max_queued = 1;
  QueryService service(system_.get(), options);
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());

  // Occupy the only worker: the first query's completion callback
  // blocks until released, so the second submission sits queued and the
  // third must be refused at the door.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> running;
  Status first = service.SubmitQuery(
      *sid, kProbeFql, {}, [&, released](Result<QueryResult>) {
        running.set_value();
        released.wait();
      });
  ASSERT_TRUE(first.ok());
  running.get_future().wait();

  Status second = service.SubmitQuery(*sid, kProbeFql, {},
                                      [](Result<QueryResult>) {});
  EXPECT_TRUE(second.ok());

  Status third = service.SubmitQuery(*sid, kProbeFql, {},
                                     [](Result<QueryResult>) {});
  EXPECT_TRUE(third.IsUnavailable()) << third.ToString();
  EXPECT_EQ(service.stats().queries_rejected, 1u);

  release.set_value();
  service.Shutdown();
  EXPECT_EQ(service.stats().queries_executed, 2u);
}

TEST_F(ServiceTest, ServiceLimitsClampSessionOptions) {
  ServiceOptions options;
  options.limits.max_regions = 1;  // forces the kAuto degradation ladder
  QueryService service(system_.get(), options);
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());

  // The session asked for unlimited regions; the service ceiling still
  // applies (visible as the ladder's degradation note).
  auto r = service.Query(*sid, kProbeFql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool degraded = false;
  for (const std::string& note : r->stats.notes) {
    degraded = degraded || note.find("degraded to") != std::string::npos;
  }
  EXPECT_TRUE(degraded) << "service max_regions ceiling was not applied";

  // A session may ask for *less* than the ceiling but never more: a
  // pre-cancelled caller token must also survive the clamp.
  QueryOptions own;
  own.cancel = std::make_shared<CancelToken>();
  own.cancel->Cancel();
  auto cancelled = service.Query(*sid, kProbeFql, own);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled());
  EXPECT_EQ(service.stats().queries_failed, 1u);
}

TEST_F(ServiceTest, CancelActiveHitsOnlyInFlightQueries) {
  QueryService service(system_.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.CancelActive(*sid).ok());
  // Queries submitted after the cancel carry a fresh token.
  auto r = service.Query(*sid, kProbeFql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(ServiceTest, SubmitAfterShutdownIsUnavailable) {
  QueryService service(system_.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());
  service.Shutdown();
  service.Shutdown();  // idempotent
  Status s = service.SubmitQuery(*sid, kProbeFql, {},
                                 [](Result<QueryResult>) {});
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST_F(ServiceTest, BadQueriesFailWithoutPoisoningTheSession) {
  QueryService service(system_.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());
  auto bad = service.Query(*sid, "SELECT FROM nonsense !!");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(service.stats().queries_failed, 1u);
  auto good = service.Query(*sid, kProbeFql);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

}  // namespace
}  // namespace qof
