// Concurrency stress battery for the server subsystem — the CI
// `server-tsan` leg builds these under -fsanitize=thread, so each test
// maximizes cross-thread interleavings rather than asserting much:
// readers race mutators and compaction, snapshots pin/unpin while state
// is cloned and reclaimed, and cancellation arrives from foreign
// threads mid-query. Functional invariants (isolation, accounting) are
// asserted where they are cheap to check.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/server/service.h"

namespace qof {
namespace {

constexpr const char* kProbeFql =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::string Doc(uint32_t seed, int refs = 10) {
  BibtexGenOptions gen;
  gen.num_references = refs;
  gen.seed = seed;
  gen.probe_author_rate = 0.2;
  return GenerateBibtex(gen);
}

std::string Fingerprint(const Result<QueryResult>& r) {
  if (!r.ok()) return "error:" + r.status().ToString();
  std::string out;
  for (const Region& region : r->regions) {
    out += std::to_string(region.start) + "-" +
           std::to_string(region.end) + ";";
  }
  return out;
}

std::unique_ptr<FileQuerySystem> MakeSystem() {
  auto schema = BibtexSchema();
  EXPECT_TRUE(schema.ok());
  auto system = std::make_unique<FileQuerySystem>(*schema);
  EXPECT_TRUE(system->AddFile("a.bib", Doc(11)).ok());
  EXPECT_TRUE(system->AddFile("b.bib", Doc(22)).ok());
  system->SetCacheOptions(CacheOptions::Enabled());
  EXPECT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());
  return system;
}

TEST(ServerStress, ReadersRaceMutatorsAndCompaction) {
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  QueryService service(system.get(), options);

  // A frozen session pinned before the storm: its answer must be
  // byte-identical throughout, whatever the interleaving.
  auto frozen = service.OpenSession();
  ASSERT_TRUE(frozen.ok());
  std::string frozen_answer = Fingerprint(service.Query(*frozen, kProbeFql));

  constexpr int kReaders = 3;
  constexpr int kOpsPerReader = 40;
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&, reader] {
      auto sid = service.OpenSession();
      if (!sid.ok()) { ++unexpected; return; }
      std::string pinned = Fingerprint(service.Query(*sid, kProbeFql));
      for (int op = 0; op < kOpsPerReader; ++op) {
        if (op % 10 == 9) {
          // Repin and re-baseline: repeatable reads restart here.
          if (!service.Refresh(*sid).ok()) ++unexpected;
          pinned = Fingerprint(service.Query(*sid, kProbeFql));
          continue;
        }
        std::string got = Fingerprint(service.Query(*sid, kProbeFql));
        if (got != pinned) ++unexpected;  // isolation violated
      }
      if (!service.CloseSession(*sid).ok()) ++unexpected;
    });
  }
  threads.emplace_back([&] {  // mutator
    auto sid = service.OpenSession();
    if (!sid.ok()) { ++unexpected; return; }
    for (uint32_t round = 0; round < 25; ++round) {
      Status s = round % 8 == 7
                     ? service.Compact(*sid)
                     : service.UpdateFile(*sid, "b.bib", Doc(100 + round));
      if (!s.ok()) ++unexpected;
    }
    if (!service.CloseSession(*sid).ok()) ++unexpected;
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(Fingerprint(service.Query(*frozen, kProbeFql)), frozen_answer)
      << "frozen session diverged during the storm";
  ASSERT_TRUE(service.CloseSession(*frozen).ok());
  EXPECT_EQ(service.stats().sessions_open, 0u);
  EXPECT_EQ(service.stats().queries_failed, 0u);
}

TEST(ServerStress, SnapshotPinUnpinRacesReclamation) {
  // Engine-level: snapshots acquired and dropped from several threads
  // while a mutator forces copy-on-write clones and epoch advances —
  // reclamation must never free state a live pin still reads.
  auto system = MakeSystem();
  std::atomic<uint64_t> unexpected{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> pinners;
  for (int t = 0; t < 3; ++t) {
    pinners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = system->AcquireSnapshot();
        if (!snapshot.ok()) { ++unexpected; continue; }
        std::string first =
            Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql));
        std::string second =
            Fingerprint(system->ExecuteOnSnapshot(**snapshot, kProbeFql));
        if (first != second) ++unexpected;
        if (first.rfind("error:", 0) == 0) ++unexpected;
      }
    });
  }
  for (uint32_t round = 0; round < 30; ++round) {
    Status s = round % 10 == 9
                   ? system->CompactIndexes()
                   : system->UpdateFile("a.bib", Doc(200 + round));
    if (!s.ok()) ++unexpected;
  }
  stop.store(true);
  for (std::thread& t : pinners) t.join();
  EXPECT_EQ(unexpected.load(), 0u);
}

TEST(ServerStress, CancellationFromForeignThreads) {
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  QueryService service(system.get(), options);
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());

  std::atomic<uint64_t> bad{0};
  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!service.CancelActive(*sid).ok()) ++bad;
      std::this_thread::yield();
    }
  });
  for (int op = 0; op < 60; ++op) {
    auto r = service.Query(*sid, kProbeFql);
    // Either outcome is legal; anything else is a bug.
    if (!r.ok() && !r.status().IsCancelled()) ++bad;
  }
  stop.store(true);
  canceller.join();
  EXPECT_EQ(bad.load(), 0u);
  // The session survives any number of cancellations.
  (void)service.CancelActive(*sid);
  auto last = service.Query(*sid, kProbeFql);
  EXPECT_TRUE(last.ok()) << last.status().ToString();
}

TEST(ServerStress, ShutdownDrainsEveryAcceptedQuery) {
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  options.max_queued = 0;  // unbounded: all submissions are accepted
  QueryService service(system.get(), options);
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());

  std::atomic<uint64_t> completed{0};
  constexpr int kSubmitted = 50;
  for (int op = 0; op < kSubmitted; ++op) {
    ASSERT_TRUE(service
                    .SubmitQuery(*sid, kProbeFql, {},
                                 [&](Result<QueryResult> r) {
                                   if (r.ok()) ++completed;
                                 })
                    .ok());
  }
  service.Shutdown();  // runs every accepted task to completion
  EXPECT_EQ(completed.load(), static_cast<uint64_t>(kSubmitted));
  EXPECT_EQ(service.stats().queries_executed,
            static_cast<uint64_t>(kSubmitted));
}

TEST(ServerStress, ConcurrentSessionChurn) {
  // Sessions open, query, mutate, and close from many threads at once;
  // the id space and the session map must stay consistent.
  auto system = MakeSystem();
  QueryService service(system.get());
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        auto sid = service.OpenSession();
        if (!sid.ok()) { ++unexpected; continue; }
        if (!service.Query(*sid, kProbeFql).ok()) ++unexpected;
        if (round % 3 == 2) {
          std::string name = "scratch" + std::to_string(t) + ".bib";
          if (!service
                   .AddFile(*sid, name, Doc(300 + t * 100 + round))
                   .ok() ||
              !service.RemoveFile(*sid, name).ok()) {
            ++unexpected;
          }
        }
        if (!service.CloseSession(*sid).ok()) ++unexpected;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(service.stats().sessions_open, 0u);
}

}  // namespace
}  // namespace qof
