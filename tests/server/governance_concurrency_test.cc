// Governance under concurrency: per-session budgets stay independent
// when M sessions share K workers, and the kAuto degradation ladder
// works unchanged inside a worker thread on a pinned snapshot (the
// ladder was built for the live path in PR 4; the service must not
// change its semantics).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/server/service.h"

namespace qof {
namespace {

constexpr const char* kProbeFql =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::unique_ptr<FileQuerySystem> MakeSystem() {
  auto schema = BibtexSchema();
  EXPECT_TRUE(schema.ok());
  auto system = std::make_unique<FileQuerySystem>(*schema);
  for (int doc = 0; doc < 3; ++doc) {
    BibtexGenOptions gen;
    gen.num_references = 40;
    gen.seed = 500 + doc;
    gen.probe_author_rate = 0.15;
    EXPECT_TRUE(system
                    ->AddFile("doc" + std::to_string(doc) + ".bib",
                              GenerateBibtex(gen))
                    .ok());
  }
  EXPECT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());
  return system;
}

bool HasDegradationNote(const QueryResult& result) {
  for (const std::string& note : result.stats.notes) {
    if (note.find("degraded to") != std::string::npos) return true;
  }
  return false;
}

TEST(GovernanceConcurrency, DegradationLadderRunsInWorkerThreads) {
  auto system = MakeSystem();
  QueryService service(system.get());
  auto sid = service.OpenSession();
  ASSERT_TRUE(sid.ok());

  QueryOptions tight;
  tight.max_regions = 1;
  auto degraded = service.Query(*sid, kProbeFql, tight);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(HasDegradationNote(*degraded))
      << "ladder did not engage on the snapshot path";

  // Same query, no budget: no ladder, same answer.
  auto free = service.Query(*sid, kProbeFql);
  ASSERT_TRUE(free.ok());
  EXPECT_FALSE(HasDegradationNote(*free));
  EXPECT_EQ(degraded->regions, free->regions);
}

TEST(GovernanceConcurrency, PerSessionBudgetsAreIndependent) {
  // Three sessions with three different governance postures share two
  // workers concurrently; each must get exactly its own treatment —
  // budgets and cancellation attach to the query, never to the worker.
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  QueryService service(system.get(), options);

  auto tight_sid = service.OpenSession();
  auto cancelled_sid = service.OpenSession();
  auto free_sid = service.OpenSession();
  ASSERT_TRUE(tight_sid.ok() && cancelled_sid.ok() && free_sid.ok());

  constexpr int kRounds = 25;
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds; ++i) {
      QueryOptions tight;
      tight.max_regions = 1;
      auto r = service.Query(*tight_sid, kProbeFql, tight);
      if (!r.ok() || !HasDegradationNote(*r)) ++violations;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds; ++i) {
      QueryOptions doomed;
      doomed.cancel = std::make_shared<CancelToken>();
      doomed.cancel->Cancel();
      auto r = service.Query(*cancelled_sid, kProbeFql, doomed);
      if (r.ok() || !r.status().IsCancelled()) ++violations;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kRounds; ++i) {
      auto r = service.Query(*free_sid, kProbeFql);
      // The free session must see neither its neighbors' budgets nor
      // their cancellations.
      if (!r.ok() || HasDegradationNote(*r)) ++violations;
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0u);
  auto stats = service.stats();
  EXPECT_EQ(stats.queries_failed, static_cast<uint64_t>(kRounds))
      << "only the pre-cancelled session's queries may fail";
  EXPECT_EQ(stats.queries_executed, static_cast<uint64_t>(3 * kRounds));
}

TEST(GovernanceConcurrency, CancelActiveLeavesOtherSessionsRunning) {
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  QueryService service(system.get(), options);
  auto victim = service.OpenSession();
  auto bystander = service.OpenSession();
  ASSERT_TRUE(victim.ok() && bystander.ok());

  std::atomic<uint64_t> bystander_failures{0};
  std::atomic<bool> stop{false};
  std::thread bystander_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!service.Query(*bystander, kProbeFql).ok()) {
        ++bystander_failures;
      }
    }
  });
  for (int i = 0; i < 30; ++i) {
    auto r = service.Query(*victim, kProbeFql);
    if (i % 3 == 0) ASSERT_TRUE(service.CancelActive(*victim).ok());
    if (!r.ok()) EXPECT_TRUE(r.status().IsCancelled());
  }
  stop.store(true);
  bystander_thread.join();
  EXPECT_EQ(bystander_failures.load(), 0u)
      << "cancelling one session cancelled another's queries";
}

TEST(GovernanceConcurrency, ServiceCeilingAppliesAcrossAllSessions) {
  auto system = MakeSystem();
  ServiceOptions options;
  options.workers = 2;
  options.limits.max_regions = 1;
  QueryService service(system.get(), options);

  std::vector<std::thread> threads;
  std::atomic<uint64_t> missing_clamp{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      auto sid = service.OpenSession();
      if (!sid.ok()) { ++missing_clamp; return; }
      for (int i = 0; i < 10; ++i) {
        auto r = service.Query(*sid, kProbeFql);
        if (!r.ok() || !HasDegradationNote(*r)) ++missing_clamp;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(missing_clamp.load(), 0u);
}

}  // namespace
}  // namespace qof
