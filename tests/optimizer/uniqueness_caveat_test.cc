// Documents (as an executable fact) the Theorem 3.6 uniqueness caveat
// described in DESIGN.md: on RIGs where two overlapping drop-middle
// rewrites apply, the rewrite system has two distinct normal forms. Both
// are equivalent to the input — soundness holds — and the optimizer picks
// one deterministically.

#include <random>

#include <gtest/gtest.h>

#include "qof/algebra/evaluator.h"
#include "qof/algebra/parser.h"
#include "qof/optimizer/optimizer.h"

namespace qof {
namespace {

// Edges: A->B->C->D plus a bypass A->X->D.
//  - every path A ⇝ C passes through B   (drop B in A⊃B⊃C is legal)
//  - every path B ⇝ D passes through C   (drop C in B⊃C⊃D is legal)
//  - but not every path A ⇝ D passes through B or C (the bypass), so
//    after either drop the other middle cannot be dropped.
Rig CaveatRig() {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "D");
  g.AddEdge("A", "X");
  g.AddEdge("X", "D");
  return g;
}

InclusionChain Chain(const char* text) {
  auto expr = ParseRegionExpr(text);
  EXPECT_TRUE(expr.ok());
  auto chain = InclusionChain::FromExpr(**expr);
  EXPECT_TRUE(chain.ok());
  return chain.ok() ? *chain : InclusionChain{};
}

TEST(UniquenessCaveatTest, TwoDistinctNormalFormsExist) {
  Rig g = CaveatRig();
  ChainOptimizer opt(&g);
  InclusionChain original = Chain("A > B > C > D");

  // Both single drops are applicable...
  auto rewrites = opt.ApplicableRewrites(original);
  ASSERT_EQ(rewrites.size(), 2u);
  InclusionChain drop_b = opt.ApplyRewrite(original, rewrites[0]);
  InclusionChain drop_c = opt.ApplyRewrite(original, rewrites[1]);
  EXPECT_EQ(drop_b.ToString(), "A > C > D");
  EXPECT_EQ(drop_c.ToString(), "A > B > D");
  // ...and each result is a fixpoint: two distinct normal forms.
  EXPECT_TRUE(opt.ApplicableRewrites(drop_b).empty());
  EXPECT_TRUE(opt.ApplicableRewrites(drop_c).empty());
  EXPECT_FALSE(drop_b == drop_c);

  // The optimizer is deterministic: left-most drop first.
  auto outcome = opt.Optimize(original);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->chain.ToString(), "A > C > D");
}

TEST(UniquenessCaveatTest, BothNormalFormsAreEquivalent) {
  // Soundness is what matters: on every instance conforming to the RIG,
  // all three expressions agree.
  Rig g = CaveatRig();
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    // Random conforming instance: chains A ⊃ B ⊃ C ⊃ D and A ⊃ X ⊃ D
    // instantiated at random offsets.
    std::map<std::string, std::vector<Region>> inst;
    std::uniform_int_distribution<int> count(0, 4);
    uint64_t base = 0;
    int n = count(rng) + 1;
    std::bernoulli_distribution with_d(0.7);
    for (int i = 0; i < n; ++i) {
      inst["A"].push_back({base, base + 100});
      if (with_d(rng)) {
        inst["B"].push_back({base + 2, base + 60});
        inst["C"].push_back({base + 4, base + 40});
        if (with_d(rng)) inst["D"].push_back({base + 6, base + 20});
      }
      if (with_d(rng)) {
        inst["X"].push_back({base + 62, base + 98});
        if (with_d(rng)) inst["D"].push_back({base + 64, base + 90});
      }
      base += 128;
    }
    RegionIndex index;
    for (const char* name : {"A", "B", "C", "D", "X"}) {
      auto it = inst.find(name);
      index.Add(name, it == inst.end()
                          ? RegionSet()
                          : RegionSet::FromUnsorted(it->second));
    }
    ExprEvaluator eval(&index, nullptr, nullptr);
    auto original = eval.Evaluate(**ParseRegionExpr("A > B > C > D"));
    auto form1 = eval.Evaluate(**ParseRegionExpr("A > C > D"));
    auto form2 = eval.Evaluate(**ParseRegionExpr("A > B > D"));
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(form1.ok());
    ASSERT_TRUE(form2.ok());
    EXPECT_EQ(*original, *form1);
    EXPECT_EQ(*original, *form2);
  }
}

}  // namespace
}  // namespace qof
