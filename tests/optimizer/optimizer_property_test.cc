// Property tests for Theorem 3.6: on randomized RIGs and randomized
// conforming instances, the optimized chain is (a) semantically equivalent
// to the original, (b) never more expensive, (c) a fixpoint. Confluence of
// the rewrite system is exercised on the BibTeX RIG by applying rewrites
// in random orders.

#include <functional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qof/algebra/evaluator.h"
#include "qof/optimizer/optimizer.h"

namespace qof {
namespace {

Rig BibRig() {
  Rig g;
  g.AddEdge("Reference", "Key");
  g.AddEdge("Reference", "Title");
  g.AddEdge("Reference", "Authors");
  g.AddEdge("Reference", "Editors");
  g.AddEdge("Authors", "Name");
  g.AddEdge("Editors", "Name");
  g.AddEdge("Name", "First_Name");
  g.AddEdge("Name", "Last_Name");
  return g;
}

Rig RandomDag(std::mt19937& rng, int num_nodes, double edge_prob) {
  Rig g;
  for (int i = 0; i < num_nodes; ++i) g.AddNode("N" + std::to_string(i));
  std::bernoulli_distribution coin(edge_prob);
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = i + 1; j < num_nodes; ++j) {
      if (coin(rng)) {
        g.AddEdge(static_cast<Rig::NodeId>(i),
                  static_cast<Rig::NodeId>(j));
      }
    }
  }
  return g;
}

// Generates a random instance satisfying the RIG: regions of each node are
// carved strictly inside their parent's span, so every *direct* inclusion
// in the instance corresponds to a RIG edge (Def. 3.1).
RegionIndex RandomInstance(const Rig& g, std::mt19937& rng,
                           uint64_t root_span) {
  std::map<std::string, std::vector<Region>> inst;
  std::function<void(Rig::NodeId, uint64_t, uint64_t, int)> build =
      [&](Rig::NodeId node, uint64_t lo, uint64_t hi, int depth) {
        inst[g.name(node)].push_back({lo, hi});
        if (depth <= 0 || hi - lo < 10) return;
        const std::vector<Rig::NodeId>& out = g.out_edges(node);
        if (out.empty()) return;
        std::uniform_int_distribution<int> num_children(0, 3);
        int k = num_children(rng);
        if (k == 0) return;
        uint64_t width = (hi - lo - 2) / static_cast<uint64_t>(k);
        if (width < 4) return;
        std::uniform_int_distribution<size_t> pick(0, out.size() - 1);
        for (int c = 0; c < k; ++c) {
          uint64_t a = lo + 1 + static_cast<uint64_t>(c) * width;
          uint64_t b = a + width - 2;
          build(out[pick(rng)], a, b, depth - 1);
        }
      };
  // Instantiate every node as a root a few times so that sparse nodes
  // still get members.
  uint64_t base = 0;
  for (Rig::NodeId n = 0; n < static_cast<Rig::NodeId>(g.num_nodes());
       ++n) {
    build(n, base, base + root_span, 5);
    base += root_span + 3;
  }
  RegionIndex index;
  for (auto& [name, regions] : inst) {
    index.Add(name, RegionSet::FromUnsorted(std::move(regions)));
  }
  // Ensure every node has an (empty) instance so evaluation never 404s.
  for (Rig::NodeId n = 0; n < static_cast<Rig::NodeId>(g.num_nodes());
       ++n) {
    if (!index.Has(g.name(n))) index.Add(g.name(n), RegionSet());
  }
  return index;
}

// A random inclusion chain: usually a downward walk in the RIG (so it has
// a chance of being non-trivial), sometimes a fully random name sequence.
InclusionChain RandomChain(const Rig& g, std::mt19937& rng) {
  InclusionChain chain;
  std::bernoulli_distribution contained(0.3);
  std::bernoulli_distribution random_names(0.2);
  std::bernoulli_distribution direct(0.5);
  std::uniform_int_distribution<int> len_dist(2, 5);
  std::uniform_int_distribution<size_t> node_dist(0, g.num_nodes() - 1);
  int len = len_dist(rng);

  std::vector<std::string> names;
  if (random_names(rng)) {
    for (int i = 0; i < len; ++i) {
      names.push_back(g.name(static_cast<Rig::NodeId>(node_dist(rng))));
    }
  } else {
    Rig::NodeId cur = static_cast<Rig::NodeId>(node_dist(rng));
    names.push_back(g.name(cur));
    for (int i = 1; i < len; ++i) {
      const std::vector<Rig::NodeId>& out = g.out_edges(cur);
      if (out.empty()) break;
      std::uniform_int_distribution<size_t> pick(0, out.size() - 1);
      cur = out[pick(rng)];
      names.push_back(g.name(cur));
    }
  }
  chain.orientation = contained(rng)
                          ? InclusionChain::Orientation::kContained
                          : InclusionChain::Orientation::kContains;
  if (chain.orientation == InclusionChain::Orientation::kContained) {
    std::reverse(names.begin(), names.end());
  }
  chain.names = std::move(names);
  chain.sels.resize(chain.names.size());
  for (size_t i = 0; i + 1 < chain.names.size(); ++i) {
    chain.direct.push_back(direct(rng));
  }
  return chain;
}

class OptimizerPropertyTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Range(0u, 20u));

TEST_P(OptimizerPropertyTest, OptimizedChainIsEquivalentOnInstances) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    Rig g = RandomDag(rng, 8, 0.3);
    ChainOptimizer opt(&g);
    RegionIndex index = RandomInstance(g, rng, 700);
    ExprEvaluator eval(&index, nullptr, nullptr);
    for (int q = 0; q < 12; ++q) {
      InclusionChain chain = RandomChain(g, rng);
      auto outcome = opt.Optimize(chain);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      auto original = eval.Evaluate(*chain.ToExpr());
      ASSERT_TRUE(original.ok()) << original.status().ToString();
      if (outcome->trivially_empty) {
        EXPECT_TRUE(original->empty())
            << "chain declared trivial but evaluates non-empty: "
            << chain.ToString();
        continue;
      }
      auto optimized = eval.Evaluate(*outcome->chain.ToExpr());
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      EXPECT_EQ(*original, *optimized)
          << "chain: " << chain.ToString()
          << "\noptimized: " << outcome->chain.ToString();
    }
  }
}

TEST_P(OptimizerPropertyTest, OptimizationNeverIncreasesCost) {
  std::mt19937 rng(GetParam() + 100);
  Rig g = RandomDag(rng, 10, 0.25);
  ChainOptimizer opt(&g);
  for (int q = 0; q < 50; ++q) {
    InclusionChain chain = RandomChain(g, rng);
    auto outcome = opt.Optimize(chain);
    ASSERT_TRUE(outcome.ok());
    if (outcome->trivially_empty) continue;
    EXPECT_LE(outcome->chain.length(), chain.length());
    EXPECT_LE(outcome->chain.CountDirectOps(), chain.CountDirectOps());
  }
}

TEST_P(OptimizerPropertyTest, NormalFormIsFixpoint) {
  std::mt19937 rng(GetParam() + 200);
  Rig g = RandomDag(rng, 10, 0.25);
  ChainOptimizer opt(&g);
  for (int q = 0; q < 30; ++q) {
    InclusionChain chain = RandomChain(g, rng);
    auto outcome = opt.Optimize(chain);
    ASSERT_TRUE(outcome.ok());
    if (outcome->trivially_empty) continue;
    EXPECT_TRUE(opt.ApplicableRewrites(outcome->chain).empty())
        << outcome->chain.ToString();
  }
}

// Random application orders reach the same normal form on the BibTeX RIG
// (finite Church-Rosser, Thm. 3.6(i) via [Set74]).
TEST_P(OptimizerPropertyTest, ConfluenceOnBibRig) {
  std::mt19937 rng(GetParam() + 300);
  Rig g = BibRig();
  ChainOptimizer opt(&g);
  for (int q = 0; q < 25; ++q) {
    InclusionChain chain = RandomChain(g, rng);
    auto outcome = opt.Optimize(chain);
    ASSERT_TRUE(outcome.ok());
    if (outcome->trivially_empty) continue;
    // Random-order rewriting.
    InclusionChain current = chain;
    while (true) {
      auto rewrites = opt.ApplicableRewrites(current);
      if (rewrites.empty()) break;
      std::uniform_int_distribution<size_t> pick(0, rewrites.size() - 1);
      current = opt.ApplyRewrite(current, rewrites[pick(rng)]);
    }
    EXPECT_EQ(current, outcome->chain)
        << "original: " << chain.ToString()
        << "\nrandom-order: " << current.ToString()
        << "\ncanonical: " << outcome->chain.ToString();
  }
}

// Trivially-empty detection agrees with evaluation on conforming
// instances.
TEST_P(OptimizerPropertyTest, TrivialityIsSound) {
  std::mt19937 rng(GetParam() + 400);
  for (int round = 0; round < 5; ++round) {
    Rig g = RandomDag(rng, 7, 0.35);
    ChainOptimizer opt(&g);
    RegionIndex index = RandomInstance(g, rng, 600);
    ExprEvaluator eval(&index, nullptr, nullptr);
    for (int q = 0; q < 20; ++q) {
      InclusionChain chain = RandomChain(g, rng);
      if (!opt.IsTriviallyEmpty(chain)) continue;
      auto result = eval.Evaluate(*chain.ToExpr());
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->empty()) << chain.ToString();
    }
  }
}

}  // namespace
}  // namespace qof
