#include "qof/optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"

namespace qof {
namespace {

Rig BibRig() {
  Rig g;
  g.AddEdge("Reference", "Key");
  g.AddEdge("Reference", "Title");
  g.AddEdge("Reference", "Authors");
  g.AddEdge("Reference", "Editors");
  g.AddEdge("Authors", "Name");
  g.AddEdge("Editors", "Name");
  g.AddEdge("Name", "First_Name");
  g.AddEdge("Name", "Last_Name");
  return g;
}

InclusionChain Chain(std::string_view text) {
  auto expr = ParseRegionExpr(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto chain = InclusionChain::FromExpr(**expr);
  EXPECT_TRUE(chain.ok()) << chain.status().ToString();
  return chain.ok() ? *chain : InclusionChain{};
}

std::string Optimized(const Rig& g, std::string_view text) {
  ChainOptimizer opt(&g);
  auto out = opt.Optimize(Chain(text));
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "";
  if (out->trivially_empty) return "<empty>";
  return out->chain.ToString();
}

// The paper's flagship rewrite (§3.2): e1 → e2.
TEST(OptimizerTest, PaperE1BecomesE2) {
  Rig g = BibRig();
  EXPECT_EQ(
      Optimized(
          g, "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"),
      "Reference > Authors > sigma(\"Chang\", Last_Name)");
}

// §5.2: the projection chain optimizes symmetrically.
TEST(OptimizerTest, PaperProjectionChain) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Last_Name << Name << Authors << Reference"),
            "Last_Name < Authors < Reference");
}

// Authors cannot be dropped: Reference reaches Last_Name via Editors too.
TEST(OptimizerTest, AuthorsTestSurvives) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Reference > Authors > Last_Name"),
            "Reference > Authors > Last_Name");
  // But Name can be dropped: every Authors-to-Last_Name path passes it.
  EXPECT_EQ(Optimized(g, "Reference > Authors > Name > Last_Name"),
            "Reference > Authors > Last_Name");
}

// Editors-side chain gets the same treatment.
TEST(OptimizerTest, EditorsChain) {
  Rig g = BibRig();
  EXPECT_EQ(
      Optimized(
          g, "Reference >> Editors >> Name >> sigma(\"Chang\", Last_Name)"),
      "Reference > Editors > sigma(\"Chang\", Last_Name)");
}

// Prop. 3.3(i): a ⊃d over a missing edge is trivially empty.
TEST(OptimizerTest, TrivialDirectEdge) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Reference >> Last_Name"), "<empty>");
  EXPECT_EQ(Optimized(g, "Authors >> Last_Name"), "<empty>");
}

// Prop. 3.3(ii): a ⊃ with no RIG path is trivially empty
// (§3.2's e3 = Reference ⊃ Title ⊃ Last_Name).
TEST(OptimizerTest, TrivialNoPath) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Reference > Title > Last_Name"), "<empty>");
  EXPECT_EQ(Optimized(g, "Last_Name > Reference"), "<empty>");
  EXPECT_EQ(Optimized(g, "Key > Title"), "<empty>");
}

TEST(OptimizerTest, UnknownNameIsTrivial) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Reference > Nonexistent"), "<empty>");
}

// The rightmost ⊃d may relax by the every-path-starts-with-edge rule even
// when the edge is not the only path (cycle below the target).
TEST(OptimizerTest, RightmostSpecialCase) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "B");  // cycle B -> C -> B
  // Interior position: A >> B inside A >> B >> C cannot relax by the
  // only-path rule (edge extends via the cycle)... but it is rightmost in
  // "A >> B" alone:
  EXPECT_EQ(Optimized(g, "A >> B"), "A > B");
  // As an interior operator it must stay direct.
  EXPECT_EQ(Optimized(g, "A >> B >> C"), "A >> B > C");
}

// For ⊂-chains the rightmost special case is not applied (see
// optimizer.cc); only the only-path rule fires.
TEST(OptimizerTest, ContainedChainNoRightmostShortcut) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "B");
  // Chain B << A: edge (A,B) with every path starting with it, but B is on
  // a cycle, so the only-path rule fails and no relaxation happens.
  EXPECT_EQ(Optimized(g, "B << A"), "B << A");
}

TEST(OptimizerTest, SelectionBlocksDrop) {
  Rig g = BibRig();
  // Name carries a selection: it cannot be dropped even though every
  // Authors-to-Last_Name path passes through it.
  EXPECT_EQ(
      Optimized(
          g,
          "Reference > Authors > contains(\"Chang\", Name) > Last_Name"),
      "Reference > Authors > contains(\"Chang\", Name) > Last_Name");
}

TEST(OptimizerTest, LongChainCollapses) {
  // A linear grammar: A -> B -> C -> D -> E, all only-paths.
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "D");
  g.AddEdge("D", "E");
  EXPECT_EQ(Optimized(g, "A >> B >> C >> D >> sigma(\"w\", E)"),
            "A > sigma(\"w\", E)");
}

TEST(OptimizerTest, AppliedRewritesAreReported) {
  Rig g = BibRig();
  ChainOptimizer opt(&g);
  auto out = opt.Optimize(
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(out.ok());
  // 3 relaxations + 1 drop.
  EXPECT_EQ(out->applied.size(), 4u);
  EXPECT_EQ(out->applied[0].kind, ChainRewrite::Kind::kRelaxDirect);
  EXPECT_EQ(out->applied[3].kind, ChainRewrite::Kind::kDropMiddle);
  EXPECT_FALSE(out->applied[3].ToString().empty());
}

TEST(OptimizerTest, SingleNameChainUntouched) {
  Rig g = BibRig();
  EXPECT_EQ(Optimized(g, "Reference"), "Reference");
  EXPECT_EQ(Optimized(g, "sigma(\"Chang\", Last_Name)"),
            "sigma(\"Chang\", Last_Name)");
}

TEST(OptimizerTest, OptimizedFormIsFixpoint) {
  Rig g = BibRig();
  ChainOptimizer opt(&g);
  auto out = opt.Optimize(
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(opt.ApplicableRewrites(out->chain).empty());
  auto again = opt.Optimize(out->chain);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->chain, out->chain);
  EXPECT_TRUE(again->applied.empty());
}

}  // namespace
}  // namespace qof
