#include "qof/text/tokenizer.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

std::vector<std::string> Words(std::string_view text) {
  std::vector<std::string> out;
  for (const WordToken& t : Tokenizer::Tokenize(text)) {
    out.emplace_back(t.text);
  }
  return out;
}

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  EXPECT_EQ(Words("hello world"), (std::vector<std::string>{"hello",
                                                            "world"}));
  EXPECT_EQ(Words("a,b;c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TokenizerTest, EmptyAndNoWordInputs) {
  EXPECT_TRUE(Words("").empty());
  EXPECT_TRUE(Words("  \t\n ;,{}=\"\"").empty());
}

TEST(TokenizerTest, KeepsInnerPunctuationTrimsOuter) {
  // "G. F." style initials keep the inner dot; trailing dots are trimmed.
  EXPECT_EQ(Words("G. F. Corliss"),
            (std::vector<std::string>{"G", "F", "Corliss"}));
  EXPECT_EQ(Words("Philadelphia, Penn.\""),
            (std::vector<std::string>{"Philadelphia", "Penn"}));
  EXPECT_EQ(Words("O'Neil self-test"),
            (std::vector<std::string>{"O'Neil", "self-test"}));
}

TEST(TokenizerTest, OffsetsAreExactSpans) {
  std::string text = "  Chang and Corliss";
  auto toks = Tokenizer::Tokenize(text);
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].start, 2u);
  EXPECT_EQ(toks[0].end, 7u);
  EXPECT_EQ(text.substr(toks[0].start, toks[0].end - toks[0].start),
            "Chang");
  EXPECT_EQ(toks[2].text, "Corliss");
  EXPECT_EQ(toks[2].start, 12u);
}

TEST(TokenizerTest, BaseOffsetShiftsPositions) {
  auto toks = Tokenizer::Tokenize("ab cd", /*base=*/100);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].start, 100u);
  EXPECT_EQ(toks[1].start, 103u);
}

TEST(TokenizerTest, NumbersAreWords) {
  EXPECT_EQ(Words("YEAR = \"1982\""),
            (std::vector<std::string>{"YEAR", "1982"}));
}

TEST(TokenizerTest, ForEachTokenMatchesTokenize) {
  std::string text = "The quick, brown fox; 1994.";
  auto expected = Tokenizer::Tokenize(text, 7);
  std::vector<WordToken> got;
  Tokenizer::ForEachToken(text, 7,
                          [&](const WordToken& t) { got.push_back(t); });
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start, expected[i].start);
    EXPECT_EQ(got[i].end, expected[i].end);
    EXPECT_EQ(got[i].text, expected[i].text);
  }
}

}  // namespace
}  // namespace qof
