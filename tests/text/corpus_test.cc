#include "qof/text/corpus.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(CorpusTest, EmptyCorpus) {
  Corpus c;
  EXPECT_EQ(c.num_documents(), 0u);
  EXPECT_EQ(c.size(), 0u);
}

TEST(CorpusTest, SingleDocumentSpansFromZero) {
  Corpus c;
  auto id = c.AddDocument("a.bib", "hello world");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(c.document_start(0), 0u);
  EXPECT_EQ(c.document_end(0), 11u);
  EXPECT_EQ(c.RawText(0, 5), "hello");
}

TEST(CorpusTest, DocumentsSeparatedByNewline) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("a", "aaa").ok());
  ASSERT_TRUE(c.AddDocument("b", "bbb").ok());
  EXPECT_EQ(c.full_text(), "aaa\nbbb");
  EXPECT_EQ(c.document_start(1), 4u);
  EXPECT_EQ(c.document_end(1), 7u);
}

TEST(CorpusTest, DuplicateNameRejected) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("a", "x").ok());
  auto r = c.AddDocument("a", "y");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(CorpusTest, DocumentAtFindsOwner) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("a", "aaa").ok());
  ASSERT_TRUE(c.AddDocument("b", "bbb").ok());
  auto d0 = c.DocumentAt(2);
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(*d0, 0u);
  auto d1 = c.DocumentAt(5);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, 1u);
  // Position 3 is the separator between the documents.
  EXPECT_FALSE(c.DocumentAt(3).ok());
  EXPECT_FALSE(c.DocumentAt(100).ok());
}

TEST(CorpusTest, ScanAccountsBytesRawDoesNot) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("a", "0123456789").ok());
  EXPECT_EQ(c.bytes_read(), 0u);
  (void)c.RawText(0, 10);
  EXPECT_EQ(c.bytes_read(), 0u);
  EXPECT_EQ(c.ScanText(2, 6), "2345");
  EXPECT_EQ(c.bytes_read(), 4u);
  (void)c.ScanText(0, 10);
  EXPECT_EQ(c.bytes_read(), 14u);
  c.ResetBytesRead();
  EXPECT_EQ(c.bytes_read(), 0u);
}

}  // namespace
}  // namespace qof
