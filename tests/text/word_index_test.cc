#include "qof/text/word_index.h"

#include <gtest/gtest.h>

#include "qof/text/corpus.h"

namespace qof {
namespace {

Corpus MakeCorpus(std::string_view text) {
  Corpus c;
  EXPECT_TRUE(c.AddDocument("doc", text).ok());
  return c;
}

TEST(WordIndexTest, RecordsAllOccurrences) {
  Corpus c = MakeCorpus("the cat and the dog and the bird");
  WordIndex idx = WordIndex::Build(c);
  EXPECT_EQ(idx.Lookup("the").size(), 3u);
  EXPECT_EQ(idx.Lookup("and").size(), 2u);
  EXPECT_EQ(idx.Lookup("cat").size(), 1u);
  EXPECT_TRUE(idx.Lookup("fish").empty());
  EXPECT_EQ(idx.num_distinct_words(), 5u);
  EXPECT_EQ(idx.num_postings(), 8u);
}

TEST(WordIndexTest, PostingsAreSortedStartOffsets) {
  Corpus c = MakeCorpus("ab ab ab");
  WordIndex idx = WordIndex::Build(c);
  auto& p = idx.Lookup("ab");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 3u);
  EXPECT_EQ(p[2], 6u);
}

TEST(WordIndexTest, SpansMultipleDocuments) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("a", "Chang wrote").ok());
  ASSERT_TRUE(c.AddDocument("b", "Chang edited").ok());
  WordIndex idx = WordIndex::Build(c);
  auto& p = idx.Lookup("Chang");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 12u);  // "Chang wrote" (11) + '\n'
}

TEST(WordIndexTest, CaseSensitiveByDefault) {
  Corpus c = MakeCorpus("Chang chang CHANG");
  WordIndex idx = WordIndex::Build(c);
  EXPECT_EQ(idx.Lookup("Chang").size(), 1u);
  EXPECT_EQ(idx.Lookup("chang").size(), 1u);
}

TEST(WordIndexTest, CaseFoldingOption) {
  Corpus c = MakeCorpus("Chang chang CHANG");
  WordIndexOptions opts;
  opts.fold_case = true;
  WordIndex idx = WordIndex::Build(c, opts);
  EXPECT_EQ(idx.Lookup("chang").size(), 3u);
  EXPECT_EQ(idx.Lookup("Chang").size(), 3u);
}

TEST(WordIndexTest, SelectiveTokenFilter) {
  Corpus c = MakeCorpus("aaa bbb aaa ccc");
  WordIndexOptions opts;
  // Index only tokens in the first half of the corpus (selective word
  // indexing, paper §2).
  opts.token_filter = [](const WordToken& t) { return t.start < 8; };
  WordIndex idx = WordIndex::Build(c, opts);
  EXPECT_EQ(idx.Lookup("aaa").size(), 1u);
  EXPECT_EQ(idx.Lookup("bbb").size(), 1u);
  EXPECT_TRUE(idx.Lookup("ccc").empty());
}

TEST(WordIndexTest, ApproxBytesGrowsWithContent) {
  Corpus small = MakeCorpus("a b");
  Corpus big = MakeCorpus("alpha beta gamma delta epsilon zeta eta theta");
  EXPECT_LT(WordIndex::Build(small).ApproxBytes(),
            WordIndex::Build(big).ApproxBytes());
}

}  // namespace
}  // namespace qof
