// ExecContext unit coverage: arming, the checkpoint order, budgets, the
// stop flag, and fallback re-arming (see DESIGN.md, "Resource governance
// & failure model").

#include "qof/exec/exec_context.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(ExecContextTest, DefaultAndUnlimitedOptionsAreInactive) {
  ExecContext inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_TRUE(inactive.Check().ok());
  EXPECT_TRUE(inactive.ChargeRegions(1u << 30).ok());

  QueryOptions unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  ExecContext from_options(unlimited);
  EXPECT_FALSE(from_options.active());
  EXPECT_TRUE(from_options.Check().ok());
}

TEST(ExecContextTest, AnyLimitActivates) {
  QueryOptions options;
  options.max_regions = 10;
  EXPECT_FALSE(options.unlimited());
  ExecContext ctx(options);
  EXPECT_TRUE(ctx.active());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, DeadlineTripsAndSetsStopFlag) {
  QueryOptions options;
  options.deadline_ms = 1;
  ExecContext ctx(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status s = ctx.Check();
  ASSERT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_FALSE(s.message().empty());
  EXPECT_TRUE(ctx.stopped());
  EXPECT_TRUE(ctx.stop_flag()->load());
}

TEST(ExecContextTest, CancellationFromAnotherThread) {
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  ExecContext ctx(options);
  EXPECT_TRUE(ctx.Check().ok());
  std::thread canceller([&] { options.cancel->Cancel(); });
  canceller.join();
  Status s = ctx.Check();
  ASSERT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(ctx.stopped());
}

TEST(ExecContextTest, ByteBudgetWatchesTheCounter) {
  QueryOptions options;
  options.max_bytes = 100;
  ExecContext ctx(options);
  std::atomic<uint64_t> scanned{0};
  ctx.set_scanned_bytes_counter(&scanned);
  EXPECT_TRUE(ctx.Check().ok());
  scanned.store(101);
  Status s = ctx.Check();
  ASSERT_TRUE(s.IsBudgetExhausted()) << s.ToString();
  EXPECT_TRUE(ctx.stopped());
  // The byte budget is not the region budget: the fallback ladder must
  // not treat it as degradable.
  EXPECT_FALSE(ctx.regions_exhausted());
}

TEST(ExecContextTest, RegionBudgetAndFallbackReset) {
  QueryOptions options;
  options.max_regions = 10;
  ExecContext ctx(options);
  EXPECT_TRUE(ctx.ChargeRegions(10).ok());
  Status s = ctx.ChargeRegions(1);
  ASSERT_TRUE(s.IsBudgetExhausted()) << s.ToString();
  EXPECT_TRUE(ctx.regions_exhausted());
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.regions_charged(), 11u);

  // A fallback rung starts with a fresh intermediate-result budget and a
  // cleared stop flag; deadline/cancel/byte state would survive.
  ctx.ResetForFallback();
  EXPECT_FALSE(ctx.stopped());
  EXPECT_EQ(ctx.regions_charged(), 0u);
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.ChargeRegions(5).ok());
}

TEST(ExecContextTest, CancellationWinsOverExhaustedBudget) {
  // Check() reports cancel > bytes > regions > deadline, so a cancelled
  // caller sees kCancelled even when budgets also tripped.
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.max_bytes = 1;
  ExecContext ctx(options);
  std::atomic<uint64_t> scanned{999};
  ctx.set_scanned_bytes_counter(&scanned);
  options.cancel->Cancel();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(ExecContextTest, GovernanceErrorPredicate) {
  EXPECT_TRUE(IsGovernanceError(Status::DeadlineExceeded("d")));
  EXPECT_TRUE(IsGovernanceError(Status::Cancelled("c")));
  EXPECT_TRUE(IsGovernanceError(Status::BudgetExhausted("b")));
  EXPECT_FALSE(IsGovernanceError(Status::OK()));
  EXPECT_FALSE(IsGovernanceError(Status::Internal("i")));
  EXPECT_FALSE(IsGovernanceError(Status::NotFound("n")));
}

TEST(ExecContextTest, StopFlagSharedAcrossThreads) {
  // Workers poll stop_flag(); one thread tripping a budget must be
  // visible to the others.
  QueryOptions options;
  options.max_regions = 1;
  ExecContext ctx(options);
  std::thread worker([&] { (void)ctx.ChargeRegions(2); });
  worker.join();
  EXPECT_TRUE(ctx.stop_flag()->load());
  EXPECT_FALSE(ctx.Check().ok());
}

}  // namespace
}  // namespace qof
