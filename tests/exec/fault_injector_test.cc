// FaultInjector unit coverage: deterministic one-shot firing by
// (site, hit), scoped install/restore, and the site registry the fuzzer
// and governance tests enumerate.

#include "qof/exec/fault_injector.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(FaultInjectorTest, RegistryListsEveryNamedSite) {
  const std::vector<std::string>& sites = FaultSites();
  for (const char* site :
       {fault_site::kParseDocument, fault_site::kIndexerBuild,
        fault_site::kIndexIoSerialize, fault_site::kIndexIoDeserialize,
        fault_site::kJournalAppend, fault_site::kJournalReplay,
        fault_site::kMaintainAdd, fault_site::kMaintainUpdate,
        fault_site::kMaintainRemove, fault_site::kMaintainCompact,
        fault_site::kAlgebraEval, fault_site::kTwoPhaseCandidate}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site << " missing from FaultSites()";
  }
  // Stable order: two calls agree (the fuzzer's random-site mode indexes
  // into this list by seed).
  EXPECT_EQ(sites, FaultSites());
}

TEST(FaultInjectorTest, UninstalledSiteIsFree) {
  ASSERT_EQ(FaultInjector::Current(), nullptr);
  EXPECT_TRUE(MaybeInjectFault(fault_site::kParseDocument).ok());
}

TEST(FaultInjectorTest, FiresOnceAtTheArmedHit) {
  ScopedFaultInjector inject({fault_site::kAlgebraEval, 2});
  EXPECT_TRUE(MaybeInjectFault(fault_site::kAlgebraEval).ok());
  EXPECT_FALSE(inject.injector().fired());

  Status s = MaybeInjectFault(fault_site::kAlgebraEval);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  EXPECT_NE(s.message().find(fault_site::kAlgebraEval), std::string::npos);
  EXPECT_TRUE(inject.injector().fired());

  // One-shot: later passes succeed — recovery code runs fault-free.
  EXPECT_TRUE(MaybeInjectFault(fault_site::kAlgebraEval).ok());
}

TEST(FaultInjectorTest, OtherSitesAreRecordedButSucceed) {
  ScopedFaultInjector inject({fault_site::kJournalAppend, 1});
  EXPECT_TRUE(MaybeInjectFault(fault_site::kParseDocument).ok());
  EXPECT_TRUE(MaybeInjectFault(fault_site::kParseDocument).ok());
  EXPECT_FALSE(MaybeInjectFault(fault_site::kJournalAppend).ok());

  uint64_t parse_passes = 0;
  uint64_t append_passes = 0;
  for (const auto& [site, count] : inject.injector().observed()) {
    if (site == fault_site::kParseDocument) parse_passes = count;
    if (site == fault_site::kJournalAppend) append_passes = count;
  }
  EXPECT_EQ(parse_passes, 2u);
  EXPECT_EQ(append_passes, 1u);
}

TEST(FaultInjectorTest, ScopedInstallAndRestore) {
  ASSERT_EQ(FaultInjector::Current(), nullptr);
  {
    ScopedFaultInjector outer({fault_site::kIndexerBuild, 1});
    EXPECT_EQ(FaultInjector::Current(), &outer.injector());
    {
      ScopedFaultInjector inner({fault_site::kMaintainAdd, 1});
      EXPECT_EQ(FaultInjector::Current(), &inner.injector());
      // The inner injector owns the process-wide hook: the outer one's
      // site does not fire.
      EXPECT_TRUE(MaybeInjectFault(fault_site::kIndexerBuild).ok());
      EXPECT_FALSE(MaybeInjectFault(fault_site::kMaintainAdd).ok());
    }
    EXPECT_EQ(FaultInjector::Current(), &outer.injector());
  }
  EXPECT_EQ(FaultInjector::Current(), nullptr);
}

TEST(FaultInjectorTest, RecordOnlySpecNeverFires) {
  ScopedFaultInjector inject({"", 1});
  for (const std::string& site : FaultSites()) {
    EXPECT_TRUE(MaybeInjectFault(site.c_str()).ok()) << site;
  }
  EXPECT_FALSE(inject.injector().fired());
  EXPECT_EQ(inject.injector().observed().size(), FaultSites().size());
}

}  // namespace
}  // namespace qof
