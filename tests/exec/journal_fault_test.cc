// Journal fault tolerance under injected failures: an append that dies
// mid-frame leaves a torn tail ParseJournal detects and discards, and a
// replay aborted mid-record stops at a record boundary and resumes
// cleanly — the crash-recovery story the qof_index CLI depends on.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/indexer.h"
#include "qof/exec/fault_injector.h"
#include "qof/maintain/journal.h"
#include "qof/maintain/maintainer.h"

namespace qof {
namespace {

std::string Ref(const std::string& key, const std::string& author) {
  return "@INCOLLECTION{" + key + ",\n  AUTHOR = \"" + author +
         "\",\n  TITLE = \"T\",\n  BOOKTITLE = \"B\",\n  YEAR = \"1994\",\n"
         "  EDITOR = \"E\",\n  PUBLISHER = \"P\",\n  ADDRESS = \"A\",\n"
         "  PAGES = \"1--2\",\n  REFERRED = \"\",\n  KEYWORDS = \"k\",\n"
         "  ABSTRACT = \"x\"\n}\n";
}

std::vector<JournalRecord> SampleRecords() {
  return {
      {1, JournalOp::kAdd, "d.bib", Ref("RefD", "Z. Chang")},
      {2, JournalOp::kUpdate, "a.bib", Ref("RefA", "Y. Milo")},
      {3, JournalOp::kRemove, "b.bib", ""},
  };
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class JournalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<StructuringSchema>(*schema);
    path_ = ::testing::TempDir() + "qof_journal_fault_test.qofj";
    std::remove(path_.c_str());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  struct Maintained {
    Corpus corpus;
    BuiltIndexes built;
    std::unique_ptr<IndexMaintainer> maintainer;
  };

  std::unique_ptr<Maintained> Seed() {
    auto m = std::make_unique<Maintained>();
    EXPECT_TRUE(
        m->corpus.AddDocument("a.bib", Ref("RefA", "Y. Chang")).ok());
    EXPECT_TRUE(
        m->corpus.AddDocument("b.bib", Ref("RefB", "T. Milo")).ok());
    auto built = BuildIndexes(*schema_, m->corpus, IndexSpec::Full());
    EXPECT_TRUE(built.ok());
    m->built = std::move(*built);
    MaintainOptions options;
    options.auto_compact = false;
    m->maintainer = std::make_unique<IndexMaintainer>(
        schema_.get(), &m->corpus, &m->built, IndexSpec::Full(), options);
    return m;
  }

  std::unique_ptr<StructuringSchema> schema_;
  std::string path_;
};

TEST_F(JournalFaultTest, InjectedAppendFailureTearsTheFrame) {
  std::vector<JournalRecord> records = SampleRecords();
  ASSERT_TRUE(AppendJournalRecordToFile(path_, records[0]).ok());

  {
    ScopedFaultInjector inject({fault_site::kJournalAppend, 1});
    Status s = AppendJournalRecordToFile(path_, records[1]);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(inject.injector().fired());
  }

  // The simulated crash wrote half a frame. ParseJournal must hand back
  // the intact prefix and flag — not reject — the torn tail.
  std::string bytes = Slurp(path_);
  auto parsed = ParseJournal(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->truncated_tail);
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0], records[0]);
  EXPECT_LT(parsed->valid_bytes, bytes.size());
}

TEST_F(JournalFaultTest, RecoveryAfterTornAppendReplaysCleanly) {
  std::vector<JournalRecord> records = SampleRecords();
  ASSERT_TRUE(AppendJournalRecordToFile(path_, records[0]).ok());
  {
    ScopedFaultInjector inject({fault_site::kJournalAppend, 1});
    ASSERT_FALSE(AppendJournalRecordToFile(path_, records[1]).ok());
  }

  // Recovery, as the CLI does it: discard the torn tail, then re-append
  // the failed record and the rest of the session.
  std::string bytes = Slurp(path_);
  auto parsed = ParseJournal(bytes);
  ASSERT_TRUE(parsed.ok());
  std::ofstream truncate(path_, std::ios::binary | std::ios::trunc);
  truncate << bytes.substr(0, parsed->valid_bytes);
  truncate.close();
  ASSERT_TRUE(AppendJournalRecordToFile(path_, records[1]).ok());
  ASSERT_TRUE(AppendJournalRecordToFile(path_, records[2]).ok());

  auto recovered = ParseJournal(Slurp(path_));
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->truncated_tail);
  EXPECT_EQ(recovered->records, records);

  // The recovered journal drives a replay byte-identical to applying the
  // mutations directly.
  auto replayed = Seed();
  ASSERT_TRUE(
      ReplayJournal(recovered->records, replayed->maintainer.get()).ok());
  auto direct = Seed();
  ASSERT_TRUE(
      direct->maintainer->AddDocument("d.bib", records[0].text).ok());
  ASSERT_TRUE(
      direct->maintainer->UpdateDocument("a.bib", records[1].text).ok());
  ASSERT_TRUE(direct->maintainer->RemoveDocument("b.bib").ok());
  ASSERT_TRUE(replayed->maintainer->Compact().ok());
  ASSERT_TRUE(direct->maintainer->Compact().ok());
  auto replayed_blob = SerializeIndexes(replayed->built, IndexSpec::Full(),
                                        replayed->corpus, 3);
  auto direct_blob = SerializeIndexes(direct->built, IndexSpec::Full(),
                                      direct->corpus, 3);
  ASSERT_TRUE(replayed_blob.ok());
  ASSERT_TRUE(direct_blob.ok());
  EXPECT_EQ(*replayed_blob, *direct_blob);
}

TEST_F(JournalFaultTest, InjectedReplayAbortStopsAtRecordBoundary) {
  std::vector<JournalRecord> records = SampleRecords();
  auto m = Seed();
  {
    ScopedFaultInjector inject({fault_site::kJournalReplay, 2});
    Status s = ReplayJournal(records, m->maintainer.get());
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(inject.injector().fired());
  }
  // Mutations are atomic: the abort landed between records, so exactly
  // the first one applied.
  EXPECT_EQ(m->maintainer->generation(), 1u);

  // Resuming with the remaining records completes the replay.
  std::vector<JournalRecord> rest(records.begin() + 1, records.end());
  ASSERT_TRUE(ReplayJournal(rest, m->maintainer.get()).ok());
  EXPECT_EQ(m->maintainer->generation(), 3u);

  auto direct = Seed();
  ASSERT_TRUE(
      direct->maintainer->AddDocument("d.bib", records[0].text).ok());
  ASSERT_TRUE(
      direct->maintainer->UpdateDocument("a.bib", records[1].text).ok());
  ASSERT_TRUE(direct->maintainer->RemoveDocument("b.bib").ok());
  ASSERT_TRUE(m->maintainer->Compact().ok());
  ASSERT_TRUE(direct->maintainer->Compact().ok());
  auto resumed_blob =
      SerializeIndexes(m->built, IndexSpec::Full(), m->corpus, 3);
  auto direct_blob = SerializeIndexes(direct->built, IndexSpec::Full(),
                                      direct->corpus, 3);
  ASSERT_TRUE(resumed_blob.ok());
  ASSERT_TRUE(direct_blob.ok());
  EXPECT_EQ(*resumed_blob, *direct_blob);
}

}  // namespace
}  // namespace qof
