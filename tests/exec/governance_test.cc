// End-to-end resource governance on FileQuerySystem: deadlines, byte and
// region budgets, cooperative cancellation, the fallback ladder with its
// explanatory notes, soft-fail truncation, fault injection at every
// registered site, and the all-or-nothing ImportIndexes staging (see
// DESIGN.md, "Resource governance & failure model").

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/exec/exec_context.h"
#include "qof/exec/fault_injector.h"

namespace qof {
namespace {

// An exact, index-answerable selection (probe surname planted by the
// generator) and an inexact one (NOT forces two-phase verification, so
// auto execution parses candidate documents).
constexpr const char* kExactFql =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";
constexpr const char* kInexactFql =
    "SELECT r FROM References r "
    "WHERE NOT (r.Authors.Name.Last_Name = \"Chang\")";

/// Shared corpus: several generated BibTeX documents, large enough that
/// a scan takes well over a millisecond, small enough that the suite
/// stays fast. Built once.
class GovernanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = new FileQuerySystem(*schema);
    for (int doc = 0; doc < 6; ++doc) {
      BibtexGenOptions gen;
      gen.num_references = 150;
      gen.seed = 1000 + doc;
      gen.probe_author_rate = 0.1;
      ASSERT_TRUE(system_
                      ->AddFile("doc" + std::to_string(doc) + ".bib",
                                GenerateBibtex(gen))
                      .ok());
    }
    system_->SetParallelism(2);
    ASSERT_TRUE(system_->BuildIndexes().ok());
  }

  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static FileQuerySystem* system_;
};

FileQuerySystem* GovernanceTest::system_ = nullptr;

TEST_F(GovernanceTest, UngovernedExecutionUnchanged) {
  auto reference = system_->Execute(kExactFql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_FALSE(reference->regions.empty());
  EXPECT_FALSE(reference->stats.truncated);
}

TEST_F(GovernanceTest, TinyDeadlineTripsScanningStrategies) {
  QueryOptions options;
  options.deadline_ms = 1;
  for (ExecutionMode mode :
       {ExecutionMode::kBaseline, ExecutionMode::kTwoPhase}) {
    auto r = system_->Execute(kInexactFql, mode, options);
    ASSERT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
    // Partial-progress decoration: the caller learns how far the query
    // got before the clock ran out.
    EXPECT_NE(r.status().message().find("bytes scanned"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(GovernanceTest, PreCancelledTokenStopsEveryStrategy) {
  // A pre-cancelled token proves every strategy passes a governance
  // checkpoint before doing real work — deterministically, regardless of
  // machine speed.
  for (ExecutionMode mode :
       {ExecutionMode::kAuto, ExecutionMode::kIndexOnly,
        ExecutionMode::kTwoPhase, ExecutionMode::kBaseline}) {
    QueryOptions options;
    options.cancel = std::make_shared<CancelToken>();
    options.cancel->Cancel();
    auto r = system_->Execute(kExactFql, mode, options);
    ASSERT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }
  // Cancellation never degrades: no partial answer, no ladder.
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();
  auto r = system_->Execute(kExactFql, ExecutionMode::kAuto, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
}

TEST_F(GovernanceTest, CancellationFromSecondThreadMidQuery) {
  // Two-phase verification parses candidate documents inside
  // ThreadPool::ParallelFor; a cancel from another thread must stop the
  // workers cooperatively.
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  std::thread canceller([token = options.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token->Cancel();
  });
  auto r = system_->Execute(kInexactFql, ExecutionMode::kTwoPhase, options);
  canceller.join();
  // The only acceptable non-cancelled outcome is the query finishing
  // before the cancel landed — in which case it must be a full answer.
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  } else {
    EXPECT_FALSE(r->stats.truncated);
  }
}

TEST_F(GovernanceTest, ByteBudgetIsTypedAndNeverDegrades) {
  QueryOptions options;
  options.max_bytes = 64;
  for (ExecutionMode mode :
       {ExecutionMode::kBaseline, ExecutionMode::kTwoPhase}) {
    auto r = system_->Execute(kInexactFql, mode, options);
    ASSERT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(r.status().IsBudgetExhausted()) << r.status().ToString();
  }

  // The budget meters scanned text. With full indexes even the NOT query
  // compiles to an exact plan, so kAuto answers it index-only and sails
  // under any byte limit — that is correct governance, not a leak.
  auto index_only =
      system_->Execute(kInexactFql, ExecutionMode::kAuto, options);
  ASSERT_TRUE(index_only.ok()) << index_only.status().ToString();
  EXPECT_EQ(index_only->stats.bytes_scanned, 0u);

  // Under a partial index the probe-surname chain query is inexact, so
  // kAuto has to parse candidate documents; the budget trips with the
  // typed error instead of degrading down the ladder (a cheaper strategy
  // cannot refund bytes already scanned).
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem partial(*schema);
  BibtexGenOptions gen;
  gen.num_references = 40;
  gen.seed = 77;
  gen.probe_author_rate = 0.1;
  ASSERT_TRUE(partial.AddFile("p.bib", GenerateBibtex(gen)).ok());
  ASSERT_TRUE(
      partial
          .BuildIndexes(IndexSpec::Partial({"Reference", "Key",
                                            "Last_Name"}))
          .ok());
  auto r = partial.Execute(kExactFql, ExecutionMode::kAuto, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBudgetExhausted()) << r.status().ToString();
}

TEST_F(GovernanceTest, RegionBudgetDegradesAutoWithNotes) {
  auto reference = system_->Execute(kExactFql);
  ASSERT_TRUE(reference.ok());

  QueryOptions options;
  options.max_regions = 1;
  auto r = system_->Execute(kExactFql, ExecutionMode::kAuto, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->regions, reference->regions);
  bool degraded_note = false;
  for (const std::string& note : r->stats.notes) {
    degraded_note = degraded_note ||
                    note.find("degraded to") != std::string::npos;
  }
  EXPECT_TRUE(degraded_note) << "no degradation note in stats.notes";
}

TEST_F(GovernanceTest, RegionBudgetIsTypedWhenModeIsForced) {
  // Only kAuto owns the ladder; a forced strategy fails with the typed
  // error instead of silently switching plans.
  QueryOptions options;
  options.max_regions = 1;
  auto r = system_->Execute(kExactFql, ExecutionMode::kIndexOnly, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBudgetExhausted()) << r.status().ToString();
}

TEST_F(GovernanceTest, SoftFailReturnsTruncatedPrefix) {
  auto full = system_->Execute(kExactFql, ExecutionMode::kBaseline);
  ASSERT_TRUE(full.ok());

  QueryOptions options;
  options.max_bytes = 80 * 1024;  // roughly one document in
  options.soft_fail = true;
  auto r = system_->Execute(kExactFql, ExecutionMode::kBaseline, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->stats.truncated);
  EXPECT_LT(r->regions.size(), full->regions.size());
  // The verified prefix is a subset of the full answer.
  for (size_t i = 0; i < r->regions.size(); ++i) {
    EXPECT_EQ(r->regions[i], full->regions[i]);
  }
  bool truncation_note = false;
  for (const std::string& note : r->stats.notes) {
    truncation_note = truncation_note ||
                      note.find("truncated") != std::string::npos;
  }
  EXPECT_TRUE(truncation_note);
}

TEST_F(GovernanceTest, InjectedFaultAtEverySiteLeavesSystemQueryable) {
  auto reference = system_->Execute(kInexactFql);
  ASSERT_TRUE(reference.ok());

  for (const std::string& site : FaultSites()) {
    {
      ScopedFaultInjector inject({site, 1});
      auto r = system_->Execute(kInexactFql, ExecutionMode::kAuto);
      // Auto execution may absorb the fault by degrading (then the
      // answer must be right) or surface a diagnosable error — never a
      // wrong answer.
      if (r.ok()) {
        EXPECT_EQ(r->regions, reference->regions) << "site " << site;
      } else {
        EXPECT_FALSE(r.status().message().empty()) << "site " << site;
      }
    }
    // Fault gone: the system answers as if nothing happened.
    auto after = system_->Execute(kInexactFql, ExecutionMode::kAuto);
    ASSERT_TRUE(after.ok()) << "site " << site << ": "
                            << after.status().ToString();
    EXPECT_EQ(after->regions, reference->regions) << "site " << site;
  }
}

TEST_F(GovernanceTest, ForcedStrategiesSurfaceInjectedFaults) {
  for (ExecutionMode mode :
       {ExecutionMode::kTwoPhase, ExecutionMode::kBaseline}) {
    ScopedFaultInjector inject({fault_site::kParseDocument, 1});
    auto r = system_->Execute(kInexactFql, mode);
    ASSERT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST(ImportStagingTest, CorruptBlobLeavesPreviousIndexesIntact) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  BibtexGenOptions gen;
  gen.num_references = 40;
  gen.probe_author_rate = 0.2;
  ASSERT_TRUE(system.AddFile("a.bib", GenerateBibtex(gen)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto reference = system.Execute(kExactFql);
  ASSERT_TRUE(reference.ok());

  auto blob = system.ExportIndexes();
  ASSERT_TRUE(blob.ok());

  // Truncated and bit-flipped blobs must both fail the import and leave
  // the in-memory indexes untouched (staging struct, swap on success).
  std::string truncated = blob->substr(0, blob->size() / 2);
  EXPECT_FALSE(system.ImportIndexes(truncated).ok());
  std::string flipped = *blob;
  flipped[flipped.size() / 2] ^= 0x5a;
  EXPECT_FALSE(system.ImportIndexes(flipped).ok());

  for (ExecutionMode mode :
       {ExecutionMode::kAuto, ExecutionMode::kIndexOnly,
        ExecutionMode::kTwoPhase}) {
    auto r = system.Execute(kExactFql, mode);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->regions, reference->regions);
  }

  // A clean import still works after the failed attempts.
  EXPECT_TRUE(system.ImportIndexes(*blob).ok());
  auto again = system.Execute(kExactFql);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->regions, reference->regions);
}

TEST(ImportStagingTest, InjectedDeserializeFaultBehavesLikeCorruption) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  BibtexGenOptions gen;
  gen.num_references = 30;
  gen.probe_author_rate = 0.2;
  ASSERT_TRUE(system.AddFile("a.bib", GenerateBibtex(gen)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto reference = system.Execute(kExactFql);
  ASSERT_TRUE(reference.ok());
  auto blob = system.ExportIndexes();
  ASSERT_TRUE(blob.ok());

  {
    ScopedFaultInjector inject({fault_site::kIndexIoDeserialize, 1});
    Status s = system.ImportIndexes(*blob);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(inject.injector().fired());
  }
  auto r = system.Execute(kExactFql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->regions, reference->regions);
}

TEST(GovernedMaintenanceTest, DeadlineAbortsMutationAtomically) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  BibtexGenOptions gen;
  gen.num_references = 20;
  ASSERT_TRUE(system.AddFile("a.bib", GenerateBibtex(gen)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  uint64_t generation = system.maintain_stats().generation;

  BibtexGenOptions big;
  big.num_references = 400;
  big.seed = 77;
  QueryOptions options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();  // deterministic interrupt at the first check
  Status s = system.AddFile("b.bib", GenerateBibtex(big), options);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  // Nothing applied: generation unchanged, corpus unchanged, and the
  // system still answers.
  EXPECT_EQ(system.maintain_stats().generation, generation);
  auto r = system.Execute(kExactFql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

}  // namespace
}  // namespace qof
