// The crash-consistent index directory: checkpoint protocol, recovery,
// stray garbage collection, torn-tail journal repair, typed data-loss
// errors for damaged manifests/blobs, and a unit-scale crash sweep
// proving the old-or-new guarantee op by op (the fuzz leg does the same
// at scale with real index blobs).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/maintain/durable_dir.h"
#include "qof/maintain/journal.h"
#include "qof/store/fault_vfs.h"
#include "qof/store/manifest.h"
#include "qof/store/vfs.h"

namespace qof {
namespace {

JournalRecord MakeRecord(uint64_t generation, const std::string& name) {
  JournalRecord record;
  record.generation = generation;
  record.op = JournalOp::kAdd;
  record.name = name;
  record.text = "text of " + name;
  return record;
}

TEST(DurableIndexDirTest, CreatePublishesManifestBlobAndJournal) {
  FaultVfs vfs;
  auto dir = DurableIndexDir::Create(&vfs, "idx", "blob bytes", 0);
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  EXPECT_EQ(dir->generation(), 0u);
  EXPECT_TRUE(vfs.Exists("idx/MANIFEST"));
  EXPECT_TRUE(vfs.Exists("idx/blob-0.qofidx"));
  EXPECT_TRUE(vfs.Exists("idx/journal-0.qofj"));
  auto blob = dir->ReadBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "blob bytes");
  auto journal = vfs.PeekFile("idx/journal-0.qofj");
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(*journal, JournalHeader());
}

TEST(DurableIndexDirTest, CreateSurvivesImmediatePowerCut) {
  // Create() returns success only once everything is durable: a cut the
  // instant it returns must recover the exact published state.
  FaultVfs vfs;
  ASSERT_TRUE(DurableIndexDir::Create(&vfs, "idx", "blob bytes", 0).ok());
  vfs.CutPower(7);
  auto reopened = DurableIndexDir::Open(&vfs, "idx");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->generation(), 0u);
  auto blob = reopened->ReadBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "blob bytes");
  auto records = reopened->ReadJournal();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(DurableIndexDirTest, AppendedRecordsSurvivePowerCutUnderAlways) {
  FaultVfs vfs;
  auto dir = DurableIndexDir::Create(&vfs, "idx", "b", 0);
  ASSERT_TRUE(dir.ok());
  {
    ScopedVfs scoped(&vfs);  // Append routes through the DefaultVfs
    ASSERT_TRUE(dir->Append(MakeRecord(1, "a.txt")).ok());
    ASSERT_TRUE(dir->Append(MakeRecord(2, "b.txt")).ok());
  }
  vfs.CutPower(11);
  auto reopened = DurableIndexDir::Open(&vfs, "idx");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto records = reopened->ReadJournal();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], MakeRecord(1, "a.txt"));
  EXPECT_EQ((*records)[1], MakeRecord(2, "b.txt"));
}

TEST(DurableIndexDirTest, CheckpointSwingsManifestAndReapsOldPair) {
  FaultVfs vfs;
  auto dir = DurableIndexDir::Create(&vfs, "idx", "v0", 0);
  ASSERT_TRUE(dir.ok());
  {
    ScopedVfs scoped(&vfs);
    ASSERT_TRUE(dir->Append(MakeRecord(1, "a.txt")).ok());
  }
  ASSERT_TRUE(dir->Checkpoint("v1", 1).ok());
  EXPECT_EQ(dir->generation(), 1u);
  EXPECT_TRUE(vfs.Exists("idx/blob-1.qofidx"));
  EXPECT_TRUE(vfs.Exists("idx/journal-1.qofj"));
  EXPECT_FALSE(vfs.Exists("idx/blob-0.qofidx"));
  EXPECT_FALSE(vfs.Exists("idx/journal-0.qofj"));
  auto blob = dir->ReadBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "v1");
  // The new journal starts empty: the checkpointed records are gone.
  auto records = dir->ReadJournal();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(DurableIndexDirTest, OpenReapsStraysFromInterruptedCheckpoint) {
  FaultVfs vfs;
  ASSERT_TRUE(DurableIndexDir::Create(&vfs, "idx", "v0", 0).ok());
  // Plant the debris a checkpoint crash can leave: an unreferenced
  // blob/journal pair and a temp file.
  ASSERT_TRUE(AtomicWriteFile(&vfs, "idx/blob-9.qofidx", "stray").ok());
  ASSERT_TRUE(AtomicWriteFile(&vfs, "idx/journal-9.qofj", "stray").ok());
  {
    auto out = vfs.OpenWrite("idx/MANIFEST.tmp", /*truncate=*/true);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append("torn").ok());
    ASSERT_TRUE((*out)->Close().ok());
  }
  auto reopened = DurableIndexDir::Open(&vfs, "idx");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(vfs.Exists("idx/blob-9.qofidx"));
  EXPECT_FALSE(vfs.Exists("idx/journal-9.qofj"));
  EXPECT_FALSE(vfs.Exists("idx/MANIFEST.tmp"));
  // The committed state is untouched.
  EXPECT_TRUE(vfs.Exists("idx/blob-0.qofidx"));
  EXPECT_TRUE(vfs.Exists("idx/journal-0.qofj"));
}

TEST(DurableIndexDirTest, TornJournalTailIsRepairedInPlace) {
  FaultVfs vfs;
  auto dir = DurableIndexDir::Create(&vfs, "idx", "b", 0);
  ASSERT_TRUE(dir.ok());
  {
    ScopedVfs scoped(&vfs);
    ASSERT_TRUE(dir->Append(MakeRecord(1, "a.txt")).ok());
  }
  // Simulate a crash mid-append: a prefix of a valid frame lands.
  std::string frame = EncodeJournalRecord(MakeRecord(2, "b.txt"));
  {
    auto out = vfs.OpenWrite("idx/journal-0.qofj", /*truncate=*/false);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append(frame.substr(0, frame.size() - 3)).ok());
    ASSERT_TRUE((*out)->Sync().ok());
  }
  auto before = vfs.PeekFile("idx/journal-0.qofj");
  ASSERT_TRUE(before.ok());

  bool repaired = false;
  auto records = dir->ReadJournal(&repaired);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(repaired);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], MakeRecord(1, "a.txt"));

  // Repair truncated the torn bytes off; a second read is clean and the
  // journal accepts appends at the intact boundary again.
  auto after = vfs.PeekFile("idx/journal-0.qofj");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() - (frame.size() - 3));
  repaired = true;
  records = dir->ReadJournal(&repaired);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(repaired);
  {
    ScopedVfs scoped(&vfs);
    ASSERT_TRUE(dir->Append(MakeRecord(2, "b.txt")).ok());
  }
  records = dir->ReadJournal();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(DurableIndexDirTest, FailedAppendLeavesPreviousTailIntact) {
  // Satellite regression: an append that dies partway (disk full) must
  // surface a typed error and leave the journal exactly as it was — the
  // next reader sees the old records, no torn garbage.
  FaultVfs vfs;
  auto dir = DurableIndexDir::Create(&vfs, "idx", "b", 0);
  ASSERT_TRUE(dir.ok());
  ScopedVfs scoped(&vfs);
  ASSERT_TRUE(dir->Append(MakeRecord(1, "a.txt")).ok());
  auto before = vfs.PeekFile("idx/journal-0.qofj");
  ASSERT_TRUE(before.ok());

  uint64_t used = 0;
  for (const std::string& path : vfs.LivePaths()) {
    auto bytes = vfs.PeekFile(path);
    ASSERT_TRUE(bytes.ok());
    used += bytes->size();
  }
  vfs.set_space_limit(used + 4);  // the next frame cannot fit
  Status failed = dir->Append(MakeRecord(2, "b.txt"));
  EXPECT_FALSE(failed.ok());
  vfs.set_space_limit(~uint64_t{0});

  auto after = vfs.PeekFile("idx/journal-0.qofj");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);  // truncated back to the intact tail
  auto records = dir->ReadJournal();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);

  // With space back, the same record appends cleanly.
  ASSERT_TRUE(dir->Append(MakeRecord(2, "b.txt")).ok());
  records = dir->ReadJournal();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(DurableIndexDirTest, CorruptManifestIsDataLoss) {
  FaultVfs vfs;
  ASSERT_TRUE(DurableIndexDir::Create(&vfs, "idx", "b", 0).ok());
  auto manifest = vfs.PeekFile("idx/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  std::string damaged = *manifest;
  damaged[damaged.size() / 2] ^= 0x01;
  {
    auto out = vfs.OpenWrite("idx/MANIFEST", /*truncate=*/true);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append(damaged).ok());
    ASSERT_TRUE((*out)->Sync().ok());
  }
  auto reopened = DurableIndexDir::Open(&vfs, "idx");
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsDataLoss())
      << reopened.status().ToString();
}

TEST(DurableIndexDirTest, MissingBlobIsDataLoss) {
  FaultVfs vfs;
  ASSERT_TRUE(DurableIndexDir::Create(&vfs, "idx", "b", 0).ok());
  ASSERT_TRUE(vfs.Remove("idx/blob-0.qofidx").ok());
  auto reopened = DurableIndexDir::Open(&vfs, "idx");
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsDataLoss())
      << reopened.status().ToString();
}

TEST(DurableIndexDirTest, CrashSweepRecoversOldOrNewAtEveryOp) {
  // The old-or-new guarantee, op by op: run create → append → checkpoint
  // → append with a power cut armed after each mutating I/O op in turn.
  // Recovery must always succeed once Create() was acknowledged, and the
  // recovered (generation, journal) must be one of the states the trace
  // actually acknowledged — never a hybrid.
  auto run_trace = [](FaultVfs* vfs) -> int {
    // Returns the durability floor: -1 nothing acked, 0 create acked,
    // 1 append-1 acked, 2 checkpoint acked, 3 append-2 acked.
    ScopedVfs scoped(vfs);
    auto dir = DurableIndexDir::Create(vfs, "idx", "v0", 0);
    if (!dir.ok()) return -1;
    if (!dir->Append(MakeRecord(1, "a.txt")).ok()) return 0;
    if (!dir->Checkpoint("v1", 1).ok()) return 1;
    if (!dir->Append(MakeRecord(2, "b.txt")).ok()) return 2;
    return 3;
  };

  uint64_t total_ops = 0;
  {
    FaultVfs dry;
    ASSERT_EQ(run_trace(&dry), 3);
    total_ops = dry.op_count();
  }
  ASSERT_GT(total_ops, 0u);

  for (uint64_t crash_op = 0; crash_op < total_ops; ++crash_op) {
    SCOPED_TRACE("crash at op " + std::to_string(crash_op));
    FaultVfs vfs;
    vfs.set_crash_at_op(crash_op);
    int floor = run_trace(&vfs);
    ASSERT_TRUE(vfs.crashed());
    vfs.CutPower(1000 + crash_op);

    ScopedVfs scoped(&vfs);
    auto reopened = DurableIndexDir::Open(&vfs, "idx");
    if (!reopened.ok()) {
      // Only legal while nothing was ever acknowledged.
      EXPECT_EQ(floor, -1) << reopened.status().ToString();
      continue;
    }
    auto blob = reopened->ReadBlob();
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    auto records = reopened->ReadJournal();
    ASSERT_TRUE(records.ok()) << records.status().ToString();

    const uint64_t generation = reopened->generation();
    ASSERT_TRUE(generation == 0 || generation == 1);
    if (generation == 0) {
      // Pre-checkpoint state: the checkpoint must not have been acked.
      EXPECT_LE(floor, 1);
      EXPECT_EQ(*blob, "v0");
      ASSERT_LE(records->size(), 1u);
      if (floor >= 1) {
        // Append-1 was acknowledged durable: its record must be there.
        ASSERT_EQ(records->size(), 1u);
        EXPECT_EQ((*records)[0], MakeRecord(1, "a.txt"));
      }
    } else {
      EXPECT_EQ(*blob, "v1");
      ASSERT_LE(records->size(), 1u);
      if (floor >= 3) {
        ASSERT_EQ(records->size(), 1u);
        EXPECT_EQ((*records)[0], MakeRecord(2, "b.txt"));
      }
    }
    if (floor >= 2) EXPECT_EQ(generation, 1u);
  }
}

}  // namespace
}  // namespace qof
