#include "qof/maintain/journal.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/indexer.h"
#include "qof/engine/system.h"
#include "qof/maintain/maintainer.h"

namespace qof {
namespace {

std::string Ref(const std::string& key, const std::string& author) {
  return "@INCOLLECTION{" + key + ",\n  AUTHOR = \"" + author +
         "\",\n  TITLE = \"T\",\n  BOOKTITLE = \"B\",\n  YEAR = \"1994\",\n"
         "  EDITOR = \"E\",\n  PUBLISHER = \"P\",\n  ADDRESS = \"A\",\n"
         "  PAGES = \"1--2\",\n  REFERRED = \"\",\n  KEYWORDS = \"k\",\n"
         "  ABSTRACT = \"x\"\n}\n";
}

std::vector<JournalRecord> SampleRecords() {
  return {
      {1, JournalOp::kAdd, "d.bib", Ref("RefD", "Z. Chang")},
      {2, JournalOp::kUpdate, "a.bib", Ref("RefA", "Y. Milo")},
      {3, JournalOp::kRemove, "b.bib", ""},
  };
}

std::string EncodeAll(const std::vector<JournalRecord>& records) {
  std::string data = JournalHeader();
  for (const JournalRecord& r : records) data += EncodeJournalRecord(r);
  return data;
}

TEST(JournalTest, RoundTrip) {
  std::vector<JournalRecord> records = SampleRecords();
  std::string data = EncodeAll(records);
  auto parsed = ParseJournal(data);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->truncated_tail);
  EXPECT_EQ(parsed->valid_bytes, data.size());
  EXPECT_EQ(parsed->records, records);
}

TEST(JournalTest, EmptyJournalIsJustTheHeader) {
  auto parsed = ParseJournal(JournalHeader());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->records.empty());
  EXPECT_FALSE(parsed->truncated_tail);
}

TEST(JournalTest, BadMagicRejected) {
  EXPECT_FALSE(ParseJournal("").ok());
  EXPECT_FALSE(ParseJournal("QOFJRNL9junkjunk").ok());
  EXPECT_FALSE(ParseJournal("not a journal at all").ok());
}

TEST(JournalTest, TruncatedTailDiscardedAtEveryCut) {
  // A crash mid-append tears the last frame at an arbitrary byte. Every
  // cut inside the final frame must yield the intact prefix, flagged.
  std::vector<JournalRecord> records = SampleRecords();
  std::string data = EncodeAll(records);
  std::string prefix =
      EncodeAll({records[0], records[1]});  // intact part
  for (size_t cut = prefix.size() + 1; cut < data.size(); ++cut) {
    auto parsed = ParseJournal(data.substr(0, cut));
    ASSERT_TRUE(parsed.ok()) << "cut at " << cut;
    EXPECT_TRUE(parsed->truncated_tail) << "cut at " << cut;
    EXPECT_EQ(parsed->records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(parsed->valid_bytes, prefix.size()) << "cut at " << cut;
  }
}

TEST(JournalTest, CorruptTailChecksumDiscarded) {
  std::vector<JournalRecord> records = SampleRecords();
  std::string data = EncodeAll(records);
  data.back() ^= 0x5a;  // flip a payload byte of the final record
  auto parsed = ParseJournal(data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->truncated_tail);
  EXPECT_EQ(parsed->records.size(), 2u);
}

class JournalReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<StructuringSchema>(*schema);
  }

  /// A corpus + built indexes + maintainer over the three seed docs.
  struct Maintained {
    Corpus corpus;
    BuiltIndexes built;
    std::unique_ptr<IndexMaintainer> maintainer;
  };

  std::unique_ptr<Maintained> Seed() {
    auto m = std::make_unique<Maintained>();
    EXPECT_TRUE(
        m->corpus.AddDocument("a.bib", Ref("RefA", "Y. Chang")).ok());
    EXPECT_TRUE(
        m->corpus.AddDocument("b.bib", Ref("RefB", "T. Milo")).ok());
    EXPECT_TRUE(
        m->corpus.AddDocument("c.bib", Ref("RefC", "Q. Chang")).ok());
    auto built = BuildIndexes(*schema_, m->corpus, IndexSpec::Full());
    EXPECT_TRUE(built.ok());
    m->built = std::move(*built);
    MaintainOptions options;
    options.auto_compact = false;
    m->maintainer = std::make_unique<IndexMaintainer>(
        schema_.get(), &m->corpus, &m->built, IndexSpec::Full(), options);
    return m;
  }

  std::unique_ptr<StructuringSchema> schema_;
};

TEST_F(JournalReplayTest, ReplayReproducesDirectMutations) {
  auto replayed = Seed();
  ASSERT_TRUE(
      ReplayJournal(SampleRecords(), replayed->maintainer.get()).ok());
  EXPECT_EQ(replayed->maintainer->generation(), 3u);

  auto direct = Seed();
  ASSERT_TRUE(
      direct->maintainer->AddDocument("d.bib", Ref("RefD", "Z. Chang"))
          .ok());
  ASSERT_TRUE(
      direct->maintainer->UpdateDocument("a.bib", Ref("RefA", "Y. Milo"))
          .ok());
  ASSERT_TRUE(direct->maintainer->RemoveDocument("b.bib").ok());

  ASSERT_TRUE(replayed->maintainer->Compact().ok());
  ASSERT_TRUE(direct->maintainer->Compact().ok());
  auto replayed_blob = SerializeIndexes(replayed->built, IndexSpec::Full(),
                                        replayed->corpus, 3);
  auto direct_blob = SerializeIndexes(direct->built, IndexSpec::Full(),
                                      direct->corpus, 3);
  ASSERT_TRUE(replayed_blob.ok());
  ASSERT_TRUE(direct_blob.ok());
  EXPECT_EQ(*replayed_blob, *direct_blob);
}

TEST_F(JournalReplayTest, ReplayRejectsGenerationGap) {
  auto m = Seed();
  std::vector<JournalRecord> gapped = {
      {2, JournalOp::kAdd, "d.bib", Ref("RefD", "Z. Chang")},
  };
  Status s = ReplayJournal(gapped, m->maintainer.get());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("generation"), std::string::npos);
}

TEST_F(JournalReplayTest, ReplayStopsOnFailedRecord) {
  auto m = Seed();
  std::vector<JournalRecord> bad = {
      {1, JournalOp::kRemove, "missing.bib", ""},
  };
  EXPECT_FALSE(ReplayJournal(bad, m->maintainer.get()).ok());
}

TEST_F(JournalReplayTest, SyntheticDocumentsBlockCompactionUntilDead) {
  // Journal replay onto a blob-restored corpus zero-fills document bytes
  // it does not have. Such documents must not be folded into a compacted
  // layout — but once the journal replaces or removes them, compaction
  // proceeds.
  auto m = Seed();
  m->maintainer->MarkDocumentSynthetic(0);  // a.bib's bytes are fake
  EXPECT_TRUE(m->maintainer->HasLiveSyntheticDocuments());
  EXPECT_FALSE(m->maintainer->NeedsCompaction());
  ASSERT_TRUE(m->maintainer->RemoveDocument("b.bib").ok());
  Status s = m->maintainer->Compact();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("placeholder"), std::string::npos);
  // Updating the synthetic document with real bytes clears the block.
  ASSERT_TRUE(
      m->maintainer->UpdateDocument("a.bib", Ref("RefA", "Y. Chang")).ok());
  EXPECT_FALSE(m->maintainer->HasLiveSyntheticDocuments());
  EXPECT_TRUE(m->maintainer->Compact().ok());
}

}  // namespace
}  // namespace qof
