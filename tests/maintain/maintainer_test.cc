#include "qof/maintain/maintainer.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";
constexpr const char* kProjection =
    "SELECT r.Title FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::string MakeRef(const std::string& key, const std::string& author,
                    const std::string& title) {
  return "@INCOLLECTION{" + key + ",\n  AUTHOR = \"" + author +
         "\",\n  TITLE = \"" + title +
         "\",\n  BOOKTITLE = \"B\",\n  YEAR = \"1994\",\n"
         "  EDITOR = \"E. Editor\",\n  PUBLISHER = \"P\",\n"
         "  ADDRESS = \"A\",\n  PAGES = \"1--2\",\n"
         "  REFERRED = \"\",\n  KEYWORDS = \"k\",\n"
         "  ABSTRACT = \"x\"\n}\n";
}

/// The generation field occupies bytes [8, 16) of a v2 blob; zeroing it
/// lets blobs from different maintenance histories byte-compare.
std::string StripGeneration(std::string blob) {
  for (size_t i = 8; i < 16 && i < blob.size(); ++i) blob[i] = '\0';
  return blob;
}

class MaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = std::make_unique<FileQuerySystem>(*schema);
    system_->SetParallelism(1);
    ASSERT_TRUE(
        system_->AddFile("a.bib", MakeRef("RefA", "Y. Chang", "Alpha"))
            .ok());
    ASSERT_TRUE(
        system_->AddFile("b.bib", MakeRef("RefB", "T. Milo", "Beta")).ok());
    ASSERT_TRUE(
        system_->AddFile("c.bib", MakeRef("RefC", "Q. Chang", "Gamma"))
            .ok());
    ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  }

  /// A from-scratch system over the maintained system's current live
  /// documents, in their physical (last-touched) order.
  std::unique_ptr<FileQuerySystem> FreshRebuild() {
    auto schema = BibtexSchema();
    EXPECT_TRUE(schema.ok());
    auto fresh = std::make_unique<FileQuerySystem>(*schema);
    fresh->SetParallelism(1);
    const Corpus& corpus = system_->corpus();
    for (DocId id = 0; id < corpus.num_documents(); ++id) {
      if (!corpus.is_live(id)) continue;
      EXPECT_TRUE(fresh
                      ->AddFile(corpus.document_name(id),
                                corpus.RawText(corpus.document_start(id),
                                               corpus.document_end(id)))
                      .ok());
    }
    EXPECT_TRUE(fresh->BuildIndexes(system_->index_spec()).ok());
    return fresh;
  }

  /// Asserts the maintained system, once compacted, is byte-identical to
  /// a fresh build (modulo the persisted generation).
  void ExpectMatchesRebuildAfterCompaction() {
    auto fresh = FreshRebuild();
    ASSERT_TRUE(system_->CompactIndexes().ok());
    auto maintained_blob = system_->ExportIndexes();
    auto fresh_blob = fresh->ExportIndexes();
    ASSERT_TRUE(maintained_blob.ok()) << maintained_blob.status().ToString();
    ASSERT_TRUE(fresh_blob.ok()) << fresh_blob.status().ToString();
    EXPECT_EQ(StripGeneration(*maintained_blob),
              StripGeneration(*fresh_blob));
  }

  /// Asserts query *values* match a fresh rebuild right now, without
  /// compacting (pre-compaction layouts differ, so regions may not).
  void ExpectValuesMatchRebuild(const char* fql) {
    auto fresh = FreshRebuild();
    auto maintained = system_->Execute(fql);
    auto rebuilt = fresh->Execute(fql);
    ASSERT_TRUE(maintained.ok()) << maintained.status().ToString();
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(maintained->RenderedValues(), rebuilt->RenderedValues());
    EXPECT_EQ(maintained->regions.size(), rebuilt->regions.size());
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(MaintainerTest, AddDocumentMatchesRebuild) {
  ASSERT_TRUE(
      system_->AddFile("d.bib", MakeRef("RefD", "Z. Chang", "Delta")).ok());
  EXPECT_EQ(system_->index_generation(), 1u);
  ExpectValuesMatchRebuild(kProjection);
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, UpdateDocumentMatchesRebuild) {
  ASSERT_TRUE(
      system_->UpdateFile("b.bib", MakeRef("RefB", "T. Chang", "Beta Two"))
          .ok());
  ExpectValuesMatchRebuild(kProjection);
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, RemoveDocumentMatchesRebuild) {
  ASSERT_TRUE(system_->RemoveFile("a.bib").ok());
  ExpectValuesMatchRebuild(kProjection);
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, MixedSequenceMatchesRebuild) {
  ASSERT_TRUE(
      system_->AddFile("d.bib", MakeRef("RefD", "Z. Chang", "Delta")).ok());
  ASSERT_TRUE(
      system_->UpdateFile("a.bib", MakeRef("RefA", "Y. Milo", "Alpha Two"))
          .ok());
  ASSERT_TRUE(system_->RemoveFile("c.bib").ok());
  ASSERT_TRUE(
      system_->UpdateFile("d.bib", MakeRef("RefD", "Z. Chang", "Delta Two"))
          .ok());
  ASSERT_TRUE(
      system_->AddFile("c.bib", MakeRef("RefE", "M. Consens", "Epsilon"))
          .ok());
  EXPECT_EQ(system_->index_generation(), 5u);
  ExpectValuesMatchRebuild(kFlagship);
  ExpectValuesMatchRebuild(kProjection);
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, UpdateToEmptyDocument) {
  ASSERT_TRUE(system_->UpdateFile("b.bib", "").ok());
  auto r = system_->Execute("SELECT r FROM References r");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->regions.size(), 2u);
  ExpectValuesMatchRebuild(kProjection);
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, RemoveLastDocumentKeepsNamesRegistered) {
  ASSERT_TRUE(system_->RemoveFile("a.bib").ok());
  ASSERT_TRUE(system_->RemoveFile("b.bib").ok());
  ASSERT_TRUE(system_->RemoveFile("c.bib").ok());
  // "Indexed but absent" must survive: queries answer empty rather than
  // erroring on unregistered region names.
  EXPECT_TRUE(system_->region_index().Has("Reference"));
  auto r = system_->Execute(kFlagship);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->regions.empty());
  ASSERT_TRUE(system_->CompactIndexes().ok());
  EXPECT_TRUE(system_->region_index().Has("Reference"));
  auto after = system_->Execute(kFlagship);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->regions.empty());
  // And the corpus can grow again.
  ASSERT_TRUE(
      system_->AddFile("a.bib", MakeRef("RefA", "Y. Chang", "Alpha")).ok());
  auto regrown = system_->Execute(kFlagship);
  ASSERT_TRUE(regrown.ok());
  EXPECT_EQ(regrown->regions.size(), 1u);
}

TEST_F(MaintainerTest, ParallelMaintenanceIsByteIdentical) {
  // The same mutation sequence under parallelism 1 and N must produce
  // identical blobs (compaction rebases region sets and posting lists on
  // the pool).
  auto run = [](int parallelism) {
    auto schema = BibtexSchema();
    EXPECT_TRUE(schema.ok());
    FileQuerySystem sys(*schema);
    sys.SetParallelism(parallelism);
    EXPECT_TRUE(
        sys.AddFile("a.bib", MakeRef("RefA", "Y. Chang", "Alpha")).ok());
    EXPECT_TRUE(
        sys.AddFile("b.bib", MakeRef("RefB", "T. Milo", "Beta")).ok());
    EXPECT_TRUE(sys.BuildIndexes(IndexSpec::Full()).ok());
    EXPECT_TRUE(
        sys.AddFile("c.bib", MakeRef("RefC", "Q. Chang", "Gamma")).ok());
    EXPECT_TRUE(
        sys.UpdateFile("a.bib", MakeRef("RefA", "Y. Milo", "Alpha Two"))
            .ok());
    EXPECT_TRUE(sys.RemoveFile("b.bib").ok());
    EXPECT_TRUE(sys.CompactIndexes().ok());
    auto blob = sys.ExportIndexes();
    EXPECT_TRUE(blob.ok());
    return blob.ok() ? *blob : std::string();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST_F(MaintainerTest, AutoCompactionTriggersOnTombstones) {
  MaintainOptions options;
  options.max_tombstones = 3;
  options.max_dead_fraction = 1.0;  // isolate the tombstone threshold
  system_->SetMaintainOptions(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        system_
            ->UpdateFile("b.bib", MakeRef("RefB", "T. Milo",
                                          "Beta " + std::to_string(i)))
            .ok());
  }
  MaintainStats stats = system_->maintain_stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.tombstones, 0u);  // compaction folded them away
  ExpectMatchesRebuildAfterCompaction();
}

TEST_F(MaintainerTest, AutoCompactionTriggersOnDeadBytes) {
  MaintainOptions options;
  options.max_tombstones = 1000;
  options.max_dead_fraction = 0.3;  // isolate the dead-byte threshold
  system_->SetMaintainOptions(options);
  ASSERT_TRUE(system_->RemoveFile("a.bib").ok());
  ASSERT_TRUE(system_->RemoveFile("b.bib").ok());
  EXPECT_GE(system_->maintain_stats().compactions, 1u);
}

TEST_F(MaintainerTest, StatsCountOnlyTheTouchedDocument) {
  uint64_t touched = MakeRef("RefB", "T. Chang", "Beta Two").size();
  ASSERT_TRUE(
      system_->UpdateFile("b.bib", MakeRef("RefB", "T. Chang", "Beta Two"))
          .ok());
  MaintainStats stats = system_->maintain_stats();
  EXPECT_EQ(stats.docs_reparsed, 1u);
  EXPECT_EQ(stats.bytes_reparsed, touched);
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.live_documents, 3u);
  EXPECT_EQ(stats.tombstones, 1u);
  EXPECT_EQ(stats.delta_segments, 1u);
}

TEST_F(MaintainerTest, FailedMutationLeavesStateUntouched) {
  auto before = system_->Execute(kFlagship);
  ASSERT_TRUE(before.ok());
  // Unparsable bibtex: the update must be rejected atomically.
  EXPECT_FALSE(system_->UpdateFile("b.bib", "@GARBAGE{{{").ok());
  EXPECT_FALSE(system_->RemoveFile("nope.bib").ok());
  EXPECT_FALSE(
      system_->AddFile("a.bib", MakeRef("RefX", "X", "Dup")).ok());
  EXPECT_EQ(system_->index_generation(), 0u);
  auto after = system_->Execute(kFlagship);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->RenderedValues(), before->RenderedValues());
  EXPECT_EQ(after->regions.size(), before->regions.size());
}

TEST_F(MaintainerTest, CompactDetectsDroppedTombstone) {
  MaintainOptions options;
  options.auto_compact = false;
  options.inject_drop_tombstone = true;
  system_->SetMaintainOptions(options);
  ASSERT_TRUE(system_->RemoveFile("a.bib").ok());
  Status s = system_->CompactIndexes();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("tombstone"), std::string::npos)
      << s.message();
}

TEST_F(MaintainerTest, ExportCompactsFragmentedCorpus) {
  MaintainOptions options;
  options.auto_compact = false;
  system_->SetMaintainOptions(options);
  ASSERT_TRUE(system_->RemoveFile("b.bib").ok());
  EXPECT_GT(system_->maintain_stats().tombstones, 0u);
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(system_->maintain_stats().tombstones, 0u);
  // The exported blob equals a fresh rebuild's.
  auto fresh_blob = FreshRebuild()->ExportIndexes();
  ASSERT_TRUE(fresh_blob.ok());
  EXPECT_EQ(StripGeneration(*blob), StripGeneration(*fresh_blob));
}

TEST_F(MaintainerTest, ManyGenerationsConverge) {
  // A longer scripted churn: every fifth mutation removes, the rest
  // alternate adds and updates; compaction thresholds left at defaults.
  int added = 0;
  for (int i = 0; i < 40; ++i) {
    std::string name = "gen" + std::to_string(i % 7) + ".bib";
    std::string ref = MakeRef("G" + std::to_string(i),
                              i % 3 == 0 ? "Y. Chang" : "T. Milo",
                              "T" + std::to_string(i));
    if (i % 5 == 4) {
      Status s = system_->RemoveFile(name);
      (void)s;  // may be NotFound when the slot is empty — fine
    } else if (system_->corpus().FindDocument(name).ok()) {
      ASSERT_TRUE(system_->UpdateFile(name, ref).ok());
    } else {
      ASSERT_TRUE(system_->AddFile(name, ref).ok());
      ++added;
    }
  }
  ASSERT_GT(added, 0);
  ExpectValuesMatchRebuild(kFlagship);
  ExpectMatchesRebuildAfterCompaction();
}

}  // namespace
}  // namespace qof
