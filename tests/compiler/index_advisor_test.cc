#include "qof/compiler/index_advisor.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"
#include "qof/compiler/exactness.h"
#include "qof/datagen/schemas.h"
#include "qof/optimizer/optimizer.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class IndexAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
  }

  InclusionChain Chain(std::string_view text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok());
    auto chain = InclusionChain::FromExpr(**expr);
    EXPECT_TRUE(chain.ok());
    return chain.ok() ? *chain : InclusionChain{};
  }

  Rig rig_;
};

TEST_F(IndexAdvisorTest, FlagshipWorkloadNeedsFewIndexes) {
  auto advice = AdviseIndexes(
      rig_, "Reference",
      {Chain(
          "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)")});
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  // Optimized form is Reference > Authors > σ(Last_Name): three names,
  // no ⊃d left, so nothing more is needed.
  EXPECT_EQ(advice->names, (std::set<std::string>{"Reference", "Authors",
                                                  "Last_Name"}));
}

TEST_F(IndexAdvisorTest, AdvisedSetIsSufficient) {
  std::vector<InclusionChain> workload = {
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"),
      Chain("Reference >> Editors >> Name >> sigma(\"Corliss\", "
            "Last_Name)"),
      Chain("Reference >> Key"),
  };
  auto advice = AdviseIndexes(rig_, "Reference", workload);
  ASSERT_TRUE(advice.ok());
  ChainOptimizer full(&rig_);
  for (const InclusionChain& chain : workload) {
    auto outcome = full.Optimize(chain);
    ASSERT_TRUE(outcome.ok());
    auto projection = ProjectChain(rig_, advice->names, outcome->chain);
    ASSERT_TRUE(projection.ok());
    EXPECT_TRUE(projection->exact) << chain.ToString();
  }
}

TEST_F(IndexAdvisorTest, AdvisedSetIsSmallerThanFullIndexing) {
  auto schema = BibtexSchema();
  auto advice = AdviseIndexes(
      rig_, "Reference",
      {Chain(
          "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)")});
  ASSERT_TRUE(advice.ok());
  EXPECT_LT(advice->names.size(), schema->IndexableNames().size());
}

TEST_F(IndexAdvisorTest, DirectLinkGetsBlockingInterior) {
  // Workload keeps a ⊃d: Reference ⊃d Key (only path, relaxes — pick one
  // that cannot relax). Use a RIG with an alternate derivation.
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("A", "X");
  g.AddEdge("X", "B");
  // A ⊃d B cannot relax (two paths); advising must index a blocker on
  // A -> X -> B, i.e. X.
  auto advice = AdviseIndexes(g, "A", {Chain("A >> B")});
  ASSERT_TRUE(advice.ok());
  EXPECT_TRUE(advice->names.count("X") == 1) << [&] {
    std::string s;
    for (const auto& n : advice->names) s += n + " ";
    return s;
  }();
}

TEST_F(IndexAdvisorTest, TrivialWorkloadChainSkipped) {
  auto advice =
      AdviseIndexes(rig_, "Reference", {Chain("Key > Last_Name")});
  ASSERT_TRUE(advice.ok());
  // Only the view itself is required.
  EXPECT_EQ(advice->names, (std::set<std::string>{"Reference"}));
}

TEST_F(IndexAdvisorTest, AdviseFromFqlQueries) {
  std::vector<SelectQuery> queries;
  for (const char* fql :
       {"SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
        "\"Chang\" AND r.Year = \"1982\"",
        "SELECT r.Editors.Name.Last_Name FROM References r",
        "SELECT r FROM References r WHERE r.Editors.Name = "
        "r.Authors.Name"}) {
    auto q = ParseFql(fql);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    queries.push_back(*q);
  }
  auto advice = AdviseIndexesForQueries(rig_, "Reference", queries);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  // Everything the three queries need — and the editor-side Name for the
  // projection chain.
  for (const char* name :
       {"Reference", "Authors", "Editors", "Last_Name", "Year", "Name"}) {
    EXPECT_TRUE(advice->names.count(name) == 1) << name;
  }
  auto schema = BibtexSchema();
  EXPECT_LT(advice->names.size(), schema->IndexableNames().size());
}

TEST_F(IndexAdvisorTest, EmptyWorkloadJustViews) {
  auto advice = AdviseIndexes(rig_, "Reference", {});
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->names, (std::set<std::string>{"Reference"}));
}

}  // namespace
}  // namespace qof
