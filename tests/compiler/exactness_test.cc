#include "qof/compiler/exactness.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"
#include "qof/datagen/schemas.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class ExactnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
  }

  InclusionChain Chain(std::string_view text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto chain = InclusionChain::FromExpr(**expr);
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    return chain.ok() ? *chain : InclusionChain{};
  }

  Rig rig_;
};

TEST_F(ExactnessTest, FullIndexKeepsChainExact) {
  auto schema = BibtexSchema();
  std::set<std::string> all;
  for (const std::string& n : schema->IndexableNames()) all.insert(n);
  auto p = ProjectChain(
      rig_, all,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->view_indexed);
  EXPECT_TRUE(p->exact);
  EXPECT_EQ(p->chain.names.size(), 4u);
}

TEST_F(ExactnessTest, PaperPartialIndexIsInexact) {
  // §6.1's Ip = {Reference, Key, Last_Name}: the Authors test is lost and
  // editors slip into the candidates.
  std::set<std::string> ip = {"Reference", "Key", "Last_Name"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->view_indexed);
  EXPECT_FALSE(p->exact);
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> sigma(\"Chang\", Last_Name)");
}

TEST_F(ExactnessTest, IndexingAuthorsRestoresExactness) {
  // §6.3: with Authors indexed, Reference ⊃d Authors matches a unique
  // path and Authors ⊃d Last_Name matches only Authors->Name->Last_Name.
  std::set<std::string> ip = {"Reference", "Authors", "Last_Name"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->exact);
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> Authors >> sigma(\"Chang\", Last_Name)");
}

TEST_F(ExactnessTest, BypassThroughUnindexedBreaksExactness) {
  // Index Reference and Name only: Reference ⊃d Name matches two
  // derivations (via Authors and via Editors) — candidates remain a
  // superset for an Authors-specific query... but for a query on Name
  // itself both derivations are wanted. Exactness of the *link* is about
  // unique derivation; multiplicity 2 ⇒ inexact.
  std::set<std::string> ip = {"Reference", "Name"};
  auto p = ProjectChain(rig_, ip, Chain("Reference >> Authors >> Name"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->exact);
  EXPECT_EQ(p->chain.ToString(), "Reference >> Name");
}

TEST_F(ExactnessTest, WildcardLinkStaysExact) {
  std::set<std::string> ip = {"Reference", "Last_Name"};
  // Reference > σ(Last_Name) — the *X form: ⊃ means "any derivation",
  // which the index answers exactly.
  auto p = ProjectChain(rig_, ip,
                        Chain("Reference > sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->exact);
}

TEST_F(ExactnessTest, UnindexedViewReported) {
  std::set<std::string> ip = {"Authors", "Last_Name"};
  auto p = ProjectChain(rig_, ip, Chain("Reference >> Authors"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->view_indexed);
  EXPECT_FALSE(p->exact);
}

TEST_F(ExactnessTest, SelectionOnDroppedNameDegradesToContains) {
  std::set<std::string> ip = {"Reference", "Authors"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->exact);
  // The σ moves to Authors as a containment test.
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> contains(\"Chang\", Authors)");
}

TEST_F(ExactnessTest, RejectsContainedChains) {
  std::set<std::string> ip = {"Reference"};
  auto chain = Chain("Last_Name << Reference");
  EXPECT_FALSE(ProjectChain(rig_, ip, chain).ok());
}

}  // namespace
}  // namespace qof
