#include "qof/compiler/exactness.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"
#include "qof/datagen/schemas.h"
#include "qof/fuzz/rng.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class ExactnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
  }

  InclusionChain Chain(std::string_view text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto chain = InclusionChain::FromExpr(**expr);
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    return chain.ok() ? *chain : InclusionChain{};
  }

  Rig rig_;
};

TEST_F(ExactnessTest, FullIndexKeepsChainExact) {
  auto schema = BibtexSchema();
  std::set<std::string> all;
  for (const std::string& n : schema->IndexableNames()) all.insert(n);
  auto p = ProjectChain(
      rig_, all,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->view_indexed);
  EXPECT_TRUE(p->exact);
  EXPECT_EQ(p->chain.names.size(), 4u);
}

TEST_F(ExactnessTest, PaperPartialIndexIsInexact) {
  // §6.1's Ip = {Reference, Key, Last_Name}: the Authors test is lost and
  // editors slip into the candidates.
  std::set<std::string> ip = {"Reference", "Key", "Last_Name"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->view_indexed);
  EXPECT_FALSE(p->exact);
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> sigma(\"Chang\", Last_Name)");
}

TEST_F(ExactnessTest, IndexingAuthorsRestoresExactness) {
  // §6.3: with Authors indexed, Reference ⊃d Authors matches a unique
  // path and Authors ⊃d Last_Name matches only Authors->Name->Last_Name.
  std::set<std::string> ip = {"Reference", "Authors", "Last_Name"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->exact);
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> Authors >> sigma(\"Chang\", Last_Name)");
}

TEST_F(ExactnessTest, BypassThroughUnindexedBreaksExactness) {
  // Index Reference and Name only: Reference ⊃d Name matches two
  // derivations (via Authors and via Editors) — candidates remain a
  // superset for an Authors-specific query... but for a query on Name
  // itself both derivations are wanted. Exactness of the *link* is about
  // unique derivation; multiplicity 2 ⇒ inexact.
  std::set<std::string> ip = {"Reference", "Name"};
  auto p = ProjectChain(rig_, ip, Chain("Reference >> Authors >> Name"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->exact);
  EXPECT_EQ(p->chain.ToString(), "Reference >> Name");
}

TEST_F(ExactnessTest, WildcardLinkStaysExact) {
  std::set<std::string> ip = {"Reference", "Last_Name"};
  // Reference > σ(Last_Name) — the *X form: ⊃ means "any derivation",
  // which the index answers exactly.
  auto p = ProjectChain(rig_, ip,
                        Chain("Reference > sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->exact);
}

TEST_F(ExactnessTest, UnindexedViewReported) {
  std::set<std::string> ip = {"Authors", "Last_Name"};
  auto p = ProjectChain(rig_, ip, Chain("Reference >> Authors"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->view_indexed);
  EXPECT_FALSE(p->exact);
}

TEST_F(ExactnessTest, SelectionOnDroppedNameDegradesToContains) {
  std::set<std::string> ip = {"Reference", "Authors"};
  auto p = ProjectChain(
      rig_, ip,
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->exact);
  // The σ moves to Authors as a containment test.
  EXPECT_EQ(p->chain.ToString(),
            "Reference >> contains(\"Chang\", Authors)");
}

TEST_F(ExactnessTest, RejectsContainedChains) {
  std::set<std::string> ip = {"Reference"};
  auto chain = Chain("Last_Name << Reference");
  EXPECT_FALSE(ProjectChain(rig_, ip, chain).ok());
}

// §6.3 exactness as an independent property: the projected chain is
// exact iff the view and the selected attribute stay indexed and every
// collapsed link matches a *unique* full-RIG derivation through
// unindexed interiors. Rig::PathMultiplicity states that second
// condition directly, without going through the exactness code under
// test, so the two implementations check each other across a fuzzed
// population of index subsets.
bool PredictExact(const Rig& rig,
                  const std::vector<std::string>& chain_names,
                  const std::set<std::string>& indexed) {
  if (indexed.count(chain_names.front()) == 0) return false;
  if (indexed.count(chain_names.back()) == 0) return false;
  std::vector<std::string> kept;
  for (const std::string& n : chain_names) {
    if (indexed.count(n) > 0) kept.push_back(n);
  }
  auto interior_unindexed = [&](Rig::NodeId v) {
    return indexed.count(rig.name(v)) == 0;
  };
  for (size_t i = 0; i + 1 < kept.size(); ++i) {
    if (rig.PathMultiplicity(rig.FindNode(kept[i]),
                             rig.FindNode(kept[i + 1]),
                             interior_unindexed) != 1) {
      return false;
    }
  }
  return true;
}

TEST_F(ExactnessTest, FuzzedSubsetsAgreeWithPathMultiplicity) {
  const std::vector<std::string> chain_names = {"Reference", "Authors",
                                                "Name", "Last_Name"};
  const std::vector<std::string> all_names = rig_.NodeNames();
  FuzzRng rng(20260806);
  int exact_seen = 0;
  int inexact_seen = 0;
  int view_unindexed_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::set<std::string> indexed;
    if (rng.Chance(0.85)) indexed.insert("Reference");
    if (rng.Chance(0.6)) indexed.insert("Last_Name");
    for (const std::string& name : all_names) {
      if (rng.Chance(0.45)) indexed.insert(name);
    }
    auto p = ProjectChain(
        rig_, indexed,
        Chain("Reference >> Authors >> Name >> "
              "sigma(\"Chang\", Last_Name)"));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    std::string label;
    for (const std::string& n : indexed) label += n + " ";
    EXPECT_EQ(p->view_indexed, indexed.count("Reference") > 0)
        << "subset: " << label;
    EXPECT_EQ(p->exact, PredictExact(rig_, chain_names, indexed))
        << "subset: " << label << " projected: " << p->chain.ToString();
    if (!p->view_indexed) {
      ++view_unindexed_seen;
    } else if (p->exact) {
      ++exact_seen;
    } else {
      ++inexact_seen;
    }
  }
  // The sample must actually exercise every verdict.
  EXPECT_GE(exact_seen, 5);
  EXPECT_GE(inexact_seen, 5);
  EXPECT_GE(view_unindexed_seen, 3);
}

}  // namespace
}  // namespace qof
