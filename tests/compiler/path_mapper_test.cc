#include "qof/compiler/path_mapper.h"

#include <set>

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class PathMapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
  }

  PathExpr Path(std::string_view fql_where_path) {
    // Parse via a throwaway query.
    auto q = ParseFql("SELECT r FROM References r WHERE " +
                      std::string(fql_where_path) + " = \"x\"");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.ok() ? q->where->path() : PathExpr{};
  }

  Rig rig_;
};

TEST_F(PathMapperTest, PlainAttributePathIsAllDirect) {
  auto mapped = MapPathToChains(
      rig_, "Reference", Path("r.Authors.Name.Last_Name"),
      ChainSelection{ExprKind::kSelectMatches, "Chang"});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->alternatives.size(), 1u);
  const InclusionChain& chain = mapped->alternatives[0];
  EXPECT_EQ(chain.ToString(),
            "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
}

TEST_F(PathMapperTest, NoSelectionLocatesAttribute) {
  auto mapped =
      MapPathToChains(rig_, "Reference", Path("r.Key"), std::nullopt);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->alternatives[0].ToString(), "Reference >> Key");
}

TEST_F(PathMapperTest, WildStarBecomesPlainInclusion) {
  auto mapped = MapPathToChains(
      rig_, "Reference", Path("r.*X.Last_Name"),
      ChainSelection{ExprKind::kSelectMatches, "Chang"});
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->alternatives.size(), 1u);
  EXPECT_EQ(mapped->alternatives[0].ToString(),
            "Reference > sigma(\"Chang\", Last_Name)");
}

TEST_F(PathMapperTest, WildOneEnumeratesDerivations) {
  // r.?A.Name: paths of length 2 Reference -> ? -> Name: via Authors and
  // via Editors.
  auto mapped = MapPathToChains(rig_, "Reference", Path("r.?A.Name"),
                                std::nullopt);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->alternatives.size(), 2u);
  std::set<std::string> forms;
  for (const auto& c : mapped->alternatives) forms.insert(c.ToString());
  EXPECT_TRUE(forms.count("Reference >> Authors >> Name") == 1);
  EXPECT_TRUE(forms.count("Reference >> Editors >> Name") == 1);
}

TEST_F(PathMapperTest, WildOneRunOfTwo) {
  auto mapped = MapPathToChains(rig_, "Reference",
                                Path("r.?A.?B.Last_Name"), std::nullopt);
  ASSERT_TRUE(mapped.ok());
  // Reference -> {Authors,Editors} -> Name -> Last_Name... but the run is
  // ?A.?B then Last_Name: interiors of length 2.
  ASSERT_EQ(mapped->alternatives.size(), 2u);
  for (const auto& c : mapped->alternatives) {
    EXPECT_EQ(c.names.size(), 4u);
    EXPECT_EQ(c.names.back(), "Last_Name");
  }
}

TEST_F(PathMapperTest, MixedWildAndAttr) {
  auto mapped = MapPathToChains(
      rig_, "Reference", Path("r.Authors.*X.First_Name"), std::nullopt);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->alternatives[0].ToString(),
            "Reference >> Authors > First_Name");
}

TEST_F(PathMapperTest, InvalidAttributeRejected) {
  auto r = MapPathToChains(rig_, "Reference", Path("r.Publisher.Name"),
                           std::nullopt);
  EXPECT_FALSE(r.ok());
  auto r2 = MapPathToChains(rig_, "Reference", Path("r.Nonexistent"),
                            std::nullopt);
  EXPECT_FALSE(r2.ok());
  // Valid names but no edge: Authors is not under Editors.
  auto r3 = MapPathToChains(rig_, "Reference", Path("r.Editors.Authors"),
                            std::nullopt);
  EXPECT_FALSE(r3.ok());
}

TEST_F(PathMapperTest, WildcardMustPrecedeAttribute) {
  PathExpr p;
  p.var = "r";
  p.steps.push_back(PathStep::WildStar("X"));
  EXPECT_FALSE(MapPathToChains(rig_, "Reference", p, std::nullopt).ok());
  PathExpr q;
  q.var = "r";
  q.steps.push_back(PathStep::WildOne("X"));
  EXPECT_FALSE(MapPathToChains(rig_, "Reference", q, std::nullopt).ok());
}

TEST_F(PathMapperTest, EmptyPathIsViewChain) {
  PathExpr p;
  p.var = "r";
  auto mapped = MapPathToChains(rig_, "Reference", p, std::nullopt);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->alternatives.size(), 1u);
  EXPECT_EQ(mapped->alternatives[0].ToString(), "Reference");
}

TEST_F(PathMapperTest, NavStepsExpandWildcards) {
  auto nav = MapPathToNavSteps(rig_, "Reference", Path("r.?A.Name"));
  ASSERT_TRUE(nav.ok());
  ASSERT_EQ(nav->size(), 2u);
  // Each alternative: [Attr(Authors|Editors), Attr(Name)].
  for (const auto& steps : *nav) {
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[1].name, "Name");
  }
  auto nav2 =
      MapPathToNavSteps(rig_, "Reference", Path("r.*X.Last_Name"));
  ASSERT_TRUE(nav2.ok());
  ASSERT_EQ(nav2->size(), 1u);
  ASSERT_EQ((*nav2)[0].size(), 2u);
  EXPECT_EQ((*nav2)[0][0].kind, NavStep::Kind::kAnyStar);
  EXPECT_EQ((*nav2)[0][1].name, "Last_Name");
}

}  // namespace
}  // namespace qof
