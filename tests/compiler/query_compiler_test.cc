#include "qof/compiler/query_compiler.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class QueryCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
    all_names_ = std::set<std::string>();
    for (const std::string& n : schema->IndexableNames()) {
      all_names_.insert(n);
    }
  }

  QueryPlan Compile(std::string_view fql,
                    const std::set<std::string>& indexed) {
    auto q = ParseFql(fql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    QueryCompiler compiler(&rig_, indexed, "Reference");
    auto plan = compiler.Compile(*q);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : QueryPlan{};
  }

  Rig rig_;
  std::set<std::string> all_names_;
};

TEST_F(QueryCompilerTest, FlagshipQueryFullIndexIsExact) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_FALSE(plan.trivially_empty);
  // The optimizer produced the §3.2 e2 form.
  EXPECT_EQ(plan.candidates->ToString(),
            "(Reference > (Authors > sigma(\"Chang\", Last_Name)))");
}

TEST_F(QueryCompilerTest, PartialIndexYieldsSupersetPlan) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      {"Reference", "Key", "Last_Name"});
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_FALSE(plan.exact);
  // §6.1 candidate expression (⊃d relaxes to ⊃: in the partial RIG the
  // edge Reference->Last_Name is the only path).
  EXPECT_EQ(plan.candidates->ToString(),
            "(Reference > sigma(\"Chang\", Last_Name))");
}

TEST_F(QueryCompilerTest, UnindexedViewFallsBack) {
  QueryPlan plan = Compile("SELECT r FROM References r",
                           {"Key", "Last_Name"});
  EXPECT_FALSE(plan.view_indexed);
  EXPECT_EQ(plan.candidates, nullptr);
}

TEST_F(QueryCompilerTest, NoWhereSelectsAllViewRegions) {
  QueryPlan plan = Compile("SELECT r FROM References r", all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.candidates->ToString(), "Reference");
}

TEST_F(QueryCompilerTest, TrivialQueryDetected) {
  // Key regions never contain Last_Name regions at any depth: the ⊃ link
  // from the wildcard has no RIG path (Prop. 3.3(ii), the paper's e3).
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Key.*X.Last_Name = \"x\"",
      all_names_);
  EXPECT_TRUE(plan.trivially_empty);
  EXPECT_EQ(plan.candidates, nullptr);
}

TEST_F(QueryCompilerTest, NonSchemaPathIsAnError) {
  // A plain attribute step that follows no RIG edge is a semantic error,
  // not an empty result.
  auto q = ParseFql(
      "SELECT r FROM References r WHERE r.Key.Last_Name = \"x\"");
  ASSERT_TRUE(q.ok());
  QueryCompiler compiler(&rig_, all_names_, "Reference");
  EXPECT_FALSE(compiler.Compile(*q).ok());
}

TEST_F(QueryCompilerTest, AndOrNotCombination) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Year = \"1982\" AND NOT "
      "r.Publisher = \"SIAM\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  std::string s = plan.candidates->ToString();
  EXPECT_NE(s.find("&"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST_F(QueryCompilerTest, NotOverInexactChildFallsBackToAll) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "
      "\"Chang\"",
      {"Reference", "Last_Name"});
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_FALSE(plan.exact);
  EXPECT_EQ(plan.candidates->ToString(), "Reference");
}

TEST_F(QueryCompilerTest, OrOfExactLeavesStaysExact) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE "
      "r.Authors.Name.Last_Name = \"Chang\" OR "
      "r.Editors.Name.Last_Name = \"Corliss\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.candidates->kind(), ExprKind::kUnion);
}

TEST_F(QueryCompilerTest, WildcardStarCompilesToPlainInclusion) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.candidates->ToString(),
            "(Reference > sigma(\"Chang\", Last_Name))");
}

TEST_F(QueryCompilerTest, WildcardOneCompilesToUnion) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.?A.Name.Last_Name = \"Chang\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_EQ(plan.candidates->kind(), ExprKind::kUnion);
}

TEST_F(QueryCompilerTest, PhraseLiteralCompilesToPhraseSelection) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Title = \"Solving Equations\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_NE(plan.candidates->ToString().find("phrase(\"Solving"),
            std::string::npos);
}

TEST_F(QueryCompilerTest, JoinPlanGetsAttrExpressions) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_FALSE(plan.exact);
  EXPECT_TRUE(plan.index_join);
  ASSERT_NE(plan.join_lhs_attrs, nullptr);
  ASSERT_NE(plan.join_rhs_attrs, nullptr);
  // Attr chains run bottom-up.
  EXPECT_EQ(plan.join_rhs_attrs->ToString(),
            "(Name < (Authors < Reference))");
}

TEST_F(QueryCompilerTest, JoinWithoutAttrIndexFallsBackToTwoPhase) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name",
      {"Reference", "Authors", "Editors"});
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_FALSE(plan.index_join);
}

TEST_F(QueryCompilerTest, ProjectionCompilesContainedChain) {
  QueryPlan plan = Compile(
      "SELECT r.Authors.Name.Last_Name FROM References r", all_names_);
  ASSERT_NE(plan.projection, nullptr);
  EXPECT_TRUE(plan.projection_exact);
  // §5.2's optimized projection: Last_Name ⊂ Authors ⊂ Reference.
  EXPECT_EQ(plan.projection->ToString(),
            "(Last_Name < (Authors < Reference))");
}

TEST_F(QueryCompilerTest, ProjectionOnPartialIndexFallsBack) {
  QueryPlan plan = Compile(
      "SELECT r.Authors.Name.Last_Name FROM References r",
      {"Reference", "Last_Name"});
  EXPECT_EQ(plan.projection, nullptr);
  EXPECT_FALSE(plan.projection_exact);
}

TEST_F(QueryCompilerTest, ContainsCompilesToContainsSelection) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Abstract CONTAINS \"Fortran\"",
      all_names_);
  ASSERT_NE(plan.candidates, nullptr);
  EXPECT_TRUE(plan.exact);
  EXPECT_NE(plan.candidates->ToString().find("contains(\"Fortran\""),
            std::string::npos);
}

TEST_F(QueryCompilerTest, MultiWordContainsUsesPhraseContainment) {
  auto q = ParseFql(
      "SELECT r FROM References r WHERE r.Abstract CONTAINS \"two "
      "words\"");
  ASSERT_TRUE(q.ok());
  QueryCompiler compiler(&rig_, all_names_, "Reference");
  auto plan = compiler.Compile(*q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->candidates->ToString().find("contains(\"two words\""),
            std::string::npos);
  // Empty/punctuation-only literals are rejected at parse time so the
  // baseline strategy agrees with the index paths.
  auto bad = ParseFql(
      "SELECT r FROM References r WHERE r.Abstract CONTAINS \"...\"");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST_F(QueryCompilerTest, NotesExplainCompilation) {
  QueryPlan plan = Compile(
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      all_names_);
  EXPECT_FALSE(plan.notes.empty());
}

}  // namespace
}  // namespace qof
