#include "qof/ir/passes.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qof/algebra/parser.h"
#include "qof/ir/ir.h"
#include "qof/region/region_index.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"

namespace qof {
namespace {

// A hand-tracked corpus whose region cardinalities are deliberately
// skewed (|A| = 2 < |B| = 4 < |C| = 6), so cost-based decisions (which
// intersect operand receives a pushed selection, how operands order) are
// predictable in the goldens. Every region spans one word.
class PassFixture {
 public:
  PassFixture() {
    // 12 words; regions tile them.
    //   A: words 0-1   B: words 2-5   C: words 6-11
    // "x" appears in A[0], B[0], C[0]; "y" in A[1], B[1], C[1].
    const std::vector<std::string> words = {"x",  "y",  "x",  "y",
                                            "b2", "b3", "x",  "y",
                                            "c2", "c3", "c4", "c5"};
    std::string text;
    std::vector<Region> spans;
    for (const std::string& w : words) {
      size_t start = text.size();
      text += w;
      spans.push_back({start, text.size()});
      text += " ";
    }
    EXPECT_TRUE(corpus_.AddDocument("d", text).ok());
    auto slice = [&](size_t from, size_t to) {
      std::vector<Region> out;
      for (size_t i = from; i < to; ++i) out.push_back(spans[i]);
      return RegionSet::FromUnsorted(std::move(out));
    };
    index_.Add("A", slice(0, 2));
    index_.Add("B", slice(2, 6));
    index_.Add("C", slice(6, 12));
    words_ = WordIndex::Build(corpus_);
  }

  IrProgram Lower(const char* text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    expr_keep_.push_back(*expr);
    return LowerToIr(expr_keep_.back().get(), nullptr, nullptr, nullptr);
  }

  const RegionIndex* index() { return &index_; }
  const WordIndex* words() { return &words_; }

 private:
  Corpus corpus_;
  RegionIndex index_;
  WordIndex words_;
  std::vector<RegionExprPtr> expr_keep_;
};

TEST(PassCseTest, DuplicateSubtreesMergeGolden) {
  PassFixture f;
  // Both union arms contain the identical (A > sigma("x", B)) subtree;
  // after CSE it exists once and both consumers reference it.
  IrProgram p = f.Lower(
      "(A > sigma(\"x\", B)) | ((A > sigma(\"x\", B)) & C)");
  PassCse(&p);
  EXPECT_EQ(p.Dump(),
            "%0 = load A\n"
            "%1 = load B\n"
            "%2 = select sigma(\"x\", %1)\n"
            "%3 = including %0 %2\n"
            "%4 = load C\n"
            "%5 = intersect %3 %4\n"
            "%6 = union %3 %5\n"
            "roots: candidates=%6\n");
}

TEST(PassCseTest, SharingCrossesRoots) {
  PassFixture f;
  auto cand = ParseRegionExpr("A > sigma(\"x\", B)");
  auto proj = ParseRegionExpr("C < (A > sigma(\"x\", B))");
  ASSERT_TRUE(cand.ok());
  ASSERT_TRUE(proj.ok());
  IrProgram p =
      LowerToIr(cand->get(), proj->get(), nullptr, nullptr);
  PassCse(&p);
  // The candidates root and the projection's right operand are the same
  // node after CSE.
  const IrNode& proj_node = p.nodes[p.projection];
  ASSERT_EQ(proj_node.op, IrOp::kIncluded);
  EXPECT_EQ(proj_node.inputs[1], p.candidates);
}

TEST(PassCseTest, InjectedBadCseMergesDistinctSelections) {
  PassFixture f;
  // sigma("x", B) and sigma("y", B) are different selections; the
  // planted bug keys selects without their word, so they merge — the
  // defect the fuzzer's IR leg exists to catch.
  IrProgram sound = f.Lower("sigma(\"x\", B) | sigma(\"y\", B)");
  PassCse(&sound, /*inject_bad_cse=*/false);
  ASSERT_EQ(sound.nodes[sound.candidates].inputs.size(), 2u);
  EXPECT_NE(sound.nodes[sound.candidates].inputs[0],
            sound.nodes[sound.candidates].inputs[1]);

  IrProgram bad = f.Lower("sigma(\"x\", B) | sigma(\"y\", B)");
  PassCse(&bad, /*inject_bad_cse=*/true);
  ASSERT_EQ(bad.nodes[bad.candidates].inputs.size(), 2u);
  EXPECT_EQ(bad.nodes[bad.candidates].inputs[0],
            bad.nodes[bad.candidates].inputs[1]);
}

TEST(PassPushdownTest, SelectSinksIntoCheapestIntersectOperandGolden) {
  PassFixture f;
  // |A| = 2 < |C| = 6: sigma over (C & A) sinks into A.
  IrProgram p = f.Lower("sigma(\"x\", C & A)");
  PassPushdown(&p, f.index(), f.words());
  EXPECT_EQ(p.Dump(),
            "%0 = load C  ; card~6 work~6\n"
            "%1 = load A  ; card~2 work~2\n"
            "%2 = select sigma(\"x\", %1)  ; card~2 work~4\n"
            "%3 = intersect %0 %2  ; card~2 work~18\n"
            "roots: candidates=%3\n");
}

TEST(PassPushdownTest, SelectSinksIntoDifferenceMinuendOnly) {
  PassFixture f;
  IrProgram p = f.Lower("sigma(\"x\", C - A)");
  PassPushdown(&p, f.index(), f.words());
  EXPECT_EQ(p.Dump(),
            "%0 = load C  ; card~6 work~6\n"
            "%1 = select sigma(\"x\", %0)  ; card~3 work~12\n"
            "%2 = load A  ; card~2 work~2\n"
            "%3 = difference %1 %2  ; card~3 work~19\n"
            "roots: candidates=%3\n");
}

TEST(PassPushdownTest, CorpusFreeSelectDistributesOverUnion) {
  PassFixture f;
  // starts_with never re-reads the corpus, so it may distribute over ∪
  // without changing governance byte accounting.
  IrProgram p = f.Lower("starts(\"x\", A | B)");
  PassPushdown(&p, f.index(), f.words());
  const IrNode& root = p.nodes[p.candidates];
  ASSERT_EQ(root.op, IrOp::kUnion);
  for (int input : root.inputs) {
    EXPECT_EQ(p.nodes[input].op, IrOp::kSelect);
    EXPECT_EQ(p.nodes[p.nodes[input].inputs[0]].op, IrOp::kLoad);
  }
}

TEST(PassPushdownTest, PhraseSelectStaysAboveUnion) {
  PassFixture f;
  // A multi-token phrase selection re-reads corpus bytes; distributing
  // it over ∪ would scan members twice and diverge the byte budget, so
  // it must not move.
  IrProgram p = f.Lower("phrase(\"x y\", A | B)");
  PassPushdown(&p, f.index(), f.words());
  EXPECT_EQ(p.nodes[p.candidates].op, IrOp::kSelect);
  EXPECT_EQ(p.nodes[p.nodes[p.candidates].inputs[0]].op, IrOp::kUnion);
}

TEST(PassPushdownTest, NeverThroughInnermost) {
  PassFixture f;
  IrProgram p = f.Lower("sigma(\"x\", innermost(A | B))");
  PassPushdown(&p, f.index(), f.words());
  EXPECT_EQ(p.nodes[p.candidates].op, IrOp::kSelect);
  EXPECT_EQ(p.nodes[p.nodes[p.candidates].inputs[0]].op,
            IrOp::kInnermost);
}

TEST(PassPushdownTest, SinksThroughInclusionLeftOperand) {
  PassFixture f;
  // sigma(C > A): members are C regions, so the selection filters the
  // left operand only.
  IrProgram p = f.Lower("sigma(\"x\", C > A)");
  PassPushdown(&p, f.index(), f.words());
  const IrNode& root = p.nodes[p.candidates];
  ASSERT_EQ(root.op, IrOp::kIncluding);
  EXPECT_EQ(p.nodes[root.inputs[0]].op, IrOp::kSelect);
  EXPECT_EQ(p.nodes[root.inputs[1]].op, IrOp::kLoad);
}

TEST(PassOrderTest, OperandsSortByEstimatedCardinalityGolden) {
  PassFixture f;
  // |C| = 6, |B| = 4, |A| = 2 → the n-ary intersect reorders to A B C.
  IrProgram p = f.Lower("C & B & A");
  PassOrderOperands(&p, f.index(), f.words());
  EXPECT_EQ(p.Dump(),
            "%0 = load A  ; card~2 work~2\n"
            "%1 = load B  ; card~4 work~4\n"
            "%2 = load C  ; card~6 work~6\n"
            "%3 = intersect %0 %1 %2  ; card~2 work~28\n"
            "roots: candidates=%3\n");
}

TEST(PassOrderTest, KeyBreaksTies) {
  PassFixture f;
  // Unknown names all estimate to zero cardinality; the canonical key
  // orders them deterministically.
  IrProgram p = f.Lower("Zq | Zp | Zr");
  PassOrderOperands(&p, f.index(), f.words());
  const IrNode& root = p.nodes[p.candidates];
  ASSERT_EQ(root.inputs.size(), 3u);
  EXPECT_EQ(p.nodes[root.inputs[0]].name, "Zp");
  EXPECT_EQ(p.nodes[root.inputs[1]].name, "Zq");
  EXPECT_EQ(p.nodes[root.inputs[2]].name, "Zr");
}

TEST(PassFuseTest, SelectChainFusesGolden) {
  PassFixture f;
  IrProgram p = f.Lower("sigma(\"x\", sigma(\"y\", C))");
  PassFuse(&p);
  EXPECT_EQ(p.Dump(),
            "%0 = load C\n"
            "%1 = fuse %0 :: sigma(\"y\", _) :: sigma(\"x\", _)\n"
            "roots: candidates=%1\n");
  // The fused node keeps the chain's canonical key, so it still shares
  // cache entries with the unfused plan.
  IrProgram unfused = f.Lower("sigma(\"x\", sigma(\"y\", C))");
  EXPECT_EQ(p.nodes[p.candidates].key,
            unfused.nodes[unfused.candidates].key);
}

TEST(PassFuseTest, ContainmentStagesFuseWithSelects) {
  PassFixture f;
  IrProgram p = f.Lower("sigma(\"x\", (B > A) )");
  PassFuse(&p);
  const IrNode& root = p.nodes[p.candidates];
  ASSERT_EQ(root.op, IrOp::kFusedChain);
  ASSERT_EQ(root.stages.size(), 2u);
  EXPECT_EQ(root.stages[0].kind, IrStage::Kind::kIncluding);
  EXPECT_EQ(root.stages[1].kind, IrStage::Kind::kSelect);
}

TEST(PassFuseTest, SharedNodesStayMaterialized) {
  PassFixture f;
  // sigma("y", C) feeds two consumers; fusing it into either chain would
  // recompute it, so it must survive as its own node.
  IrProgram p =
      f.Lower("sigma(\"x\", sigma(\"y\", C)) | (sigma(\"y\", C) & A)");
  PassCse(&p);
  PassFuse(&p);
  bool saw_shared_select = false;
  for (const IrNode& n : p.nodes) {
    saw_shared_select |= n.op == IrOp::kSelect;
  }
  EXPECT_TRUE(saw_shared_select) << p.Dump();
}

TEST(PassPipelineTest, FullPipelineIsDeterministic) {
  PassFixture f;
  IrPlanOptions options;
  IrProgram a = f.Lower("sigma(\"x\", C & A) | sigma(\"x\", C & A)");
  IrProgram b = f.Lower("sigma(\"x\", C & A) | sigma(\"x\", C & A)");
  std::vector<PassTrace> trace_a, trace_b;
  RunPasses(&a, options, f.index(), f.words(), &trace_a);
  RunPasses(&b, options, f.index(), f.words(), &trace_b);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].name, trace_b[i].name);
    EXPECT_EQ(trace_a[i].dump, trace_b[i].dump);
  }
  // lower + cse + pushdown + order + fuse + annotate.
  EXPECT_EQ(trace_a.size(), 6u);
}

TEST(PassPipelineTest, DisabledPassesAreSkipped) {
  PassFixture f;
  IrPlanOptions options;
  options.enable_cse = false;
  options.enable_fusion = false;
  IrProgram p = f.Lower("sigma(\"x\", C & A)");
  std::vector<PassTrace> trace;
  RunPasses(&p, options, f.index(), f.words(), &trace);
  ASSERT_EQ(trace.size(), 4u);  // lower, pushdown, order, annotate
  EXPECT_EQ(trace[1].name, "pushdown");
  EXPECT_EQ(trace[2].name, "order");
  EXPECT_EQ(trace[3].name, "annotate");
}

}  // namespace
}  // namespace qof
