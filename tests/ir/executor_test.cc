#include "qof/ir/executor.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "qof/algebra/evaluator.h"
#include "qof/algebra/parser.h"
#include "qof/cache/eval_cache.h"
#include "qof/engine/join.h"
#include "qof/exec/exec_context.h"
#include "qof/ir/ir.h"
#include "qof/ir/passes.h"
#include "qof/region/region_index.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"

namespace qof {
namespace {

// Mirrors the evaluator test's paper-shaped corpus: two references with
// authors/editors/names, giving nesting for ι/ω/⊃d and word collisions
// ("Chang" as author and editor) for selections.
class ExecFixture {
 public:
  ExecFixture() {
    BeginRegion("Reference");
    Raw("@R{ ");
    BeginRegion("Authors");
    Raw("AUTHORS \"");
    Name("Alice", "Chang");
    Raw(" and ");
    Name("Bob", "Smith");
    Raw("\"");
    EndRegion("Authors");
    Raw(" ");
    BeginRegion("Editors");
    Raw("EDITORS \"");
    Name("Carol", "Chang");
    Raw("\"");
    EndRegion("Editors");
    Raw(" }");
    EndRegion("Reference");
    Raw("  ");
    BeginRegion("Reference");
    Raw("@R{ ");
    BeginRegion("Authors");
    Raw("AUTHORS \"");
    Name("Dana", "Corliss");
    Raw("\"");
    EndRegion("Authors");
    Raw(" ");
    BeginRegion("Editors");
    Raw("EDITORS \"");
    Name("Eve", "Chang");
    Raw("\"");
    EndRegion("Editors");
    Raw(" }");
    EndRegion("Reference");

    EXPECT_TRUE(corpus_.AddDocument("refs.bib", text_).ok());
    for (auto& [name, regions] : spans_) {
      index_.Add(name, RegionSet::FromUnsorted(regions));
    }
    words_ = WordIndex::Build(corpus_);
  }

  // Evaluates `text` on both engines (optimized IR vs. tree) and expects
  // identical regions; returns the shared answer.
  RegionSet Both(const char* text, EvalStats* tree_stats = nullptr,
                 EvalStats* ir_stats = nullptr,
                 const IrPlanOptions& options = {}) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    ExprEvaluator tree(&index_, &words_, &corpus_);
    auto want = tree.Evaluate(**expr, tree_stats);
    EXPECT_TRUE(want.ok()) << want.status().ToString();

    keep_.push_back(*expr);
    IrProgram p =
        LowerToIr(keep_.back().get(), nullptr, nullptr, nullptr);
    RunPasses(&p, options, &index_, &words_);
    IrExecutor exec(&p, &index_, &words_, &corpus_);
    auto got = exec.EvaluateRoot(p.candidates, ir_stats);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    if (want.ok() && got.ok()) {
      EXPECT_EQ(want->regions(), got->regions()) << text;
    }
    return got.ok() ? *got : RegionSet();
  }

  const RegionIndex& index() const { return index_; }
  const WordIndex& words() const { return words_; }
  const Corpus& corpus() const { return corpus_; }

 private:
  void Raw(std::string_view s) { text_ += s; }
  void BeginRegion(const std::string& name) {
    open_.push_back({name, text_.size()});
  }
  void EndRegion(const std::string& name) {
    ASSERT_EQ(open_.back().first, name);
    spans_[name].push_back({open_.back().second, text_.size()});
    open_.pop_back();
  }
  void Name(const std::string& first, const std::string& last) {
    BeginRegion("Name");
    BeginRegion("First_Name");
    Raw(first);
    EndRegion("First_Name");
    Raw(" ");
    BeginRegion("Last_Name");
    Raw(last);
    EndRegion("Last_Name");
    EndRegion("Name");
  }

  std::string text_;
  std::vector<std::pair<std::string, uint64_t>> open_;
  std::map<std::string, std::vector<Region>> spans_;
  Corpus corpus_;
  RegionIndex index_;
  WordIndex words_;
  std::vector<RegionExprPtr> keep_;
};

TEST(IrExecutorTest, AgreesWithTreeOnABattery) {
  ExecFixture f;
  const char* exprs[] = {
      "Reference",
      "Reference > Authors > sigma(\"Chang\", Last_Name)",
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)",
      "(Reference > Authors > sigma(\"Chang\", Last_Name)) - "
      "(Reference > Editors > sigma(\"Chang\", Last_Name))",
      "(Name < Authors) | (Name < Editors)",
      "innermost(Name | Authors | Reference)",
      "outermost(Name | Authors | Reference)",
      "sigma(\"Chang\", Last_Name) | sigma(\"Smith\", Last_Name) | "
      "sigma(\"Corliss\", Last_Name)",
      "contains(\"Chang\", Name)",
      "starts(\"Cha\", Last_Name)",
      "phrase(\"Alice Chang\", Name)",
      "Last_Name < Name < Authors",
      "(Reference & Reference) | (Authors - Editors)",
  };
  for (const char* text : exprs) f.Both(text);
}

TEST(IrExecutorTest, StatsMatchTreeEvaluator) {
  ExecFixture f;
  // With every optimization off, the IR program is the tree reshaped;
  // governance counters must agree exactly.
  IrPlanOptions off;
  off.enable_cse = false;
  off.enable_pushdown = false;
  off.enable_ordering = false;
  off.enable_fusion = false;
  EvalStats tree, ir;
  f.Both(
      "(Reference > Authors > sigma(\"Chang\", Last_Name)) | "
      "(Reference > Editors > sigma(\"Chang\", Last_Name))",
      &tree, &ir, off);
  EXPECT_EQ(tree.set_ops, ir.set_ops);
  EXPECT_EQ(tree.select_ops, ir.select_ops);
  EXPECT_EQ(tree.simple_incl_ops, ir.simple_incl_ops);
  EXPECT_EQ(tree.direct_incl_ops, ir.direct_incl_ops);
  EXPECT_EQ(tree.regions_produced, ir.regions_produced);
  EXPECT_EQ(tree.max_intermediate, ir.max_intermediate);
}

TEST(IrExecutorTest, FusedChainMatchesUnfused) {
  ExecFixture f;
  IrPlanOptions fused;
  IrPlanOptions unfused;
  unfused.enable_fusion = false;
  EvalStats with, without;
  const char* text =
      "sigma(\"Chang\", starts(\"Cha\", Last_Name < Name))";
  RegionSet a = f.Both(text, nullptr, &with, fused);
  RegionSet b = f.Both(text, nullptr, &without, unfused);
  EXPECT_EQ(a.regions(), b.regions());
  // Charging parity: the fused chain charges per stage per batch, which
  // sums to the unfused totals.
  EXPECT_EQ(with.regions_produced, without.regions_produced);
}

TEST(IrExecutorTest, CacheEntriesCrossEngines) {
  ExecFixture f;
  auto expr = ParseRegionExpr(
      "Reference > Authors > sigma(\"Chang\", Last_Name)");
  ASSERT_TRUE(expr.ok());
  EvalCache cache(/*max_regions=*/4096, /*inject_stale=*/false);
  CacheEpoch epoch;

  // Tree evaluator populates the cache...
  ExprEvaluator tree(&f.index(), &f.words(), &f.corpus(),
                     DirectAlgorithm::kFast, nullptr, &cache, epoch);
  EvalStats warm;
  auto want = tree.Evaluate(**expr, &warm);
  ASSERT_TRUE(want.ok());
  EXPECT_GT(warm.cache_misses, 0u);

  // ...and the IR executor is served from it: node keys are the same
  // canonical serialization, so the composite root is a hit.
  IrProgram p = LowerToIr(expr->get(), nullptr, nullptr, nullptr);
  IrPlanOptions off;
  off.enable_cse = false;
  off.enable_pushdown = false;
  off.enable_ordering = false;
  off.enable_fusion = false;
  RunPasses(&p, off, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus(), nullptr,
                  &cache, epoch);
  EvalStats served;
  auto got = exec.EvaluateRoot(p.candidates, &served);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(want->regions(), got->regions());
  EXPECT_GT(served.cache_hits, 0u);
  EXPECT_EQ(served.cache_misses, 0u);
  // The root hit short-circuits evaluation: no set/inclusion work ran.
  EXPECT_EQ(served.total_ops(), 0u);
}

TEST(IrExecutorTest, SlotsMemoizeAcrossRoots) {
  ExecFixture f;
  auto cand = ParseRegionExpr("Reference > Authors");
  auto proj = ParseRegionExpr("Last_Name < (Reference > Authors)");
  ASSERT_TRUE(cand.ok());
  ASSERT_TRUE(proj.ok());
  IrProgram p =
      LowerToIr(cand->get(), proj->get(), nullptr, nullptr);
  IrPlanOptions options;
  RunPasses(&p, options, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus());
  EvalStats stats;
  auto candidates = exec.EvaluateRoot(p.candidates, &stats);
  ASSERT_TRUE(candidates.ok());
  uint64_t after_candidates = stats.total_ops();
  // The project root reuses the candidates slot: only the projection leg
  // and the (uncharged) kProject rung run now.
  auto projected = exec.EvaluateRoot(p.project, &stats);
  ASSERT_TRUE(projected.ok());
  EXPECT_GT(stats.total_ops(), after_candidates);
  for (const Region& r : projected->regions()) {
    bool inside = false;
    for (const Region& c : candidates->regions()) {
      inside |= c.start <= r.start && r.end <= c.end;
    }
    EXPECT_TRUE(inside);
  }
}

TEST(IrExecutorTest, GovernanceBudgetsTripLikeTree) {
  ExecFixture f;
  auto expr = ParseRegionExpr("(Name < Authors) | (Name < Editors)");
  ASSERT_TRUE(expr.ok());
  QueryOptions options;
  options.max_regions = 2;  // far below the intermediates produced
  ExecContext ctx(options);
  IrProgram p = LowerToIr(expr->get(), nullptr, nullptr, nullptr);
  IrPlanOptions plan;
  RunPasses(&p, plan, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus(), &ctx);
  auto r = exec.EvaluateRoot(p.candidates);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBudgetExhausted()) << r.status().ToString();
}

TEST(IrExecutorTest, UnknownNameFailsLikeTree) {
  ExecFixture f;
  auto expr = ParseRegionExpr("Nonexistent & Reference");
  ASSERT_TRUE(expr.ok());
  IrProgram p = LowerToIr(expr->get(), nullptr, nullptr, nullptr);
  IrPlanOptions options;
  RunPasses(&p, options, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus());
  auto r = exec.EvaluateRoot(p.candidates);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(IrExecutorTest, JoinRootUsesTheInstalledJoinFn) {
  ExecFixture f;
  auto cand = ParseRegionExpr("Reference");
  auto lhs = ParseRegionExpr("Last_Name < Authors");
  auto rhs = ParseRegionExpr("Last_Name < Editors");
  ASSERT_TRUE(cand.ok());
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  IrProgram p =
      LowerToIr(cand->get(), nullptr, lhs->get(), rhs->get());
  IrPlanOptions options;
  RunPasses(&p, options, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus());

  // Without a join function the kJoin root must fail loudly.
  auto bare = exec.EvaluateRoot(p.join);
  EXPECT_FALSE(bare.ok());

  exec.SetJoinFn([&](const RegionSet& candidates, const RegionSet& l,
                     const RegionSet& r) {
    return RunIndexJoin(f.corpus(), candidates, l, r);
  });
  auto joined = exec.EvaluateRoot(p.join);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Reference 1 has author Chang and editor Chang — it joins; reference
  // 2 (author Corliss, editor Chang) does not.
  EXPECT_EQ(joined->size(), 1u);
}

TEST(IrExecutorTest, PerOperatorTimingsAreRecorded) {
  ExecFixture f;
  auto expr = ParseRegionExpr(
      "Reference > Authors > sigma(\"Chang\", Last_Name)");
  ASSERT_TRUE(expr.ok());
  IrProgram p = LowerToIr(expr->get(), nullptr, nullptr, nullptr);
  IrPlanOptions options;
  RunPasses(&p, options, &f.index(), &f.words());
  IrExecutor exec(&p, &f.index(), &f.words(), &f.corpus());
  ASSERT_TRUE(exec.EvaluateRoot(p.candidates).ok());
  const IrOpTimings& timings = exec.timings();
  ASSERT_TRUE(timings.count("load"));
  EXPECT_EQ(timings.at("load").count, 3u);
  uint64_t total = 0;
  for (const auto& [op, t] : timings) total += t.count;
  EXPECT_EQ(total, p.nodes.size());
}

}  // namespace
}  // namespace qof
