#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

// One hand-written two-entry corpus (fixed text, fixed order) so the
// explain output — strategy, cost annotations, per-pass dumps — is
// byte-reproducible.
constexpr char kCorpus[] =
    "@INCOLLECTION{Ref0,\n"
    "  AUTHOR = \"Alice Chang and Bob Smith\",\n"
    "  TITLE = \"Queries on Files\",\n"
    "  BOOKTITLE = \"Files\",\n"
    "  YEAR = \"1994\",\n"
    "  EDITOR = \"Carol Chang\",\n"
    "  PUBLISHER = \"ACM Press\",\n"
    "  ADDRESS = \"Minneapolis\",\n"
    "  PAGES = \"1--10\",\n"
    "  REFERRED = \"[Ref1]\",\n"
    "  KEYWORDS = \"query optimization\",\n"
    "  ABSTRACT = \"Region algebra over structured files\"\n"
    "}\n"
    "@INCOLLECTION{Ref1,\n"
    "  AUTHOR = \"Dana Corliss\",\n"
    "  TITLE = \"Indexing Text\",\n"
    "  BOOKTITLE = \"Retrieval\",\n"
    "  YEAR = \"1992\",\n"
    "  EDITOR = \"Eve Chang\",\n"
    "  PUBLISHER = \"Springer\",\n"
    "  ADDRESS = \"Waterloo\",\n"
    "  PAGES = \"11--20\",\n"
    "  REFERRED = \"[Ref0]\",\n"
    "  KEYWORDS = \"inverted files\",\n"
    "  ABSTRACT = \"Posting lists and region indexes\"\n"
    "}\n";

constexpr char kQuery[] =
    "SELECT r FROM References r "
    "WHERE r.Authors.Name.Last_Name = \"Chang\"";

std::unique_ptr<FileQuerySystem> MakeSystem() {
  auto schema = BibtexSchema();
  EXPECT_TRUE(schema.ok());
  auto system = std::make_unique<FileQuerySystem>(*schema);
  EXPECT_TRUE(system->AddFile("refs.bib", kCorpus).ok());
  EXPECT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());
  return system;
}

TEST(ExplainGoldenTest, ExplainQueryIsDeterministic) {
  auto a = MakeSystem();
  auto b = MakeSystem();
  auto ea = a->ExplainQuery(kQuery);
  auto eb = b->ExplainQuery(kQuery);
  ASSERT_TRUE(ea.ok()) << ea.status().ToString();
  ASSERT_TRUE(eb.ok()) << eb.status().ToString();
  EXPECT_EQ(*ea, *eb);
  // Repeated calls on one system are stable too (no hidden state).
  auto again = a->ExplainQuery(kQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*ea, *again);
}

TEST(ExplainGoldenTest, PipelineSectionGolden) {
  auto system_owner = MakeSystem();
  FileQuerySystem& system = *system_owner;
  auto explained = system.ExplainQuery(kQuery);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  size_t at = explained->find("\nIR pipeline:\n");
  ASSERT_NE(at, std::string::npos) << *explained;
  EXPECT_EQ(explained->substr(at),
            "\nIR pipeline:\n"
            "-- after lower --\n"
            "%0 = load Reference\n"
            "%1 = load Authors\n"
            "%2 = load Last_Name\n"
            "%3 = select sigma(\"Chang\", %2)\n"
            "%4 = including %1 %3\n"
            "%5 = including %0 %4\n"
            "roots: candidates=%5\n"
            "-- after cse --\n"
            "%0 = load Reference\n"
            "%1 = load Authors\n"
            "%2 = load Last_Name\n"
            "%3 = select sigma(\"Chang\", %2)\n"
            "%4 = including %1 %3\n"
            "%5 = including %0 %4\n"
            "roots: candidates=%5\n"
            "-- after pushdown --\n"
            "%0 = load Reference  ; card~2 work~2\n"
            "%1 = load Authors  ; card~2 work~2\n"
            "%2 = load Last_Name  ; card~5 work~5\n"
            "%3 = select sigma(\"Chang\", %2)  ; card~3 work~10\n"
            "%4 = including %1 %3  ; card~2 work~17\n"
            "%5 = including %0 %4  ; card~2 work~23\n"
            "roots: candidates=%5\n"
            "-- after order --\n"
            "%0 = load Reference  ; card~2 work~2\n"
            "%1 = load Authors  ; card~2 work~2\n"
            "%2 = load Last_Name  ; card~5 work~5\n"
            "%3 = select sigma(\"Chang\", %2)  ; card~3 work~10\n"
            "%4 = including %1 %3  ; card~2 work~17\n"
            "%5 = including %0 %4  ; card~2 work~23\n"
            "roots: candidates=%5\n"
            "-- after fuse --\n"
            "%0 = load Reference  ; card~2 work~2\n"
            "%1 = load Authors  ; card~2 work~2\n"
            "%2 = load Last_Name  ; card~5 work~5\n"
            "%3 = select sigma(\"Chang\", %2)  ; card~3 work~10\n"
            "%4 = including %1 %3  ; card~2 work~17\n"
            "%5 = including %0 %4  ; card~2 work~23\n"
            "roots: candidates=%5\n"
            "-- after annotate --\n"
            "%0 = load Reference  ; card~2 work~2\n"
            "%1 = load Authors  ; card~2 work~2\n"
            "%2 = load Last_Name  ; card~5 work~5\n"
            "%3 = select sigma(\"Chang\", %2)  ; card~3 work~10\n"
            "%4 = including %1 %3  ; card~2 work~17\n"
            "%5 = including %0 %4  ; card~2 work~23\n"
            "roots: candidates=%5\n");
}

TEST(ExplainGoldenTest, DisabledPassesShrinkThePipeline) {
  auto system_owner = MakeSystem();
  FileQuerySystem& system = *system_owner;
  IrPlanOptions options;
  options.enable_fusion = false;
  options.enable_cse = false;
  system.SetIrOptions(options);
  auto explained = system.ExplainQuery(kQuery);
  ASSERT_TRUE(explained.ok());
  EXPECT_EQ(explained->find("-- after cse --"), std::string::npos);
  EXPECT_EQ(explained->find("-- after fuse --"), std::string::npos);
  EXPECT_NE(explained->find("-- after pushdown --"), std::string::npos);
}

TEST(EngineSelectionTest, UseIrFlagPicksTheEngine) {
  auto system_owner = MakeSystem();
  FileQuerySystem& system = *system_owner;
  QueryOptions ir_engine;
  ir_engine.use_ir = true;
  QueryOptions tree_engine;
  tree_engine.use_ir = false;

  auto ir = system.Execute(kQuery, ExecutionMode::kAuto, ir_engine);
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  EXPECT_EQ(ir->stats.engine, "ir");
  EXPECT_FALSE(ir->stats.op_timings.empty());

  auto tree = system.Execute(kQuery, ExecutionMode::kAuto, tree_engine);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->stats.engine, "tree");
  EXPECT_TRUE(tree->stats.op_timings.empty());

  EXPECT_EQ(ir->regions, tree->regions);
  EXPECT_EQ(ir->RenderedValues(), tree->RenderedValues());
}

TEST(EngineSelectionTest, BaselineReportsNoEngine) {
  auto system_owner = MakeSystem();
  FileQuerySystem& system = *system_owner;
  auto baseline =
      system.Execute(kQuery, ExecutionMode::kBaseline, QueryOptions());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->stats.engine, "");
}

}  // namespace
}  // namespace qof
