#include "qof/ir/ir.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "qof/algebra/parser.h"

namespace qof {
namespace {

RegionExprPtr Parse(const char* text) {
  auto expr = ParseRegionExpr(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  return expr.ok() ? *expr : nullptr;
}

const IrNode& Root(const IrProgram& p) { return p.nodes[p.candidates]; }

TEST(LoweringTest, NestedBinaryOpsFlattenToNary) {
  // ((A ∪ B) ∪ C) lowers to one 3-input kUnion; same for ∩ and −.
  RegionExprPtr u = Parse("A | B | C");
  IrProgram p = LowerToIr(u.get(), nullptr, nullptr, nullptr);
  EXPECT_EQ(Root(p).op, IrOp::kUnion);
  EXPECT_EQ(Root(p).inputs.size(), 3u);

  RegionExprPtr i = Parse("A & B & C");
  p = LowerToIr(i.get(), nullptr, nullptr, nullptr);
  EXPECT_EQ(Root(p).op, IrOp::kIntersect);
  EXPECT_EQ(Root(p).inputs.size(), 3u);

  RegionExprPtr d = Parse("A - B - C");
  p = LowerToIr(d.get(), nullptr, nullptr, nullptr);
  EXPECT_EQ(Root(p).op, IrOp::kDifference);
  EXPECT_EQ(Root(p).inputs.size(), 3u);
}

TEST(LoweringTest, RightNestedUnionFlattensToLeftFoldKey) {
  // ∪/∩ are associative, so right-nested spines flatten too; the node
  // key is the left-fold serialization of the flattened operand list
  // (the same key a left-nested tree would produce for the same set).
  RegionExprPtr u = Parse("A | (B | C)");
  IrProgram p = LowerToIr(u.get(), nullptr, nullptr, nullptr);
  ASSERT_EQ(Root(p).op, IrOp::kUnion);
  EXPECT_EQ(Root(p).inputs.size(), 3u);
  EXPECT_EQ(Root(p).key, "((A | B) | C)");
  // − is not associative: only the left spine flattens, and a nested
  // right operand stays its own node.
  RegionExprPtr d = Parse("A - (B - C)");
  p = LowerToIr(d.get(), nullptr, nullptr, nullptr);
  ASSERT_EQ(Root(p).op, IrOp::kDifference);
  ASSERT_EQ(Root(p).inputs.size(), 2u);
  EXPECT_EQ(p.nodes[Root(p).inputs[1]].op, IrOp::kDifference);
}

TEST(LoweringTest, KeysMatchTreeSerialization) {
  // Node keys are the canonical RegionExpr serialization, which is what
  // lets IR results share EvalCache entries with the tree evaluator.
  const char* text = "(A > sigma(\"x\", B)) & C";
  RegionExprPtr e = Parse(text);
  IrProgram p = LowerToIr(e.get(), nullptr, nullptr, nullptr);
  EXPECT_EQ(Root(p).key, e->ToString());
}

TEST(LoweringTest, TopologicalOrderAndRoots) {
  RegionExprPtr cand = Parse("A > sigma(\"x\", B)");
  RegionExprPtr proj = Parse("C < A");
  IrProgram p = LowerToIr(cand.get(), proj.get(), nullptr, nullptr);
  ASSERT_GE(p.candidates, 0);
  ASSERT_GE(p.projection, 0);
  ASSERT_GE(p.project, 0);
  EXPECT_EQ(p.join, -1);
  EXPECT_EQ(p.nodes[p.project].op, IrOp::kProject);
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    for (int input : p.nodes[i].inputs) {
      EXPECT_LT(input, static_cast<int>(i));
      EXPECT_GE(input, 0);
    }
  }
}

TEST(LoweringTest, JoinLegsLowerIntoOneProgram) {
  RegionExprPtr cand = Parse("A");
  RegionExprPtr lhs = Parse("B < A");
  RegionExprPtr rhs = Parse("C < A");
  IrProgram p = LowerToIr(cand.get(), nullptr, lhs.get(), rhs.get());
  ASSERT_GE(p.join, 0);
  const IrNode& join = p.nodes[p.join];
  EXPECT_EQ(join.op, IrOp::kJoin);
  ASSERT_EQ(join.inputs.size(), 3u);
  EXPECT_EQ(join.inputs[0], p.candidates);
  EXPECT_EQ(join.inputs[1], p.join_lhs);
  EXPECT_EQ(join.inputs[2], p.join_rhs);
}

TEST(LoweringTest, CanonicalizeDropsDeadNodes) {
  RegionExprPtr cand = Parse("A | B");
  IrProgram p = LowerToIr(cand.get(), nullptr, nullptr, nullptr);
  // Graft an unreachable node and canonicalize: it must disappear and
  // the root must still evaluate the same expression.
  IrNode dead;
  dead.op = IrOp::kLoad;
  dead.name = "Zombie";
  p.nodes.push_back(dead);
  std::string before = Root(p).key;
  Canonicalize(&p);
  EXPECT_EQ(Root(p).key, before);
  for (const IrNode& n : p.nodes) EXPECT_NE(n.name, "Zombie");
}

TEST(LoweringTest, DumpIsDeterministic) {
  RegionExprPtr cand = Parse("(A > sigma(\"x\", B)) & C");
  IrProgram a = LowerToIr(cand.get(), nullptr, nullptr, nullptr);
  IrProgram b = LowerToIr(cand.get(), nullptr, nullptr, nullptr);
  EXPECT_EQ(a.Dump(), b.Dump());
  EXPECT_NE(a.Dump().find("roots: candidates="), std::string::npos);
}

}  // namespace
}  // namespace qof
