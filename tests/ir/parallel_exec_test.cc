// Determinism battery for morsel-driven parallel IR execution: results
// must be byte-identical across exec_workers ∈ {1, 2, 4, 8} × every
// execution strategy × cache off/on, on three grammar-model corpora
// (the bench grammar plus a recursion/ambiguity shape and a tuple-chain
// shape), with the morsel grain forced low so the range-split, the
// wavefront scheduler, and the per-range merges all actually run.
// Also: cooperative cancellation from a second thread mid-query,
// governance budgets surfacing exactly one typed error, and the
// worker × prefetch grid on a paged store. Built as its own target so
// the CI ThreadSanitizer leg can run just this battery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qof/engine/system.h"
#include "qof/fuzz/grammar_model.h"
#include "qof/schema/schema_text.h"

namespace qof {
namespace {

struct Grammar {
  std::string name;
  std::string schema_text;
  std::vector<std::pair<std::string, std::string>> docs;
  std::vector<std::string> queries;
};

/// Grammar 1: the benchmark schema (leaf + shared collection + tuple
/// collection + recursion) with Zipf-skewed words — the shape
/// bench_parallel_exec measures.
Grammar BenchGrammar() {
  BenchCorpusSpec spec;
  spec.seed = 11;
  spec.target_bytes = 96 << 10;
  spec.zipf_s = 1.1;
  spec.objects_per_doc = 128;
  BenchCorpus corpus = MakeBenchCorpus(spec);
  return Grammar{
      "bench",
      corpus.schema_text,
      std::move(corpus.docs),
      {
          "SELECT x FROM Obj x WHERE x.Alpha = \"zulu\"",
          "SELECT x FROM Obj x WHERE x.Beta.ItemA CONTAINS \"apple\"",
          "SELECT x FROM Obj x WHERE x.Gamma.ItemB.ItemBKey = \"zulu\" "
          "OR x.Alpha = \"falcon\"",
          "SELECT x.Alpha FROM Obj x WHERE "
          "x.Beta.ItemA CONTAINS \"zulu\" AND x.Alpha = \"harbor\"",
      }};
}

/// Grammar 2: two collection fields sharing one sub (the §6.3
/// ambiguity shape) plus recursion — n-ary ∪/∩ over same-named regions.
Grammar AmbiguityGrammar() {
  SchemaModel schema;
  SubSpec item;
  item.name = "ItemA";
  item.leaf = LeafKind::kUntil;
  schema.subs.push_back(item);
  for (const char* name : {"Alpha", "Beta"}) {
    FieldSpec f;
    f.kind = FieldSpec::Kind::kSet;
    f.name = name;
    f.sub = 0;
    f.min_count = 1;
    schema.fields.push_back(f);
  }
  FieldSpec nest;
  nest.kind = FieldSpec::Kind::kRecurse;
  nest.name = "Nest";
  schema.fields.push_back(nest);

  CorpusModel corpus;
  corpus.doc_objects = {30, 30};
  corpus.content_seed = 7;
  corpus.max_depth = 2;
  corpus.max_items = 3;
  corpus.probe_rate = 0.3;
  corpus.scale = 4;  // the datagen scale knob: 120 objects per doc

  return Grammar{
      "ambiguity",
      schema.Render(),
      RenderDocs(schema, corpus),
      {
          "SELECT x FROM Obj x WHERE x.Alpha.ItemA CONTAINS \"zulu\"",
          "SELECT x FROM Obj x WHERE x.Alpha.ItemA = \"zulu\" "
          "OR x.Beta.ItemA = \"zulu\"",
          "SELECT x FROM Obj x WHERE x.Alpha.ItemA CONTAINS \"cedar\" "
          "AND x.Beta.ItemA CONTAINS \"zulu\"",
      }};
}

/// Grammar 3: a tuple collection (multi-level chains) next to leaves —
/// fused select/containment chains over key/value sinks.
Grammar TupleGrammar() {
  SchemaModel schema;
  SubSpec pair;
  pair.name = "ItemA";
  pair.tuple = true;
  pair.key_leaf = LeafKind::kWord;
  pair.val_leaf = LeafKind::kUntil;
  schema.subs.push_back(pair);
  FieldSpec alpha;
  alpha.kind = FieldSpec::Kind::kLeaf;
  alpha.name = "Alpha";
  alpha.leaf = LeafKind::kWord;
  schema.fields.push_back(alpha);
  FieldSpec beta;
  beta.kind = FieldSpec::Kind::kSet;
  beta.name = "Beta";
  beta.sub = 0;
  beta.min_count = 1;
  schema.fields.push_back(beta);

  CorpusModel corpus;
  corpus.doc_objects = {50};
  corpus.content_seed = 13;
  corpus.max_items = 4;
  corpus.probe_rate = 0.25;
  corpus.scale = 3;

  return Grammar{
      "tuple",
      schema.Render(),
      RenderDocs(schema, corpus),
      {
          "SELECT x FROM Obj x WHERE x.Beta.ItemA.ItemAKey = \"zulu\"",
          "SELECT x.Alpha FROM Obj x WHERE "
          "x.Beta.ItemA.ItemAVal CONTAINS \"zulu\" AND "
          "x.Alpha = \"zulu\"",
          "SELECT x FROM Obj x WHERE x.Alpha = \"grove\" "
          "OR x.Beta.ItemA.ItemAKey = \"ember\"",
      }};
}

const std::vector<Grammar>& Grammars() {
  static const std::vector<Grammar>* kGrammars = new std::vector<Grammar>{
      BenchGrammar(), AmbiguityGrammar(), TupleGrammar()};
  return *kGrammars;
}

std::unique_ptr<FileQuerySystem> MakeSystem(const Grammar& g,
                                            bool cache_on) {
  auto schema = ParseSchemaText(g.schema_text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  auto system = std::make_unique<FileQuerySystem>(*schema);
  system->SetParallelism(1);  // index build stays serial and cheap
  if (cache_on) system->SetCacheOptions(CacheOptions::Enabled());
  for (const auto& [name, text] : g.docs) {
    EXPECT_TRUE(system->AddFile(name, text).ok());
  }
  EXPECT_TRUE(system->BuildIndexes(IndexSpec::Full()).ok());
  IrPlanOptions knobs;
  knobs.morsel_grain = 2;  // force range splits on these small corpora
  system->SetIrOptions(knobs);
  return system;
}

/// One run's observable bytes: status identity, regions, rendered
/// values, and the cache-invariant candidate count.
struct Observed {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::vector<Region> regions;
  std::vector<std::string> values;
  uint64_t candidates = 0;
};

Observed Observe(const Result<QueryResult>& r) {
  Observed out;
  out.ok = r.ok();
  if (!r.ok()) {
    out.code = r.status().code();
    return out;
  }
  out.regions = r->regions;
  out.values = r->RenderedValues();
  out.candidates = r->stats.candidates;
  return out;
}

void ExpectSame(const Observed& want, const Observed& got,
                const std::string& label) {
  ASSERT_EQ(want.ok, got.ok) << label;
  if (!want.ok) {
    EXPECT_EQ(static_cast<int>(want.code), static_cast<int>(got.code))
        << label;
    return;
  }
  EXPECT_EQ(want.regions, got.regions) << label;
  EXPECT_EQ(want.values, got.values) << label;
  EXPECT_EQ(want.candidates, got.candidates) << label;
}

TEST(ParallelExecTest, ByteIdentityAcrossWorkerCountsAndStrategies) {
  const ExecutionMode kModes[] = {ExecutionMode::kAuto,
                                  ExecutionMode::kIndexOnly,
                                  ExecutionMode::kTwoPhase,
                                  ExecutionMode::kBaseline};
  for (const Grammar& g : Grammars()) {
    for (bool cache_on : {false, true}) {
      auto system = MakeSystem(g, cache_on);
      for (const std::string& fql : g.queries) {
        for (ExecutionMode mode : kModes) {
          QueryOptions serial;
          serial.use_ir = true;
          Observed base = Observe(system->Execute(fql, mode, serial));
          for (int workers : {2, 4, 8}) {
            QueryOptions par = serial;
            par.exec_workers = workers;
            Observed got = Observe(system->Execute(fql, mode, par));
            ExpectSame(base, got,
                       g.name + " mode=" + std::to_string(int(mode)) +
                           " cache=" + (cache_on ? "on" : "off") +
                           " w=" + std::to_string(workers) + ": " + fql);
          }
        }
      }
    }
  }
}

TEST(ParallelExecTest, DiskWorkerPrefetchGridMatchesMemoryBaseline) {
  const Grammar& g = Grammars()[0];  // the bench grammar, largest corpus
  auto mem = MakeSystem(g, /*cache_on=*/false);
  const std::string path = "/tmp/qof-parallel-exec-test-" +
                           std::to_string(::getpid()) + ".qofstore";
  ASSERT_TRUE(mem->SaveStore(path, /*page_size=*/256).ok());

  auto schema = ParseSchemaText(g.schema_text);
  ASSERT_TRUE(schema.ok());
  FileQuerySystem disk(*schema);
  disk.SetParallelism(1);
  for (const auto& [name, text] : g.docs) {
    ASSERT_TRUE(disk.AddFile(name, text).ok());
  }
  ASSERT_TRUE(disk.OpenStore(path, PagedStoreOptions{}).ok());
  IrPlanOptions knobs;
  knobs.morsel_grain = 2;
  disk.SetIrOptions(knobs);

  for (const std::string& fql : g.queries) {
    QueryOptions serial;
    serial.use_ir = true;
    Observed base = Observe(mem->Execute(fql, ExecutionMode::kAuto, serial));
    for (int workers : {1, 2, 4, 8}) {
      for (bool prefetch : {true, false}) {
        QueryOptions par = serial;
        par.exec_workers = workers;
        par.prefetch = prefetch;
        Observed got = Observe(disk.Execute(fql, ExecutionMode::kAuto, par));
        ExpectSame(base, got,
                   "disk w=" + std::to_string(workers) +
                       (prefetch ? " pf=on" : " pf=off") + ": " + fql);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ParallelExecTest, PreCancelledQueryReturnsCancelled) {
  auto system = MakeSystem(Grammars()[1], /*cache_on=*/false);
  QueryOptions options;
  options.use_ir = true;
  options.exec_workers = 4;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->Cancel();
  auto r = system->Execute(Grammars()[1].queries[0], ExecutionMode::kAuto,
                           options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST(ParallelExecTest, CancellationFromSecondThreadMidMorselIsClean) {
  // Repeatedly race a cancel against a parallel query. Whatever morsel
  // or wave the cancel lands in, the query must either complete with
  // the serial answer or unwind with exactly the kCancelled typed error
  // — and the system must stay fully usable afterwards.
  const Grammar& g = Grammars()[0];
  auto system = MakeSystem(g, /*cache_on=*/false);
  QueryOptions serial;
  serial.use_ir = true;
  Observed base =
      Observe(system->Execute(g.queries[1], ExecutionMode::kAuto, serial));

  for (int round = 0; round < 16; ++round) {
    QueryOptions par = serial;
    par.exec_workers = 4;
    par.cancel = std::make_shared<CancelToken>();
    std::atomic<bool> go{false};
    std::thread canceller([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      // A tiny, round-varying delay shifts which morsel the cancel
      // interrupts across rounds.
      std::atomic<int> spin{0};
      while (spin.fetch_add(1, std::memory_order_relaxed) < round * 500) {
      }
      par.cancel->Cancel();
    });
    go.store(true, std::memory_order_release);
    auto r = system->Execute(g.queries[1], ExecutionMode::kAuto, par);
    canceller.join();
    if (r.ok()) {
      ExpectSame(base, Observe(r), "cancel race round survived");
    } else {
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
    }
  }

  // The system is not poisoned: the same query still answers correctly.
  ExpectSame(base,
             Observe(system->Execute(g.queries[1], ExecutionMode::kAuto,
                                     serial)),
             "after cancel races");
}

TEST(ParallelExecTest, BudgetExhaustionSurfacesOneTypedError) {
  // A region budget far below the query's intermediate sizes must trip
  // inside the morsel fold on some worker; the caller sees exactly one
  // error and it is the typed kBudgetExhausted — not an Internal
  // "skipped" placeholder from an unclaimed sibling morsel.
  const Grammar& g = Grammars()[0];
  auto system = MakeSystem(g, /*cache_on=*/false);
  for (int workers : {2, 4, 8}) {
    QueryOptions options;
    options.use_ir = true;
    options.exec_workers = workers;
    options.max_regions = 1;
    auto r =
        system->Execute(g.queries[1], ExecutionMode::kTwoPhase, options);
    ASSERT_FALSE(r.ok()) << "w=" << workers;
    EXPECT_TRUE(r.status().IsBudgetExhausted())
        << "w=" << workers << ": " << r.status().ToString();
  }
  // Ungoverned, the same query still runs to completion.
  QueryOptions clean;
  clean.use_ir = true;
  clean.exec_workers = 4;
  EXPECT_TRUE(
      system->Execute(g.queries[1], ExecutionMode::kTwoPhase, clean).ok());
}

}  // namespace
}  // namespace qof
