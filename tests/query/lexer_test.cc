#include "qof/query/lexer.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

std::vector<FqlTokenKind> Kinds(std::string_view s) {
  auto r = LexFql(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<FqlTokenKind> out;
  if (r.ok()) {
    for (const FqlToken& t : *r) out.push_back(t.kind);
  }
  return out;
}

TEST(FqlLexerTest, KeywordsCaseInsensitive) {
  auto kinds = Kinds("SELECT select SeLeCt FROM where AND or NOT contains");
  EXPECT_EQ(kinds,
            (std::vector<FqlTokenKind>{
                FqlTokenKind::kSelect, FqlTokenKind::kSelect,
                FqlTokenKind::kSelect, FqlTokenKind::kFrom,
                FqlTokenKind::kWhere, FqlTokenKind::kAnd,
                FqlTokenKind::kOr, FqlTokenKind::kNot,
                FqlTokenKind::kContains, FqlTokenKind::kEnd}));
}

TEST(FqlLexerTest, IdentifiersKeepCase) {
  auto r = LexFql("Last_Name references");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, FqlTokenKind::kIdent);
  EXPECT_EQ((*r)[0].text, "Last_Name");
  EXPECT_EQ((*r)[1].text, "references");
}

TEST(FqlLexerTest, SymbolsAndStrings) {
  auto r = LexFql("r.Authors = \"Chang Lee\" (*X) ?Y");
  ASSERT_TRUE(r.ok());
  std::vector<FqlTokenKind> kinds;
  for (const FqlToken& t : *r) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<FqlTokenKind>{
                       FqlTokenKind::kIdent, FqlTokenKind::kDot,
                       FqlTokenKind::kIdent, FqlTokenKind::kEquals,
                       FqlTokenKind::kString, FqlTokenKind::kLParen,
                       FqlTokenKind::kStar, FqlTokenKind::kIdent,
                       FqlTokenKind::kRParen, FqlTokenKind::kQuestion,
                       FqlTokenKind::kIdent, FqlTokenKind::kEnd}));
  EXPECT_EQ((*r)[4].text, "Chang Lee");
}

TEST(FqlLexerTest, OffsetsReported) {
  auto r = LexFql("SELECT r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].offset, 0u);
  EXPECT_EQ((*r)[1].offset, 7u);
}

TEST(FqlLexerTest, Errors) {
  EXPECT_FALSE(LexFql("\"unterminated").ok());
  EXPECT_FALSE(LexFql("a # b").ok());
  EXPECT_FALSE(LexFql("a > b").ok());
}

TEST(FqlLexerTest, EmptyInputIsJustEnd) {
  auto r = LexFql("");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].kind, FqlTokenKind::kEnd);
}

}  // namespace
}  // namespace qof
