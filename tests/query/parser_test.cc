#include "qof/query/parser.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

SelectQuery Parse(std::string_view s) {
  auto r = ParseFql(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << s;
  return r.ok() ? *r : SelectQuery{};
}

TEST(FqlParserTest, PaperFlagshipQuery) {
  SelectQuery q = Parse(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(q.view, "References");
  EXPECT_EQ(q.var, "r");
  EXPECT_FALSE(q.IsProjection());
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), Condition::Kind::kEqualsLiteral);
  EXPECT_EQ(q.where->literal(), "Chang");
  EXPECT_EQ(q.where->path().ToString(), "r.Authors.Name.Last_Name");
}

TEST(FqlParserTest, ProjectionQuery) {
  SelectQuery q =
      Parse("SELECT r.Authors.Name.Last_Name FROM References r");
  EXPECT_TRUE(q.IsProjection());
  EXPECT_EQ(q.target.steps.size(), 3u);
  EXPECT_EQ(q.where, nullptr);
}

TEST(FqlParserTest, WildcardStar) {
  SelectQuery q = Parse(
      "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"");
  ASSERT_NE(q.where, nullptr);
  const PathExpr& p = q.where->path();
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].kind, PathStep::Kind::kWildStar);
  EXPECT_EQ(p.steps[0].name, "X");
  EXPECT_EQ(p.steps[1].kind, PathStep::Kind::kAttr);
}

TEST(FqlParserTest, WildcardOne) {
  SelectQuery q = Parse(
      "SELECT r FROM References r WHERE r.?X1.?X2.Last_Name = \"Chang\"");
  const PathExpr& p = q.where->path();
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].kind, PathStep::Kind::kWildOne);
  EXPECT_EQ(p.steps[1].kind, PathStep::Kind::kWildOne);
  EXPECT_EQ(p.ToString(), "r.?X1.?X2.Last_Name");
}

TEST(FqlParserTest, JoinPredicate) {
  SelectQuery q = Parse(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name = r.Authors.Name");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), Condition::Kind::kEqualsPath);
  EXPECT_EQ(q.where->path().ToString(), "r.Editors.Name");
  EXPECT_EQ(q.where->rhs_path().ToString(), "r.Authors.Name");
}

TEST(FqlParserTest, BooleanStructureAndPrecedence) {
  SelectQuery q = Parse(
      "SELECT r FROM References r WHERE "
      "r.Year = \"1982\" OR r.Year = \"1983\" AND NOT r.Publisher = "
      "\"SIAM\"");
  // OR is lowest: Or(eq, And(eq, Not(eq))).
  ASSERT_EQ(q.where->kind(), Condition::Kind::kOr);
  EXPECT_EQ(q.where->left()->kind(), Condition::Kind::kEqualsLiteral);
  ASSERT_EQ(q.where->right()->kind(), Condition::Kind::kAnd);
  EXPECT_EQ(q.where->right()->right()->kind(), Condition::Kind::kNot);
}

TEST(FqlParserTest, ParenthesesOverridePrecedence) {
  SelectQuery q = Parse(
      "SELECT r FROM References r WHERE "
      "(r.Year = \"1982\" OR r.Year = \"1983\") AND r.Publisher = "
      "\"SIAM\"");
  ASSERT_EQ(q.where->kind(), Condition::Kind::kAnd);
  EXPECT_EQ(q.where->left()->kind(), Condition::Kind::kOr);
}

TEST(FqlParserTest, ContainsPredicate) {
  SelectQuery q = Parse(
      "SELECT r FROM References r WHERE r.Abstract CONTAINS \"Fortran\"");
  EXPECT_EQ(q.where->kind(), Condition::Kind::kContainsWord);
  EXPECT_EQ(q.where->literal(), "Fortran");
}

TEST(FqlParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r.Key FROM References r",
      "SELECT r FROM References r WHERE (r.Year = \"1982\" AND "
      "r.Publisher = \"SIAM\")",
      "SELECT m FROM Messages m WHERE m.*X.Addr_Name = \"Dana Chang\"",
  };
  for (const char* text : queries) {
    SelectQuery q = Parse(text);
    SelectQuery round = Parse(q.ToString());
    EXPECT_EQ(round.ToString(), q.ToString()) << text;
  }
}

TEST(FqlParserTest, Errors) {
  EXPECT_FALSE(ParseFql("").ok());
  EXPECT_FALSE(ParseFql("SELECT FROM References r").ok());
  EXPECT_FALSE(ParseFql("SELECT r References r").ok());
  EXPECT_FALSE(ParseFql("SELECT r FROM References").ok());
  EXPECT_FALSE(ParseFql("SELECT r FROM References r WHERE").ok());
  EXPECT_FALSE(
      ParseFql("SELECT r FROM References r WHERE r.Year =").ok());
  EXPECT_FALSE(
      ParseFql("SELECT r FROM References r WHERE r.Year 1982").ok());
  EXPECT_FALSE(ParseFql(
                   "SELECT r FROM References r WHERE r.Year = \"1\" extra")
                   .ok());
  // SELECT variable must match FROM variable.
  EXPECT_FALSE(ParseFql("SELECT x FROM References r").ok());
  // WHERE paths must use the FROM variable.
  EXPECT_FALSE(
      ParseFql("SELECT r FROM References r WHERE x.Year = \"1\"").ok());
  // CONTAINS needs a string.
  EXPECT_FALSE(
      ParseFql("SELECT r FROM References r WHERE r.A CONTAINS x").ok());
}

TEST(FqlParserTest, DeepNestingIsAnErrorNotACrash) {
  // NOT and '(' recurse per token; a pathological prefix must be turned
  // away with a diagnostic before it exhausts the C++ stack.
  for (const auto& [open, close] : std::initializer_list<
           std::pair<std::string, std::string>>{{"NOT ", ""},
                                                {"(", ")"}}) {
    std::string q = "SELECT r FROM References r WHERE ";
    for (int i = 0; i < 100000; ++i) q += open;
    q += "r.Year = \"1\"";
    for (int i = 0; i < 100000; ++i) q += close;
    auto result = ParseFql(q);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsParseError());
    EXPECT_NE(result.status().message().find("deeply nested"),
              std::string::npos)
        << result.status().message();
  }
}

TEST(FqlParserTest, ModeratelyNestedConditionsStillParse) {
  std::string q = "SELECT r FROM References r WHERE ";
  for (int i = 0; i < 40; ++i) q += "NOT (";
  q += "r.Year = \"1\"";
  for (int i = 0; i < 40; ++i) q += ")";
  EXPECT_TRUE(ParseFql(q).ok());
}

}  // namespace
}  // namespace qof
