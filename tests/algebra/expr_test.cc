#include "qof/algebra/expr.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(ExprTest, NameLeaf) {
  auto e = RegionExpr::Name("Reference");
  EXPECT_EQ(e->kind(), ExprKind::kName);
  EXPECT_EQ(e->name(), "Reference");
  EXPECT_EQ(e->Size(), 1u);
  EXPECT_EQ(e->ToString(), "Reference");
}

TEST(ExprTest, PaperExpressionE1) {
  // Reference ⊃d Authors ⊃d Name ⊃d σ"Chang"(Last_Name), grouped right.
  auto e = RegionExpr::DirectlyIncluding(
      RegionExpr::Name("Reference"),
      RegionExpr::DirectlyIncluding(
          RegionExpr::Name("Authors"),
          RegionExpr::DirectlyIncluding(
              RegionExpr::Name("Name"),
              RegionExpr::SelectMatches("Chang",
                                        RegionExpr::Name("Last_Name")))));
  EXPECT_EQ(e->ToString(),
            "(Reference >> (Authors >> (Name >> sigma(\"Chang\", "
            "Last_Name))))");
  EXPECT_EQ(e->CountInclusionOps(/*direct_only=*/true), 3u);
  EXPECT_EQ(e->CountInclusionOps(/*direct_only=*/false), 3u);
  EXPECT_EQ(e->Size(), 8u);
}

TEST(ExprTest, MixedOpsCounting) {
  auto e = RegionExpr::Including(
      RegionExpr::Name("A"),
      RegionExpr::DirectlyIncluding(RegionExpr::Name("B"),
                                    RegionExpr::Name("C")));
  EXPECT_EQ(e->CountInclusionOps(true), 1u);
  EXPECT_EQ(e->CountInclusionOps(false), 2u);
}

TEST(ExprTest, StructuralEquality) {
  auto a = RegionExpr::Union(RegionExpr::Name("A"), RegionExpr::Name("B"));
  auto b = RegionExpr::Union(RegionExpr::Name("A"), RegionExpr::Name("B"));
  auto c = RegionExpr::Union(RegionExpr::Name("B"), RegionExpr::Name("A"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  auto s1 = RegionExpr::SelectMatches("x", RegionExpr::Name("A"));
  auto s2 = RegionExpr::SelectMatches("y", RegionExpr::Name("A"));
  auto s3 = RegionExpr::SelectContains("x", RegionExpr::Name("A"));
  EXPECT_FALSE(s1->Equals(*s2));
  EXPECT_FALSE(s1->Equals(*s3));
}

TEST(ExprTest, KindPredicates) {
  EXPECT_TRUE(IsBinaryKind(ExprKind::kUnion));
  EXPECT_TRUE(IsBinaryKind(ExprKind::kDirectlyIncluded));
  EXPECT_FALSE(IsBinaryKind(ExprKind::kName));
  EXPECT_FALSE(IsBinaryKind(ExprKind::kInnermost));
  EXPECT_TRUE(IsSelectKind(ExprKind::kSelectPhrase));
  EXPECT_FALSE(IsSelectKind(ExprKind::kIncluding));
  EXPECT_TRUE(IsInclusionKind(ExprKind::kIncluded));
  EXPECT_FALSE(IsInclusionKind(ExprKind::kUnion));
}

TEST(ExprTest, AllFormsPrint) {
  auto n = RegionExpr::Name("A");
  EXPECT_EQ(RegionExpr::Intersect(n, n)->ToString(), "(A & A)");
  EXPECT_EQ(RegionExpr::Difference(n, n)->ToString(), "(A - A)");
  EXPECT_EQ(RegionExpr::Included(n, n)->ToString(), "(A < A)");
  EXPECT_EQ(RegionExpr::DirectlyIncluded(n, n)->ToString(), "(A << A)");
  EXPECT_EQ(RegionExpr::Innermost(n)->ToString(), "innermost(A)");
  EXPECT_EQ(RegionExpr::Outermost(n)->ToString(), "outermost(A)");
  EXPECT_EQ(RegionExpr::SelectContains("w", n)->ToString(),
            "contains(\"w\", A)");
  EXPECT_EQ(RegionExpr::SelectPhrase("a b", n)->ToString(),
            "phrase(\"a b\", A)");
}

}  // namespace
}  // namespace qof
