// Tests of PAT's proximity (near) and frequency (atleast) selections.

#include <gtest/gtest.h>

#include "qof/algebra/evaluator.h"
#include "qof/algebra/inclusion_chain.h"
#include "qof/algebra/parser.h"

namespace qof {
namespace {

class ProximityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Word starts: taylor@0, series@7, here@14, taylor@23, far@30,
    // away@34, series@39. Text length 45.
    const char* text = "taylor series here ... taylor far away series";
    ASSERT_TRUE(corpus_.AddDocument("t", text).ok());
    // Three regions: whole text, the tight first phrase, the far tail.
    index_.Add("Doc", RegionSet::FromUnsorted({{0, 45}}));
    index_.Add("Head", RegionSet::FromUnsorted({{0, 18}}));
    index_.Add("Tail", RegionSet::FromUnsorted({{23, 45}}));
    words_ = WordIndex::Build(corpus_);
  }

  RegionSet Eval(const char* text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    ExprEvaluator eval(&index_, &words_, &corpus_);
    auto r = eval.Evaluate(**expr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : RegionSet();
  }

  Corpus corpus_;
  RegionIndex index_;
  WordIndex words_;
};

TEST_F(ProximityTest, NearWithinWindow) {
  // "taylor"(0) and "series"(7): 7 bytes apart.
  EXPECT_EQ(Eval("near(\"taylor\", \"series\", 10, Head)").size(), 1u);
  EXPECT_EQ(Eval("near(\"taylor\", \"series\", 5, Head)").size(), 0u);
  // In the tail, taylor(23) and series(39) are 16 apart.
  EXPECT_EQ(Eval("near(\"taylor\", \"series\", 16, Tail)").size(), 1u);
  EXPECT_EQ(Eval("near(\"taylor\", \"series\", 15, Tail)").size(), 0u);
  // The whole doc qualifies via the head pair even with a small window.
  EXPECT_EQ(Eval("near(\"taylor\", \"series\", 10, Doc)").size(), 1u);
}

TEST_F(ProximityTest, NearIsSymmetricInDistance) {
  EXPECT_EQ(Eval("near(\"series\", \"taylor\", 10, Head)").size(), 1u);
  EXPECT_EQ(Eval("near(\"series\", \"taylor\", 5, Head)").size(), 0u);
}

TEST_F(ProximityTest, NearMissingWordSelectsNothing) {
  EXPECT_EQ(Eval("near(\"taylor\", \"zebra\", 100, Doc)").size(), 0u);
}

TEST_F(ProximityTest, NearBothOccurrencesMustBeInside) {
  // Head contains taylor+series; Tail's series(40) is outside Head.
  EXPECT_EQ(Eval("near(\"far\", \"series\", 50, Head)").size(), 0u);
}

TEST_F(ProximityTest, AtLeastCountsOccurrences) {
  EXPECT_EQ(Eval("atleast(\"taylor\", 1, Doc)").size(), 1u);
  EXPECT_EQ(Eval("atleast(\"taylor\", 2, Doc)").size(), 1u);
  EXPECT_EQ(Eval("atleast(\"taylor\", 3, Doc)").size(), 0u);
  EXPECT_EQ(Eval("atleast(\"taylor\", 2, Head)").size(), 0u);
  EXPECT_EQ(Eval("atleast(\"series\", 1, Tail)").size(), 1u);
}

TEST_F(ProximityTest, AtLeastZeroSelectsAll) {
  EXPECT_EQ(Eval("atleast(\"zebra\", 0, Doc)").size(), 1u);
}

TEST_F(ProximityTest, ParserRoundTrip) {
  auto e = ParseRegionExpr("near(\"a\", \"b\", 12, Doc)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), ExprKind::kSelectNear);
  EXPECT_EQ((*e)->word(), "a");
  EXPECT_EQ((*e)->word2(), "b");
  EXPECT_EQ((*e)->param(), 12u);
  auto round = ParseRegionExpr((*e)->ToString());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE((*e)->Equals(**round));

  auto a = ParseRegionExpr("atleast(\"w\", 3, Doc)");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->param(), 3u);
  auto around = ParseRegionExpr((*a)->ToString());
  ASSERT_TRUE(around.ok());
  EXPECT_TRUE((*a)->Equals(**around));
}

TEST_F(ProximityTest, ParserErrors) {
  EXPECT_FALSE(ParseRegionExpr("near(\"a\", \"b\", Doc)").ok());
  EXPECT_FALSE(ParseRegionExpr("near(\"a\", 3, Doc)").ok());
  EXPECT_FALSE(ParseRegionExpr("atleast(\"a\", \"b\", Doc)").ok());
  EXPECT_FALSE(ParseRegionExpr("atleast(3, \"a\", Doc)").ok());
}

TEST_F(ProximityTest, ChainsSupportProximitySelections) {
  auto e = ParseRegionExpr("Doc > near(\"taylor\", \"series\", 10, Head)");
  ASSERT_TRUE(e.ok());
  auto chain = InclusionChain::FromExpr(**e);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_TRUE(chain->ToExpr()->Equals(**e));
  EXPECT_NE(chain->ToString().find("near("), std::string::npos);
}

}  // namespace
}  // namespace qof
