#include "qof/algebra/cost_model.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"
#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/indexer.h"
#include "qof/region/cost_model.h"

namespace qof {
namespace {

TEST(SharedCostModel, ConstantsArePinned) {
  // The shared dispatch table is load-bearing across layers: the region
  // kernels, the tree evaluator, the CostEstimator and the IR passes all
  // read these constants, so changing one silently re-tunes every layer
  // at once. Pin the values so a change shows up as a deliberate edit
  // here, not as an unexplained benchmark shift.
  EXPECT_EQ(CostModel::kGallopRatio, 16u);
  EXPECT_DOUBLE_EQ(CostModel::kDirectFactor, 4.0);
  EXPECT_EQ(CostModel::kFusedBatch, 2048u);
  EXPECT_EQ(CostModel::kSortMergeJoinMinPairs, 64u);
}

TEST(SharedCostModel, DispatchPredicatesMatchTheRatio) {
  EXPECT_TRUE(CostModel::PreferGallop(10, 1000));
  EXPECT_FALSE(CostModel::PreferGallop(100, 1000));
  EXPECT_FALSE(CostModel::PreferGallop(0, 0));
  EXPECT_TRUE(CostModel::PreferPostingDriven(10, 1000));
  EXPECT_FALSE(CostModel::PreferPostingDriven(100, 1000));
}

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    BibtexGenOptions gen;
    gen.num_references = 100;
    gen.probe_author_rate = 0.1;
    gen.probe_editor_rate = 0.1;
    ASSERT_TRUE(
        corpus_.AddDocument("gen.bib", GenerateBibtex(gen)).ok());
    auto built = BuildIndexes(*schema, corpus_, IndexSpec::Full());
    ASSERT_TRUE(built.ok());
    built_ = std::make_unique<BuiltIndexes>(std::move(*built));
  }

  CostEstimate Estimate(const char* text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    CostEstimator estimator(&built_->regions, &built_->words);
    auto est = estimator.Estimate(**expr);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    return est.ok() ? *est : CostEstimate{};
  }

  Corpus corpus_;
  std::unique_ptr<BuiltIndexes> built_;
};

TEST_F(CostModelTest, NameCardinalityIsInstanceSize) {
  CostEstimate est = Estimate("Reference");
  EXPECT_DOUBLE_EQ(est.cardinality, 100.0);
  CostEstimate unknown = Estimate("Nonexistent");
  EXPECT_DOUBLE_EQ(unknown.cardinality, 0.0);
}

TEST_F(CostModelTest, SelectionBoundedByPostings) {
  CostEstimate est = Estimate("sigma(\"Chang\", Last_Name)");
  auto& postings = built_->words.Lookup("Chang");
  EXPECT_LE(est.cardinality, static_cast<double>(postings.size()));
  EXPECT_GT(est.cardinality, 0.0);
  // A word that never occurs estimates to zero.
  CostEstimate none = Estimate("sigma(\"Zweig\", Last_Name)");
  EXPECT_DOUBLE_EQ(none.cardinality, 0.0);
}

TEST_F(CostModelTest, DirectInclusionCostsMoreThanSimple) {
  CostEstimate direct = Estimate("Reference >> Authors");
  CostEstimate simple = Estimate("Reference > Authors");
  EXPECT_GT(direct.work, simple.work);
  EXPECT_DOUBLE_EQ(direct.cardinality, simple.cardinality);
}

TEST_F(CostModelTest, OptimizedFormCostsLess) {
  // The §3.2 rewrite should be an improvement under the model too.
  CostEstimate raw = Estimate(
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
  CostEstimate optimized =
      Estimate("Reference > Authors > sigma(\"Chang\", Last_Name)");
  EXPECT_LT(optimized.work, raw.work);
}

TEST_F(CostModelTest, SetOperatorCardinalities) {
  CostEstimate u = Estimate("Authors | Editors");
  CostEstimate i = Estimate("Authors & Editors");
  CostEstimate d = Estimate("Authors - Editors");
  CostEstimate a = Estimate("Authors");
  CostEstimate e = Estimate("Editors");
  EXPECT_DOUBLE_EQ(u.cardinality, a.cardinality + e.cardinality);
  EXPECT_DOUBLE_EQ(i.cardinality,
                   std::min(a.cardinality, e.cardinality));
  EXPECT_DOUBLE_EQ(d.cardinality, a.cardinality);
}

TEST_F(CostModelTest, PhrasePaysVerification) {
  CostEstimate phrase = Estimate("phrase(\"Taylor Series\", Title)");
  CostEstimate word = Estimate("contains(\"Taylor\", Title)");
  EXPECT_GE(phrase.work, word.work);
}

TEST_F(CostModelTest, ToStringReadable) {
  CostEstimate est = Estimate("Reference");
  EXPECT_NE(est.ToString().find("regions"), std::string::npos);
  EXPECT_NE(est.ToString().find("work"), std::string::npos);
}

}  // namespace
}  // namespace qof
