#include "qof/algebra/parser.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

// Parses, expecting success.
RegionExprPtr Parse(std::string_view s) {
  auto r = ParseRegionExpr(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << s;
  return r.ok() ? *r : nullptr;
}

TEST(AlgebraParserTest, BareName) {
  auto e = Parse("Reference");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kName);
  EXPECT_EQ(e->name(), "Reference");
}

TEST(AlgebraParserTest, PaperE1RoundTrips) {
  auto e = Parse(
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kDirectlyIncluding);
  // Right-grouping: left child is the bare name Reference.
  EXPECT_EQ(e->left()->kind(), ExprKind::kName);
  auto round = Parse(e->ToString());
  ASSERT_NE(round, nullptr);
  EXPECT_TRUE(e->Equals(*round));
}

TEST(AlgebraParserTest, PaperSection31Example) {
  // (Reference ⊃ Authors ⊃ σChang(Last_Name)) ∪
  // (Reference ⊃ Editors ⊃ σCorliss(Last_Name))
  auto e = Parse(
      "(Reference > Authors > sigma(\"Chang\", Last_Name)) | "
      "(Reference > Editors > sigma(\"Corliss\", Last_Name))");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kUnion);
  EXPECT_EQ(e->left()->kind(), ExprKind::kIncluding);
  EXPECT_EQ(e->right()->kind(), ExprKind::kIncluding);
}

TEST(AlgebraParserTest, InclusionIsRightAssociative) {
  auto e = Parse("A > B > C");
  ASSERT_NE(e, nullptr);
  // A > (B > C)
  EXPECT_EQ(e->left()->kind(), ExprKind::kName);
  EXPECT_EQ(e->right()->kind(), ExprKind::kIncluding);
}

TEST(AlgebraParserTest, SetOpsAreLeftAssociative) {
  auto e = Parse("A | B - C");
  ASSERT_NE(e, nullptr);
  // (A | B) - C
  EXPECT_EQ(e->kind(), ExprKind::kDifference);
  EXPECT_EQ(e->left()->kind(), ExprKind::kUnion);
}

TEST(AlgebraParserTest, InclusionBindsTighterThanSetOps) {
  auto e = Parse("A > B | C > D");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kUnion);
  EXPECT_EQ(e->left()->kind(), ExprKind::kIncluding);
  EXPECT_EQ(e->right()->kind(), ExprKind::kIncluding);
}

TEST(AlgebraParserTest, ContainedChains) {
  auto e = Parse("Last_Name << Name << Authors << Reference");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kDirectlyIncluded);
  auto e2 = Parse("Last_Name < Authors < Reference");
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->kind(), ExprKind::kIncluded);
}

TEST(AlgebraParserTest, FunctionForms) {
  EXPECT_EQ(Parse("matches(\"w\", A)")->kind(), ExprKind::kSelectMatches);
  EXPECT_EQ(Parse("sigma(\"w\", A)")->kind(), ExprKind::kSelectMatches);
  EXPECT_EQ(Parse("contains(\"w\", A)")->kind(),
            ExprKind::kSelectContains);
  EXPECT_EQ(Parse("phrase(\"a b c\", A)")->kind(),
            ExprKind::kSelectPhrase);
  EXPECT_EQ(Parse("innermost(A)")->kind(), ExprKind::kInnermost);
  EXPECT_EQ(Parse("outermost(A | B)")->kind(), ExprKind::kOutermost);
}

TEST(AlgebraParserTest, WhitespaceInsensitive) {
  auto a = Parse("A>>B");
  auto b = Parse("  A  >>  B  ");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->Equals(*b));
}

TEST(AlgebraParserTest, Errors) {
  EXPECT_FALSE(ParseRegionExpr("").ok());
  EXPECT_FALSE(ParseRegionExpr("A >").ok());
  EXPECT_FALSE(ParseRegionExpr("A B").ok());
  EXPECT_FALSE(ParseRegionExpr("(A").ok());
  EXPECT_FALSE(ParseRegionExpr("sigma(Chang, A)").ok());   // unquoted word
  EXPECT_FALSE(ParseRegionExpr("sigma(\"w\" A)").ok());    // missing comma
  EXPECT_FALSE(ParseRegionExpr("sigma(\"w, A)").ok());     // unterminated
  EXPECT_FALSE(ParseRegionExpr("innermost A").ok());
  EXPECT_FALSE(ParseRegionExpr("123abc").ok());
  EXPECT_TRUE(ParseRegionExpr("_x9").ok());
}

TEST(AlgebraParserTest, ErrorsReportOffset) {
  auto r = ParseRegionExpr("A > ");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(AlgebraParserTest, DeepNestingIsAnErrorNotACrash) {
  // Parens, selection functions, and the right-recursive inclusion chain
  // all burn one stack frame per token; each must hit the depth cap, not
  // the stack guard page.
  std::string parens(100000, '(');
  parens += "A";
  parens += std::string(100000, ')');
  std::string funcs;
  for (int i = 0; i < 100000; ++i) funcs += "sigma(\"w\", ";
  funcs += "A";
  for (int i = 0; i < 100000; ++i) funcs += ")";
  std::string chain = "A";
  for (int i = 0; i < 100000; ++i) chain += " < A";
  for (const std::string& input : {parens, funcs, chain}) {
    auto r = ParseRegionExpr(input);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsParseError());
    EXPECT_NE(r.status().message().find("deeply nested"),
              std::string::npos)
        << r.status().message();
  }
}

TEST(AlgebraParserTest, ModeratelyNestedExpressionsStillParse) {
  std::string input(100, '(');
  input += "sigma(\"w\", A < B)";
  input += std::string(100, ')');
  EXPECT_TRUE(ParseRegionExpr(input).ok());
}

}  // namespace
}  // namespace qof
