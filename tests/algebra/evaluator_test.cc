#include "qof/algebra/evaluator.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "qof/algebra/parser.h"

namespace qof {
namespace {

// Builds a two-reference corpus with hand-tracked region spans, mirroring
// the paper's BibTeX example:
//   ref 1: authors {Alice Chang, Bob Smith},   editors {Carol Chang}
//   ref 2: authors {Dana Corliss},             editors {Eve Chang}
class Fixture {
 public:
  Fixture() {
    BeginRegion("Reference");
    Raw("@R{ ");
    BeginRegion("Authors");
    Raw("AUTHORS \"");
    Name("Alice", "Chang");
    Raw(" and ");
    Name("Bob", "Smith");
    Raw("\"");
    EndRegion("Authors");
    Raw(" ");
    BeginRegion("Editors");
    Raw("EDITORS \"");
    Name("Carol", "Chang");
    Raw("\"");
    EndRegion("Editors");
    Raw(" }");
    EndRegion("Reference");
    Raw("  ");
    BeginRegion("Reference");
    Raw("@R{ ");
    BeginRegion("Authors");
    Raw("AUTHORS \"");
    Name("Dana", "Corliss");
    Raw("\"");
    EndRegion("Authors");
    Raw(" ");
    BeginRegion("Editors");
    Raw("EDITORS \"");
    Name("Eve", "Chang");
    Raw("\"");
    EndRegion("Editors");
    Raw(" }");
    EndRegion("Reference");

    EXPECT_TRUE(corpus_.AddDocument("refs.bib", text_).ok());
    for (auto& [name, regions] : spans_) {
      index_.Add(name, RegionSet::FromUnsorted(regions));
    }
    words_ = WordIndex::Build(corpus_);
  }

  // Span of the i-th (0-based) recorded region of `name`.
  Region Span(const std::string& name, size_t i) const {
    return spans_.at(name)[i];
  }
  RegionSet Set(const std::string& name,
                std::vector<size_t> indices) const {
    std::vector<Region> v;
    for (size_t i : indices) v.push_back(Span(name, i));
    return RegionSet::FromUnsorted(std::move(v));
  }

  RegionSet Eval(std::string_view expr_text, EvalStats* stats = nullptr,
                 DirectAlgorithm algo = DirectAlgorithm::kFast) const {
    auto expr = ParseRegionExpr(expr_text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    ExprEvaluator eval(&index_, &words_, &corpus_, algo);
    auto result = eval.Evaluate(**expr, stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : RegionSet();
  }

  const RegionIndex& index() const { return index_; }
  const WordIndex& words() const { return words_; }
  const Corpus& corpus() const { return corpus_; }

 private:
  void Raw(std::string_view s) { text_ += s; }

  void BeginRegion(const std::string& name) {
    open_.push_back({name, text_.size()});
  }
  void EndRegion(const std::string& name) {
    ASSERT_EQ(open_.back().first, name);
    spans_[name].push_back({open_.back().second, text_.size()});
    open_.pop_back();
  }

  void Name(const std::string& first, const std::string& last) {
    BeginRegion("Name");
    BeginRegion("First_Name");
    Raw(first);
    EndRegion("First_Name");
    Raw(" ");
    BeginRegion("Last_Name");
    Raw(last);
    EndRegion("Last_Name");
    EndRegion("Name");
  }

  std::string text_;
  std::vector<std::pair<std::string, uint64_t>> open_;
  std::map<std::string, std::vector<Region>> spans_;
  Corpus corpus_;
  RegionIndex index_;
  WordIndex words_;
};

TEST(EvaluatorTest, NameLookup) {
  Fixture f;
  EXPECT_EQ(f.Eval("Reference").size(), 2u);
  EXPECT_EQ(f.Eval("Name").size(), 5u);
  EXPECT_EQ(f.Eval("Last_Name").size(), 5u);
}

TEST(EvaluatorTest, UnknownNameIsNotFound) {
  Fixture f;
  auto expr = ParseRegionExpr("Nonexistent");
  ASSERT_TRUE(expr.ok());
  ExprEvaluator eval(&f.index(), &f.words(), &f.corpus());
  auto r = eval.Evaluate(**expr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(EvaluatorTest, SigmaSelectsRegionsThatAreTheWord) {
  Fixture f;
  // Chang appears as last name of Alice (ref1 author), Carol (ref1
  // editor), Eve (ref2 editor); Last_Name order: Alice-Chang, Bob-Smith,
  // Carol-Chang, Dana-Corliss, Eve-Chang.
  RegionSet changs = f.Eval("sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(changs, f.Set("Last_Name", {0, 2, 4}));
  // Not every Last_Name: Smith and Corliss are excluded.
  EXPECT_EQ(f.Eval("sigma(\"Smith\", Last_Name)"),
            f.Set("Last_Name", {1}));
  EXPECT_EQ(f.Eval("sigma(\"Zweig\", Last_Name)"), RegionSet());
  // First names are never "Chang".
  EXPECT_EQ(f.Eval("sigma(\"Chang\", First_Name)"), RegionSet());
}

TEST(EvaluatorTest, PaperQueryFullChain) {
  Fixture f;
  // References where Chang is an *author*: only reference 1.
  RegionSet result = f.Eval(
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(result, f.Set("Reference", {0}));
  // The optimized form from §3.2 gives the same answer.
  RegionSet opt =
      f.Eval("Reference > Authors > sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(opt, result);
}

TEST(EvaluatorTest, PartialChainYieldsSuperset) {
  Fixture f;
  // Without the Authors test, editors qualify too (§2's superset).
  RegionSet all = f.Eval("Reference > sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(all, f.Set("Reference", {0, 1}));
}

TEST(EvaluatorTest, UnionOfTwoChains) {
  Fixture f;
  // §3.1's example: Chang-as-author or Corliss-as-editor references.
  RegionSet r = f.Eval(
      "(Reference > Authors > sigma(\"Chang\", Last_Name)) | "
      "(Reference > Editors > sigma(\"Corliss\", Last_Name))");
  EXPECT_EQ(r, f.Set("Reference", {0}));
  RegionSet r2 = f.Eval(
      "(Reference > Authors > sigma(\"Corliss\", Last_Name)) | "
      "(Reference > Editors > sigma(\"Chang\", Last_Name))");
  EXPECT_EQ(r2, f.Set("Reference", {0, 1}));
}

TEST(EvaluatorTest, IntersectionAndDifference) {
  Fixture f;
  RegionSet both = f.Eval(
      "(Reference > Authors > sigma(\"Chang\", Last_Name)) & "
      "(Reference > Editors > sigma(\"Chang\", Last_Name))");
  EXPECT_EQ(both, f.Set("Reference", {0}));
  RegionSet only_editor = f.Eval(
      "(Reference > Editors > sigma(\"Chang\", Last_Name)) - "
      "(Reference > Authors > sigma(\"Chang\", Last_Name))");
  EXPECT_EQ(only_editor, f.Set("Reference", {1}));
}

TEST(EvaluatorTest, DirectVersusSimpleInclusion) {
  Fixture f;
  // Reference directly includes Authors/Editors but not Name.
  EXPECT_EQ(f.Eval("Reference >> Authors"), f.Set("Reference", {0, 1}));
  EXPECT_EQ(f.Eval("Reference >> Name"), RegionSet());
  EXPECT_EQ(f.Eval("Reference > Name"), f.Set("Reference", {0, 1}));
}

TEST(EvaluatorTest, ContainedChains) {
  Fixture f;
  // Last names within Authors within Reference — the projection shape.
  RegionSet author_last_names =
      f.Eval("Last_Name < Authors < Reference");
  EXPECT_EQ(author_last_names, f.Set("Last_Name", {0, 1, 3}));
  RegionSet direct = f.Eval("Last_Name << Name << Authors << Reference");
  // ⊂d chain: Last_Name directly in Name directly in Authors... but
  // Authors is directly in Reference, Name directly in Authors, Last_Name
  // directly in Name: all hold for author names.
  EXPECT_EQ(direct, f.Set("Last_Name", {0, 1, 3}));
  // Editors' last names are *not* within Authors.
  EXPECT_EQ(Intersect(author_last_names, f.Set("Last_Name", {2, 4})),
            RegionSet());
}

TEST(EvaluatorTest, ContainsSelection) {
  Fixture f;
  EXPECT_EQ(f.Eval("contains(\"Chang\", Authors)"), f.Set("Authors", {0}));
  EXPECT_EQ(f.Eval("contains(\"Chang\", Editors)"),
            f.Set("Editors", {0, 1}));
  EXPECT_EQ(f.Eval("contains(\"Corliss\", Reference)"),
            f.Set("Reference", {1}));
}

TEST(EvaluatorTest, PhraseSelectionScansBytes) {
  Fixture f;
  EvalStats stats;
  RegionSet names = f.Eval("phrase(\"Alice Chang\", Name)", &stats);
  EXPECT_EQ(names, f.Set("Name", {0}));
  EXPECT_GT(stats.bytes_scanned, 0u);
  EXPECT_EQ(stats.select_ops, 1u);
}

TEST(EvaluatorTest, MultiWordSigmaActsAsPhrase) {
  Fixture f;
  EvalStats stats;
  RegionSet names = f.Eval("sigma(\"Dana Corliss\", Name)", &stats);
  EXPECT_EQ(names, f.Set("Name", {3}));
  EXPECT_GT(stats.bytes_scanned, 0u);
}

TEST(EvaluatorTest, InnermostOutermost) {
  Fixture f;
  RegionSet inner = f.Eval("innermost(Reference | Authors)");
  EXPECT_EQ(inner, f.Set("Authors", {0, 1}));
  RegionSet outer = f.Eval("outermost(Reference | Authors)");
  EXPECT_EQ(outer, f.Set("Reference", {0, 1}));
}

TEST(EvaluatorTest, StatsCountOperations) {
  Fixture f;
  EvalStats stats;
  f.Eval("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)",
         &stats);
  EXPECT_EQ(stats.direct_incl_ops, 3u);
  EXPECT_EQ(stats.select_ops, 1u);
  EXPECT_EQ(stats.simple_incl_ops, 0u);
  EXPECT_GT(stats.regions_produced, 0u);
  EXPECT_GT(stats.max_intermediate, 0u);

  EvalStats stats2;
  f.Eval("Reference > Authors > sigma(\"Chang\", Last_Name)", &stats2);
  EXPECT_EQ(stats2.direct_incl_ops, 0u);
  EXPECT_EQ(stats2.simple_incl_ops, 2u);
  EXPECT_EQ(stats2.total_ops(), 3u);
}

TEST(EvaluatorTest, LayeredAlgorithmAgrees) {
  Fixture f;
  const char* exprs[] = {
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)",
      "Reference >> Authors",
      "Reference >> Name",
      "Authors >> Name",
      "Name >> sigma(\"Chang\", Last_Name)",
      "Last_Name << Name << Authors << Reference",
  };
  for (const char* e : exprs) {
    EXPECT_EQ(f.Eval(e, nullptr, DirectAlgorithm::kLayered),
              f.Eval(e, nullptr, DirectAlgorithm::kFast))
        << e;
  }
}

TEST(EvaluatorTest, SelectionRequiresWordIndex) {
  Fixture f;
  auto expr = ParseRegionExpr("sigma(\"Chang\", Last_Name)");
  ASSERT_TRUE(expr.ok());
  ExprEvaluator eval(&f.index(), nullptr, nullptr);
  auto r = eval.Evaluate(**expr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(EvaluatorTest, EmptyWordRejected) {
  Fixture f;
  auto expr = ParseRegionExpr("sigma(\"\", Last_Name)");
  ASSERT_TRUE(expr.ok());
  ExprEvaluator eval(&f.index(), &f.words(), &f.corpus());
  EXPECT_FALSE(eval.Evaluate(**expr).ok());
}

}  // namespace
}  // namespace qof
