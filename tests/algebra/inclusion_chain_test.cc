#include "qof/algebra/inclusion_chain.h"

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"

namespace qof {
namespace {

InclusionChain Chain(std::string_view text) {
  auto expr = ParseRegionExpr(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto chain = InclusionChain::FromExpr(**expr);
  EXPECT_TRUE(chain.ok()) << chain.status().ToString() << " for " << text;
  return chain.ok() ? *chain : InclusionChain{};
}

TEST(InclusionChainTest, FromPaperE1) {
  InclusionChain c =
      Chain("Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(c.orientation, InclusionChain::Orientation::kContains);
  EXPECT_EQ(c.names,
            (std::vector<std::string>{"Reference", "Authors", "Name",
                                      "Last_Name"}));
  EXPECT_EQ(c.direct, (std::vector<bool>{true, true, true}));
  EXPECT_FALSE(c.sels[0].has_value());
  ASSERT_TRUE(c.sels[3].has_value());
  EXPECT_EQ(c.sels[3]->word, "Chang");
  EXPECT_EQ(c.CountDirectOps(), 3u);
}

TEST(InclusionChainTest, MixedOperators) {
  InclusionChain c = Chain("A > B >> C");
  EXPECT_EQ(c.direct, (std::vector<bool>{false, true}));
  EXPECT_EQ(c.CountDirectOps(), 1u);
}

TEST(InclusionChainTest, ContainedOrientation) {
  InclusionChain c = Chain("Last_Name << Name << Authors << Reference");
  EXPECT_EQ(c.orientation, InclusionChain::Orientation::kContained);
  EXPECT_EQ(c.names,
            (std::vector<std::string>{"Last_Name", "Name", "Authors",
                                      "Reference"}));
  // Link(i) reports (container, containee) in RIG orientation.
  auto [p0, c0] = c.Link(0);
  EXPECT_EQ(p0, "Name");
  EXPECT_EQ(c0, "Last_Name");
}

TEST(InclusionChainTest, LinkOrientationContains) {
  InclusionChain c = Chain("Reference > Authors");
  auto [p, ch] = c.Link(0);
  EXPECT_EQ(p, "Reference");
  EXPECT_EQ(ch, "Authors");
}

TEST(InclusionChainTest, SingleNameChain) {
  InclusionChain c = Chain("sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(c.length(), 1u);
  ASSERT_TRUE(c.sels[0].has_value());
  EXPECT_EQ(c.sels[0]->kind, ExprKind::kSelectMatches);
}

TEST(InclusionChainTest, RoundTripsThroughExpr) {
  const char* cases[] = {
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)",
      "Reference > Authors > sigma(\"Chang\", Last_Name)",
      "Last_Name << Name << Authors << Reference",
      "A > B",
      "contains(\"x\", A) > B >> phrase(\"y z\", C)",
      "Last_Name",
  };
  for (const char* text : cases) {
    InclusionChain c = Chain(text);
    auto expr = c.ToExpr();
    auto back = InclusionChain::FromExpr(*expr);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, c) << text;
  }
}

TEST(InclusionChainTest, ToStringReadable) {
  InclusionChain c =
      Chain("Reference > Authors > sigma(\"Chang\", Last_Name)");
  EXPECT_EQ(c.ToString(),
            "Reference > Authors > sigma(\"Chang\", Last_Name)");
}

TEST(InclusionChainTest, RejectsMixedOrientation) {
  auto expr = ParseRegionExpr("A > B < C");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(InclusionChain::FromExpr(**expr).ok());
}

TEST(InclusionChainTest, RejectsNonChainShapes) {
  for (const char* text :
       {"A | B", "(A > B) > C", "A > (B | C)", "innermost(A) > B"}) {
    auto expr = ParseRegionExpr(text);
    ASSERT_TRUE(expr.ok()) << text;
    EXPECT_FALSE(InclusionChain::FromExpr(**expr).ok()) << text;
  }
}

}  // namespace
}  // namespace qof
