// Boundary regressions for the selection kernels: regions shorter than
// the word, occurrences whose tails overhang the region, and the
// posting-driven vs region-driven directions of matches/starts agreeing
// under every forced kernel policy.

#include <gtest/gtest.h>

#include "qof/algebra/evaluator.h"
#include "qof/algebra/parser.h"

namespace qof {
namespace {

class ScopedPolicy {
 public:
  explicit ScopedPolicy(KernelPolicy policy) : saved_(kernel_policy()) {
    SetKernelPolicy(policy);
  }
  ~ScopedPolicy() { SetKernelPolicy(saved_); }

 private:
  KernelPolicy saved_;
};

class SelectEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Word starts: alpha@0(5), beta@6(4), alphabet@11(8), banana@20(6),
    // alp@27(3). Text length 30.
    const char* text = "alpha beta alphabet banana alp";
    ASSERT_TRUE(corpus_.AddDocument("t", text).ok());
    index_.Add("Short", RegionSet::FromUnsorted({{0, 3}}));
    index_.Add("Word", RegionSet::FromUnsorted({{0, 5}}));
    index_.Add("Tight", RegionSet::FromUnsorted({{0, 8}}));
    index_.Add("Wide", RegionSet::FromUnsorted({{0, 10}}));
    index_.Add("All", RegionSet::FromUnsorted(
                          {{0, 5},
                           {0, 3},
                           {6, 10},
                           {11, 19},
                           {20, 26},
                           {27, 30},
                           {2, 7},
                           {13, 18}}));
    words_ = WordIndex::Build(corpus_);
  }

  RegionSet Eval(const char* text) {
    auto expr = ParseRegionExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    ExprEvaluator eval(&index_, &words_, &corpus_);
    auto r = eval.Evaluate(**expr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : RegionSet();
  }

  Corpus corpus_;
  RegionIndex index_;
  WordIndex words_;
};

TEST_F(SelectEdgeTest, AtLeastIgnoresRegionsShorterThanTheWord) {
  // "alpha" has a posting at 0, but the region {0,3} is three bytes long:
  // no 5-byte occurrence fits. The old end-clamp let the posting at
  // position 0 count for exactly this shape.
  EXPECT_EQ(Eval("atleast(\"alpha\", 1, Short)").size(), 0u);
  EXPECT_EQ(Eval("atleast(\"alpha\", 1, Word)").size(), 1u);
  // An occurrence starting in the region but overhanging its end does
  // not count either: "beta"@6 ends at 10 > 8.
  EXPECT_EQ(Eval("atleast(\"beta\", 1, Tight)").size(), 0u);
  EXPECT_EQ(Eval("atleast(\"beta\", 1, Wide)").size(), 1u);
}

TEST_F(SelectEdgeTest, NearRequiresBothOccurrencesFullyInside) {
  // "beta"@6 reaches byte 10; the region {0,8} cuts it off mid-word.
  EXPECT_EQ(Eval("near(\"alpha\", \"beta\", 10, Tight)").size(), 0u);
  EXPECT_EQ(Eval("near(\"alpha\", \"beta\", 10, Wide)").size(), 1u);
  // The first word can overhang too: no 5-byte "alpha" fits in {0,3}.
  EXPECT_EQ(Eval("near(\"alpha\", \"beta\", 10, Short)").size(), 0u);
}

TEST_F(SelectEdgeTest, StartsRequiresRoomForThePrefix) {
  // {0,3} sits on a word with prefix "alph", but the region itself is
  // three bytes — it cannot start with a four-byte prefix.
  EXPECT_EQ(Eval("starts(\"alph\", Short)").size(), 0u);
  EXPECT_EQ(Eval("starts(\"alp\", Short)").size(), 1u);
}

TEST_F(SelectEdgeTest, MatchesAgreesAcrossKernelDirections) {
  for (const char* expr :
       {"matches(\"alpha\", All)", "matches(\"alp\", All)",
        "matches(\"banana\", All)", "matches(\"zebra\", All)",
        "starts(\"alpha\", All)", "starts(\"alp\", All)",
        "starts(\"ban\", All)"}) {
    RegionSet linear, posting;
    {
      ScopedPolicy p(KernelPolicy::kLinear);
      linear = Eval(expr);
    }
    {
      ScopedPolicy p(KernelPolicy::kGalloping);
      posting = Eval(expr);
    }
    EXPECT_EQ(linear, posting) << expr;
    EXPECT_EQ(Eval(expr), linear) << expr;  // adaptive picks one of the two
  }
  // Spot-check the actual answers, not just agreement.
  ScopedPolicy p(KernelPolicy::kGalloping);
  EXPECT_EQ(Eval("matches(\"alpha\", All)"),
            RegionSet::FromUnsorted({{0, 5}}));
  EXPECT_EQ(Eval("matches(\"alp\", All)"),
            RegionSet::FromUnsorted({{27, 30}}));
  EXPECT_EQ(Eval("starts(\"alpha\", All)"),
            RegionSet::FromUnsorted({{0, 5}, {11, 19}}));
}

}  // namespace
}  // namespace qof
