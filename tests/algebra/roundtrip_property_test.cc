// Property test: ToString of any region expression re-parses to a
// structurally identical tree (the textual algebra is a faithful,
// precedence-correct surface syntax).

#include <random>

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"

namespace qof {
namespace {

RegionExprPtr RandomExpr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> name_dist(0, 5);
  auto name = [&] {
    static const char* kNames[] = {"Reference", "Authors", "Editors",
                                   "Name", "Last_Name", "Key"};
    return RegionExpr::Name(kNames[name_dist(rng)]);
  };
  if (depth <= 0) return name();
  std::uniform_int_distribution<int> kind_dist(0, 11);
  auto child = [&] { return RandomExpr(rng, depth - 1); };
  switch (kind_dist(rng)) {
    case 0:
      return RegionExpr::Union(child(), child());
    case 1:
      return RegionExpr::Intersect(child(), child());
    case 2:
      return RegionExpr::Difference(child(), child());
    case 3:
      return RegionExpr::Including(child(), child());
    case 4:
      return RegionExpr::Included(child(), child());
    case 5:
      return RegionExpr::DirectlyIncluding(child(), child());
    case 6:
      return RegionExpr::DirectlyIncluded(child(), child());
    case 7:
      return RegionExpr::SelectMatches("Chang", child());
    case 8:
      return RegionExpr::SelectContains("Taylor", child());
    case 9:
      return RegionExpr::SelectPhrase("point algorithm", child());
    case 10:
      return RegionExpr::Innermost(child());
    default:
      return RegionExpr::Outermost(child());
  }
}

class RoundTripTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0u, 10u));

TEST_P(RoundTripTest, ToStringReparsesEqual) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    RegionExprPtr expr = RandomExpr(rng, 4);
    std::string text = expr->ToString();
    auto reparsed = ParseRegionExpr(text);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\n  text: " << text;
    EXPECT_TRUE(expr->Equals(**reparsed)) << text;
    // And printing again is a fixpoint.
    EXPECT_EQ((*reparsed)->ToString(), text);
  }
}

}  // namespace
}  // namespace qof
