#include "qof/rig/rig.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

// The paper's BibTeX RIG fragment (§3.2):
//   Reference -> Authors -> Name -> {First_Name, Last_Name}
//   Reference -> Editors -> Name
//   Reference -> Key, Reference -> Title
Rig BibRig() {
  Rig g;
  g.AddEdge("Reference", "Key");
  g.AddEdge("Reference", "Title");
  g.AddEdge("Reference", "Authors");
  g.AddEdge("Reference", "Editors");
  g.AddEdge("Authors", "Name");
  g.AddEdge("Editors", "Name");
  g.AddEdge("Name", "First_Name");
  g.AddEdge("Name", "Last_Name");
  return g;
}

TEST(RigTest, AddNodeIsIdempotent) {
  Rig g;
  auto a = g.AddNode("A");
  auto a2 = g.AddNode("A");
  EXPECT_EQ(a, a2);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.FindNode("A"), a);
  EXPECT_EQ(g.FindNode("B"), Rig::kInvalidNode);
}

TEST(RigTest, AddEdgeIsIdempotent) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("A", "B");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge("A", "B"));
  EXPECT_FALSE(g.HasEdge("B", "A"));
  EXPECT_FALSE(g.HasEdge("A", "C"));
}

TEST(RigTest, ReachabilityNeedsLengthOne) {
  Rig g = BibRig();
  auto r = g.FindNode("Reference");
  auto ln = g.FindNode("Last_Name");
  auto key = g.FindNode("Key");
  EXPECT_TRUE(g.Reachable(r, ln));
  EXPECT_FALSE(g.Reachable(ln, r));
  EXPECT_FALSE(g.Reachable(key, key));  // no cycle: not self-reachable
}

TEST(RigTest, SelfReachableOnlyViaCycle) {
  Rig g;
  g.AddEdge("Sec", "Sec");
  auto s = g.FindNode("Sec");
  EXPECT_TRUE(g.Reachable(s, s));

  Rig h;
  h.AddEdge("A", "B");
  h.AddEdge("B", "A");
  EXPECT_TRUE(h.Reachable(h.FindNode("A"), h.FindNode("A")));
}

TEST(RigTest, IsOnlyPathOnBibRig) {
  Rig g = BibRig();
  auto id = [&](const char* n) { return g.FindNode(n); };
  // Reference -> Authors has no alternative route.
  EXPECT_TRUE(g.IsOnlyPath(id("Reference"), id("Authors")));
  EXPECT_TRUE(g.IsOnlyPath(id("Authors"), id("Name")));
  EXPECT_TRUE(g.IsOnlyPath(id("Name"), id("Last_Name")));
  // Reference -> Name is not even an edge.
  EXPECT_FALSE(g.IsOnlyPath(id("Reference"), id("Name")));
}

TEST(RigTest, IsOnlyPathRejectsAlternatives) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("A", "C");
  g.AddEdge("C", "B");
  EXPECT_FALSE(g.IsOnlyPath(g.FindNode("A"), g.FindNode("B")));
  EXPECT_TRUE(g.IsOnlyPath(g.FindNode("A"), g.FindNode("C")));
  EXPECT_TRUE(g.IsOnlyPath(g.FindNode("C"), g.FindNode("B")));
}

TEST(RigTest, IsOnlyPathRejectsCycleThroughTarget) {
  // A -> B plus a cycle B -> C -> B: the edge extends to A->B->C->B.
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "B");
  EXPECT_FALSE(g.IsOnlyPath(g.FindNode("A"), g.FindNode("B")));
  // But every path from A to B still *starts* with the edge.
  EXPECT_TRUE(g.EveryPathStartsWithEdge(g.FindNode("A"), g.FindNode("B")));
}

TEST(RigTest, EveryPathStartsWithEdge) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("A", "C");
  g.AddEdge("B", "D");
  g.AddEdge("C", "D");
  auto id = [&](const char* n) { return g.FindNode(n); };
  EXPECT_TRUE(g.EveryPathStartsWithEdge(id("A"), id("B")));
  // D is reachable from A both via B and via C.
  g.AddEdge("A", "D");
  EXPECT_FALSE(g.EveryPathStartsWithEdge(id("A"), id("D")));
}

TEST(RigTest, EveryPathStartsWithEdgeSelfLoopCounterexample) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("A", "A");
  // Path A->A->B does not start with (A,B).
  EXPECT_FALSE(g.EveryPathStartsWithEdge(g.FindNode("A"), g.FindNode("B")));
}

TEST(RigTest, EveryPathThrough) {
  Rig g = BibRig();
  auto id = [&](const char* n) { return g.FindNode(n); };
  // Every path Reference -> Last_Name goes through Name...
  EXPECT_TRUE(g.EveryPathThrough(id("Reference"), id("Last_Name"),
                                 id("Name")));
  // ...but not through Authors (Editors offers an alternative).
  EXPECT_FALSE(g.EveryPathThrough(id("Reference"), id("Last_Name"),
                                  id("Authors")));
  // Endpoints trivially lie on every path.
  EXPECT_TRUE(g.EveryPathThrough(id("Reference"), id("Last_Name"),
                                 id("Reference")));
  EXPECT_TRUE(g.EveryPathThrough(id("Reference"), id("Last_Name"),
                                 id("Last_Name")));
}

TEST(RigTest, PathMultiplicityCountsAndSaturates) {
  Rig g = BibRig();
  auto id = [&](const char* n) { return g.FindNode(n); };
  auto all = [](Rig::NodeId) { return true; };
  // Reference to Name: two paths (via Authors, via Editors).
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Name"), all), 2);
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Authors"), all), 1);
  EXPECT_EQ(g.PathMultiplicity(id("Authors"), id("Last_Name"), all), 1);
  EXPECT_EQ(g.PathMultiplicity(id("Last_Name"), id("Reference"), all), 0);
}

TEST(RigTest, PathMultiplicityRespectsInteriorPredicate) {
  Rig g = BibRig();
  auto id = [&](const char* n) { return g.FindNode(n); };
  // Interior restricted to unindexed nodes {Authors, Editors, Name}:
  // Reference -> Last_Name matches two derivations.
  auto unindexed = [&](Rig::NodeId v) {
    return g.name(v) == "Authors" || g.name(v) == "Editors" ||
           g.name(v) == "Name";
  };
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Last_Name"), unindexed),
            2);
  // Forbid Editors as interior: unique path remains.
  auto no_editors = [&](Rig::NodeId v) {
    return g.name(v) == "Authors" || g.name(v) == "Name";
  };
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Last_Name"),
                               no_editors),
            1);
  // Forbid all interiors: no single edge exists, so zero.
  auto none = [](Rig::NodeId) { return false; };
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Last_Name"), none), 0);
  EXPECT_EQ(g.PathMultiplicity(id("Reference"), id("Authors"), none), 1);
}

TEST(RigTest, PathMultiplicityCyclesAreMany) {
  Rig g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "B");  // self-nested B
  g.AddEdge("B", "C");
  auto all = [](Rig::NodeId) { return true; };
  // A->B, A->B->B, A->B->B->B, ... infinitely many.
  EXPECT_EQ(g.PathMultiplicity(g.FindNode("A"), g.FindNode("B"), all), 2);
  EXPECT_EQ(g.PathMultiplicity(g.FindNode("A"), g.FindNode("C"), all), 2);
}

TEST(RigTest, ToDotContainsNodesAndEdges) {
  Rig g;
  g.AddEdge("A", "B");
  std::string dot = g.ToDot("test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
}

}  // namespace
}  // namespace qof
