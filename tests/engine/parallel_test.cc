// Determinism of the parallel paths: an index built with N workers must
// be byte-identical (via ExportIndexes) to the serial build, and query
// results must not depend on the worker count — parallelism buys wall
// time only, never a different answer.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

constexpr int kThreads = 4;

std::vector<std::string> BibtexFiles() {
  std::vector<std::string> files;
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    BibtexGenOptions opt;
    opt.num_references = 40;
    opt.seed = seed;
    opt.probe_author_rate = 0.2;
    opt.probe_editor_rate = 0.2;
    files.push_back(GenerateBibtex(opt));
  }
  return files;
}

std::unique_ptr<FileQuerySystem> MakeSystem(
    const Result<StructuringSchema>& schema, const char* stem,
    const std::vector<std::string>& files) {
  EXPECT_TRUE(schema.ok());
  auto system = std::make_unique<FileQuerySystem>(*schema);
  for (size_t i = 0; i < files.size(); ++i) {
    EXPECT_TRUE(
        system->AddFile(stem + std::to_string(i), files[i]).ok());
  }
  return system;
}

std::string BuildAndExport(FileQuerySystem* system, IndexSpec spec,
                           int parallelism) {
  spec.parallelism = parallelism;
  EXPECT_TRUE(system->BuildIndexes(spec).ok());
  auto blob = system->ExportIndexes();
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  return blob.ok() ? *blob : std::string();
}

void ExpectByteIdenticalBuilds(const Result<StructuringSchema>& schema,
                               const std::vector<std::string>& files,
                               const IndexSpec& spec) {
  auto serial = MakeSystem(schema, "f", files);
  auto parallel = MakeSystem(schema, "f", files);
  std::string serial_blob = BuildAndExport(serial.get(), spec, 1);
  std::string parallel_blob =
      BuildAndExport(parallel.get(), spec, kThreads);
  ASSERT_FALSE(serial_blob.empty());
  EXPECT_EQ(serial_blob, parallel_blob);
  EXPECT_EQ(serial->region_index().num_regions(),
            parallel->region_index().num_regions());
  EXPECT_EQ(serial->word_index().num_postings(),
            parallel->word_index().num_postings());
}

TEST(ParallelBuildTest, BibtexFullSpecIsByteIdentical) {
  ExpectByteIdenticalBuilds(BibtexSchema(), BibtexFiles(),
                            IndexSpec::Full());
}

TEST(ParallelBuildTest, BibtexPartialSpecIsByteIdentical) {
  ExpectByteIdenticalBuilds(
      BibtexSchema(), BibtexFiles(),
      IndexSpec::Partial({"Reference", "Authors", "Name", "Last_Name"}));
}

TEST(ParallelBuildTest, BibtexFoldCaseIsByteIdentical) {
  IndexSpec spec;
  spec.word_options.fold_case = true;
  ExpectByteIdenticalBuilds(BibtexSchema(), BibtexFiles(), spec);
}

TEST(ParallelBuildTest, MailCorpusIsByteIdentical) {
  std::vector<std::string> files;
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    MailGenOptions opt;
    opt.num_messages = 30;
    opt.seed = seed;
    files.push_back(GenerateMailbox(opt));
  }
  ExpectByteIdenticalBuilds(MailSchema(), files, IndexSpec::Full());
}

TEST(ParallelBuildTest, LogCorpusIsByteIdentical) {
  std::vector<std::string> files;
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    LogGenOptions opt;
    opt.num_entries = 120;
    opt.seed = seed;
    files.push_back(GenerateLog(opt));
  }
  ExpectByteIdenticalBuilds(LogSchema(), files, IndexSpec::Full());
}

TEST(ParallelBuildTest, SingleDocumentCorpusMatchesSerial) {
  // One document leaves nothing to parallelize; the build must still be
  // identical, not merely equivalent.
  BibtexGenOptions opt;
  opt.num_references = 50;
  std::vector<std::string> files = {GenerateBibtex(opt)};
  ExpectByteIdenticalBuilds(BibtexSchema(), files, IndexSpec::Full());
}

class ParallelQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    serial_ = MakeSystem(schema, "q", BibtexFiles());
    parallel_ = MakeSystem(schema, "q", BibtexFiles());
    serial_->SetParallelism(1);
    parallel_->SetParallelism(kThreads);
  }

  void CheckAgreement(const IndexSpec& spec, ExecutionMode mode) {
    ASSERT_TRUE(serial_->BuildIndexes(spec).ok());
    ASSERT_TRUE(parallel_->BuildIndexes(spec).ok());
    const std::string queries[] = {
        "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
        "\"Chang\"",
        "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
        "\"Chang\" AND NOT r.Editors.Name.Last_Name = \"Chang\"",
        "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"",
        "SELECT r.Title FROM References r WHERE "
        "r.Authors.Name.Last_Name = \"Chang\"",
        "SELECT r.Authors.Name.Last_Name FROM References r WHERE "
        "r.Publisher = \"SIAM\"",
        "SELECT r FROM References r WHERE r.Keywords CONTAINS \"Taylor\"",
        "SELECT r FROM References r WHERE r.Year = \"1982\" OR r.Year = "
        "\"1983\"",
    };
    for (const std::string& fql : queries) {
      auto s = serial_->Execute(fql, mode);
      auto p = parallel_->Execute(fql, mode);
      ASSERT_EQ(s.ok(), p.ok()) << fql;
      if (!s.ok()) continue;
      EXPECT_EQ(s->regions, p->regions) << fql;
      EXPECT_EQ(s->RenderedValues(), p->RenderedValues()) << fql;
      EXPECT_EQ(s->stats.strategy, p->stats.strategy) << fql;
      EXPECT_EQ(s->stats.candidates, p->stats.candidates) << fql;
      EXPECT_EQ(s->stats.results, p->stats.results) << fql;
      EXPECT_EQ(s->stats.objects_built, p->stats.objects_built) << fql;
      EXPECT_EQ(s->stats.bytes_scanned, p->stats.bytes_scanned) << fql;
    }
  }

  std::unique_ptr<FileQuerySystem> serial_;
  std::unique_ptr<FileQuerySystem> parallel_;
};

TEST_F(ParallelQueryTest, AutoModeAgreesOnFullIndex) {
  CheckAgreement(IndexSpec::Full(), ExecutionMode::kAuto);
}

TEST_F(ParallelQueryTest, AutoModeAgreesOnPartialIndex) {
  CheckAgreement(
      IndexSpec::Partial({"Reference", "Key", "Last_Name"}),
      ExecutionMode::kAuto);
}

TEST_F(ParallelQueryTest, ForcedTwoPhaseAgrees) {
  CheckAgreement(IndexSpec::Full(), ExecutionMode::kTwoPhase);
  CheckAgreement(
      IndexSpec::Partial({"Reference", "Authors", "Name", "Last_Name"}),
      ExecutionMode::kTwoPhase);
}

TEST_F(ParallelQueryTest, BaselineAgrees) {
  CheckAgreement(IndexSpec::Full(), ExecutionMode::kBaseline);
}

}  // namespace
}  // namespace qof
