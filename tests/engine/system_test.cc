#include "qof/engine/system.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"

namespace qof {
namespace {

// Hand-written corpus with known ground truth:
//   Ref0: Chang is an author;  Ref1: Chang is only an editor;
//   Ref2: no Chang at all;     Ref3: Chang both author and editor.
constexpr const char* kRefs = R"(@INCOLLECTION{Ref0,
  AUTHOR = "Y. F. Chang and G. F. Corliss",
  TITLE = "Solving Ordinary Differential Equations",
  BOOKTITLE = "Automatic Differentiation Algorithms",
  YEAR = "1982",
  EDITOR = "A. Griewank",
  PUBLISHER = "SIAM",
  ADDRESS = "Philadelphia, Penn.",
  PAGES = "114--144",
  REFERRED = "[Ref1]",
  KEYWORDS = "point algorithm; Taylor series",
  ABSTRACT = "A Fortran pre-processor uses automatic differentiation"
}
@INCOLLECTION{Ref1,
  AUTHOR = "T. Milo",
  TITLE = "Querying Files",
  BOOKTITLE = "Database Systems",
  YEAR = "1993",
  EDITOR = "Q. Chang",
  PUBLISHER = "ACM Press",
  ADDRESS = "New York, NY",
  PAGES = "1--20",
  REFERRED = "",
  KEYWORDS = "file systems",
  ABSTRACT = "bridging databases and files"
}
@INCOLLECTION{Ref2,
  AUTHOR = "S. Abiteboul and S. Cluet",
  TITLE = "Updating the File",
  BOOKTITLE = "Very Large Databases",
  YEAR = "1993",
  EDITOR = "M. Consens",
  PUBLISHER = "Springer",
  ADDRESS = "Berlin",
  PAGES = "73--84",
  REFERRED = "[Ref0]; [Ref1]",
  KEYWORDS = "structuring schemas; parsing",
  ABSTRACT = "queries and updates translated to operations on files"
}
@INCOLLECTION{Ref3,
  AUTHOR = "Q. Chang and T. Milo",
  TITLE = "Regions Everywhere",
  BOOKTITLE = "Text Indexing",
  YEAR = "1994",
  EDITOR = "Q. Chang and A. Griewank",
  PUBLISHER = "SIAM",
  ADDRESS = "Berlin",
  PAGES = "5--15",
  REFERRED = "",
  KEYWORDS = "region algebra; Taylor series",
  ABSTRACT = "every region is a pair of positions"
}
)";

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("refs.bib", kRefs).ok());
    ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  }

  QueryResult Run(std::string_view fql,
                  ExecutionMode mode = ExecutionMode::kAuto) {
    auto r = system_->Execute(fql, mode);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  for: " << fql;
    return r.ok() ? *r : QueryResult{};
  }

  // Key field of each result region (keys are "Ref0".."Ref3").
  std::set<std::string> Keys(const QueryResult& result) {
    std::set<std::string> out;
    for (const Region& r : result.regions) {
      std::string_view text =
          system_->corpus().RawText(r.start, r.end);
      size_t b = text.find('{') + 1;
      size_t e = text.find(',');
      out.insert(std::string(text.substr(b, e - b)));
    }
    return out;
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(SystemTest, FlagshipQueryIndexOnly) {
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(r.stats.strategy, "index-only");
  EXPECT_TRUE(r.stats.exact);
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3"}));
  // Full computation on the indexing engine: no candidate parsing, and
  // the only text reads are zero (single-word σ needs no verification).
  EXPECT_EQ(r.stats.objects_built, 0u);
  EXPECT_EQ(r.stats.bytes_scanned, 0u);
}

TEST_F(SystemTest, BaselineAgreesWithIndexOnly) {
  const char* fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"";
  QueryResult idx = Run(fql);
  QueryResult base = Run(fql, ExecutionMode::kBaseline);
  EXPECT_EQ(base.stats.strategy, "baseline");
  EXPECT_EQ(Keys(base), Keys(idx));
  // The baseline scanned (at least) the whole corpus; the index plan
  // scanned nothing.
  EXPECT_GE(base.stats.bytes_scanned, base.stats.corpus_bytes);
  EXPECT_EQ(base.stats.objects_built, 4u);
}

TEST_F(SystemTest, EditorQueryDistinguishesRoles) {
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref1", "Ref3"}));
}

TEST_F(SystemTest, WildcardFindsBothRoles) {
  QueryResult r =
      Run("SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"");
  EXPECT_EQ(r.stats.strategy, "index-only");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref1", "Ref3"}));
}

TEST_F(SystemTest, BooleanCombinations) {
  QueryResult both = Run(
      "SELECT r FROM References r WHERE "
      "r.Authors.Name.Last_Name = \"Chang\" AND "
      "r.Editors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(Keys(both), (std::set<std::string>{"Ref3"}));

  QueryResult author_only = Run(
      "SELECT r FROM References r WHERE "
      "r.Authors.Name.Last_Name = \"Chang\" AND NOT "
      "r.Editors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(Keys(author_only), (std::set<std::string>{"Ref0"}));

  QueryResult either = Run(
      "SELECT r FROM References r WHERE "
      "r.Publisher = \"SIAM\" OR r.Publisher = \"Springer\"");
  EXPECT_EQ(Keys(either), (std::set<std::string>{"Ref0", "Ref2", "Ref3"}));
}

TEST_F(SystemTest, PhraseEquality) {
  QueryResult r = Run(
      "SELECT r FROM References r WHERE r.Title = \"Querying Files\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref1"}));
  EXPECT_GT(r.stats.bytes_scanned, 0u);  // phrase verification reads text
  EXPECT_LT(r.stats.bytes_scanned, r.stats.corpus_bytes / 4);
}

TEST_F(SystemTest, ContainsQuery) {
  QueryResult r = Run(
      "SELECT r FROM References r WHERE r.Keywords CONTAINS \"Taylor\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3"}));
}

TEST_F(SystemTest, MultiWordContainsMatchesPhraseOccurrences) {
  // "point algorithm" appears in Ref0's keywords; "region algebra" in
  // Ref3's.
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Keywords CONTAINS \"point algorithm\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0"}));
  EXPECT_GT(r.stats.bytes_scanned, 0u);  // phrase verification
  QueryResult base = Run(
      "SELECT r FROM References r "
      "WHERE r.Keywords CONTAINS \"point algorithm\"",
      ExecutionMode::kBaseline);
  EXPECT_EQ(Keys(base), Keys(r));
  // A phrase that never occurs contiguously matches nothing even though
  // both words occur separately.
  QueryResult none = Run(
      "SELECT r FROM References r "
      "WHERE r.Abstract CONTAINS \"differentiation automatic\"");
  EXPECT_TRUE(none.regions.empty());
}

TEST_F(SystemTest, YearNumberEquality) {
  QueryResult r =
      Run("SELECT r FROM References r WHERE r.Year = \"1993\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref1", "Ref2"}));
}

TEST_F(SystemTest, ProjectionViaIndex) {
  QueryResult r =
      Run("SELECT r.Authors.Name.Last_Name FROM References r");
  EXPECT_EQ(r.stats.strategy, "index-only");
  auto rendered = r.RenderedValues();
  // All author last names across the corpus.
  EXPECT_EQ(rendered, (std::vector<std::string>{
                          "Abiteboul", "Chang", "Chang", "Cluet",
                          "Corliss", "Milo", "Milo"}));
}

TEST_F(SystemTest, ProjectionWithWhere) {
  QueryResult r = Run(
      "SELECT r.Authors.Name.Last_Name FROM References r "
      "WHERE r.Year = \"1982\"");
  EXPECT_EQ(r.RenderedValues(),
            (std::vector<std::string>{"Chang", "Corliss"}));
}

TEST_F(SystemTest, JoinEditorAlsoAuthor) {
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name");
  EXPECT_EQ(r.stats.strategy, "index-join");
  // Ref3: Q. Chang authored and edited.
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref3"}));
  QueryResult base = Run(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name",
      ExecutionMode::kBaseline);
  EXPECT_EQ(Keys(base), Keys(r));
}

TEST_F(SystemTest, JoinFullNames) {
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name = r.Authors.Name");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref3"}));
}

TEST_F(SystemTest, TrivialQueryShortCircuits) {
  QueryResult r = Run(
      "SELECT r FROM References r WHERE r.Key.*X.Last_Name = \"x\"");
  EXPECT_EQ(r.stats.strategy, "empty");
  EXPECT_TRUE(r.regions.empty());
  EXPECT_EQ(r.stats.bytes_scanned, 0u);
}

TEST_F(SystemTest, PartialIndexTwoPhase) {
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(r.stats.strategy, "two-phase");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3"}));
  // §2/§6: candidates are the references mentioning Chang in any role —
  // a strict superset of the answer but far fewer than all references...
  EXPECT_EQ(r.stats.candidates, 3u);  // Ref0, Ref1, Ref3
  EXPECT_EQ(r.stats.objects_built, 3u);
  // ...and only their text was scanned.
  EXPECT_LT(r.stats.bytes_scanned, r.stats.corpus_bytes);
  EXPECT_GT(r.stats.bytes_scanned, 0u);
}

TEST_F(SystemTest, PartialIndexWithAuthorsIsExact) {
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Authors", "Last_Name"}))
                  .ok());
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(r.stats.strategy, "index-only");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3"}));
}

TEST_F(SystemTest, SelectiveIndexing) {
  // §7: index Name/Last_Name only inside Authors regions.
  IndexSpec spec = IndexSpec::Partial(
      {"Reference", "Authors", "Name", "Last_Name"});
  spec.within["Name"] = "Authors";
  spec.within["Last_Name"] = "Authors";
  ASSERT_TRUE(system_->BuildIndexes(spec).ok());
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3"}));
}

TEST_F(SystemTest, IndexOnlyModeRejectsInexactPlans) {
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  auto r = system_->Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"",
      ExecutionMode::kIndexOnly);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(SystemTest, ForcedTwoPhaseAgreesWithIndexOnly) {
  const char* fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"";
  QueryResult forced = Run(fql, ExecutionMode::kTwoPhase);
  EXPECT_EQ(forced.stats.strategy, "two-phase");
  EXPECT_EQ(Keys(forced), (std::set<std::string>{"Ref0", "Ref3"}));
}

TEST_F(SystemTest, UnknownViewRejected) {
  auto r = system_->Execute("SELECT x FROM Papers x");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  system_->AddViewAlias("Papers");
  EXPECT_TRUE(system_->Execute("SELECT x FROM Papers x").ok());
}

TEST_F(SystemTest, ExecuteWithoutIndexesNeedsBaseline) {
  auto schema = BibtexSchema();
  FileQuerySystem fresh(*schema);
  ASSERT_TRUE(fresh.AddFile("refs.bib", kRefs).ok());
  auto r = fresh.Execute("SELECT r FROM References r");
  EXPECT_FALSE(r.ok());
  auto base =
      fresh.Execute("SELECT r FROM References r", ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->regions.size(), 4u);
}

TEST_F(SystemTest, AddFileMaintainsIndexesIncrementally) {
  // Mutations after BuildIndexes no longer invalidate: the new file is
  // parsed on its own and spliced into the live indexes.
  EXPECT_TRUE(system_->indexes_built());
  const char* extra =
      "@INCOLLECTION{Ref9,\n"
      "  AUTHOR = \"Z. Chang\",\n  TITLE = \"Incremental\",\n"
      "  BOOKTITLE = \"B\",\n  YEAR = \"1995\",\n"
      "  EDITOR = \"E. Editor\",\n  PUBLISHER = \"P\",\n"
      "  ADDRESS = \"A\",\n  PAGES = \"1--2\",\n"
      "  REFERRED = \"\",\n  KEYWORDS = \"k\",\n"
      "  ABSTRACT = \"x\"\n}\n";
  ASSERT_TRUE(system_->AddFile("more.bib", extra).ok());
  EXPECT_TRUE(system_->indexes_built());
  EXPECT_EQ(system_->index_generation(), 1u);
  QueryResult r = Run("SELECT r FROM References r");
  EXPECT_EQ(r.regions.size(), 5u);
  // The stats note the maintenance state.
  bool noted = false;
  for (const std::string& note : r.stats.notes) {
    noted = noted || note.find("generation 1") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST_F(SystemTest, PlanInspection) {
  auto plan = system_->Plan(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->exact);
  EXPECT_FALSE(plan->notes.empty());
}

TEST_F(SystemTest, MultipleFilesActAsOneView) {
  // A second file with one more Chang-author reference; the view spans
  // both files (the paper's shared-bibliographies scenario, §2).
  const char* extra =
      "@INCOLLECTION{Ref4,\n"
      "  AUTHOR = \"Z. Chang\",\n  TITLE = \"More Files\",\n"
      "  BOOKTITLE = \"B\",\n  YEAR = \"1991\",\n"
      "  EDITOR = \"E. Editor\",\n  PUBLISHER = \"P\",\n"
      "  ADDRESS = \"A\",\n  PAGES = \"1--2\",\n"
      "  REFERRED = \"\",\n  KEYWORDS = \"k\",\n"
      "  ABSTRACT = \"x\"\n}\n";
  ASSERT_TRUE(system_->AddFile("more.bib", extra).ok());
  ASSERT_TRUE(system_->BuildIndexes().ok());
  QueryResult r = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  EXPECT_EQ(Keys(r), (std::set<std::string>{"Ref0", "Ref3", "Ref4"}));
  // Regions resolve to the correct documents.
  bool found_second_file = false;
  for (const Region& reg : r.regions) {
    auto doc = system_->corpus().DocumentAt(reg.start);
    ASSERT_TRUE(doc.ok());
    found_second_file =
        found_second_file ||
        system_->corpus().document_name(*doc) == "more.bib";
  }
  EXPECT_TRUE(found_second_file);
  QueryResult base = Run(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"",
      ExecutionMode::kBaseline);
  EXPECT_EQ(Keys(base), Keys(r));
}

TEST_F(SystemTest, ExplainDescribesPlan) {
  auto text = system_->Explain(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("index-only"), std::string::npos) << *text;
  EXPECT_NE(text->find("candidates:"), std::string::npos);
  EXPECT_NE(text->find("work units"), std::string::npos);
  EXPECT_NE(text->find("exact:      yes"), std::string::npos);

  auto join = system_->Explain(
      "SELECT r FROM References r "
      "WHERE r.Editors.Name = r.Authors.Name");
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->find("index-join"), std::string::npos) << *join;

  auto empty = system_->Explain(
      "SELECT r FROM References r WHERE r.Key.*X.Last_Name = \"x\"");
  ASSERT_TRUE(empty.ok());
  EXPECT_NE(empty->find("empty"), std::string::npos);
}

TEST_F(SystemTest, IndexBytesSmallerForPartial) {
  uint64_t full = system_->IndexBytes();
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  uint64_t partial = system_->IndexBytes();
  EXPECT_LT(partial, full);
  EXPECT_GT(partial, 0u);
}

}  // namespace
}  // namespace qof
