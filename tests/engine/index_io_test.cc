#include "qof/engine/index_io.h"

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    BibtexGenOptions gen;
    gen.num_references = 40;
    gen.probe_author_rate = 0.2;
    text_ = GenerateBibtex(gen);
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("gen.bib", text_).ok());
  }

  std::string text_;
  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(IndexIoTest, RoundTripPreservesAnswers) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  auto before = system_->Execute(kFlagship);
  ASSERT_TRUE(before.ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_GT(blob->size(), 1000u);

  // A fresh system over the same corpus imports the blob and answers
  // identically, without ever parsing for index construction.
  auto schema = BibtexSchema();
  FileQuerySystem fresh(*schema);
  ASSERT_TRUE(fresh.AddFile("gen.bib", text_).ok());
  ASSERT_TRUE(fresh.ImportIndexes(*blob).ok());
  EXPECT_TRUE(fresh.indexes_built());
  auto after = fresh.Execute(kFlagship);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->stats.strategy, "index-only");
  EXPECT_EQ(after->regions.size(), before->regions.size());
  for (size_t i = 0; i < after->regions.size(); ++i) {
    EXPECT_EQ(after->regions[i], before->regions[i]);
  }
}

TEST_F(IndexIoTest, RoundTripPreservesSpec) {
  IndexSpec spec = IndexSpec::Partial({"Reference", "Authors", "Name",
                                       "Last_Name"});
  spec.within["Name"] = "Authors";
  spec.within["Last_Name"] = "Authors";
  spec.word_options.fold_case = true;
  ASSERT_TRUE(system_->BuildIndexes(spec).ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());

  auto loaded = DeserializeIndexes(*blob, text_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->spec.mode, IndexSpec::Mode::kPartial);
  EXPECT_EQ(loaded->spec.names, spec.names);
  EXPECT_EQ(loaded->spec.within, spec.within);
  EXPECT_TRUE(loaded->spec.word_options.fold_case);
  EXPECT_EQ(loaded->indexes.regions.num_names(),
            system_->region_index().num_names());
  EXPECT_EQ(loaded->indexes.regions.num_regions(),
            system_->region_index().num_regions());
  EXPECT_EQ(loaded->indexes.words.num_postings(),
            system_->word_index().num_postings());
}

TEST_F(IndexIoTest, RejectsChangedCorpus) {
  ASSERT_TRUE(system_->BuildIndexes().ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());

  auto schema = BibtexSchema();
  FileQuerySystem other(*schema);
  ASSERT_TRUE(other.AddFile("gen.bib", text_ + " ").ok());
  auto s = other.ImportIndexes(*blob);
  ASSERT_FALSE(s.ok());
  // v2 blobs carry per-document fingerprints: the error names the
  // document that changed.
  EXPECT_NE(s.message().find("stale"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("gen.bib"), std::string::npos) << s.message();
}

TEST_F(IndexIoTest, RejectsGarbage) {
  ASSERT_TRUE(system_->BuildIndexes().ok());
  EXPECT_FALSE(system_->ImportIndexes("not an index").ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  // Truncation at every eighth of the blob fails cleanly.
  for (size_t frac = 1; frac < 8; ++frac) {
    std::string truncated = blob->substr(0, blob->size() * frac / 8);
    EXPECT_FALSE(system_->ImportIndexes(truncated).ok()) << frac;
  }
  // Trailing junk is rejected too.
  EXPECT_FALSE(system_->ImportIndexes(*blob + "x").ok());
}

TEST_F(IndexIoTest, TruncationAtEveryByteFailsCleanly) {
  // Exhaustive truncation: every prefix of the blob must be rejected
  // with a Status, never a crash or a silent partial load.
  ASSERT_TRUE(system_->BuildIndexes().ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  for (size_t len = 0; len < blob->size(); ++len) {
    auto loaded = DeserializeIndexes(blob->substr(0, len), text_);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(IndexIoTest, CorruptCountsAreRejectedBeforeAllocation) {
  ASSERT_TRUE(system_->BuildIndexes().ok());
  auto blob = system_->ExportIndexes();
  ASSERT_TRUE(blob.ok());
  // Overwrite each 8-byte window with an absurd count. Whatever field
  // the window lands on — a region count, word count, or posting count —
  // deserialization must fail by bounds-checking the count against the
  // bytes remaining, not by attempting a 2^60-element reserve.
  for (size_t at = 24; at + 8 <= blob->size();
       at += std::max<size_t>(1, blob->size() / 97)) {
    std::string corrupt = *blob;
    for (size_t i = 0; i < 8; ++i) corrupt[at + i] = '\x7f';
    auto loaded = DeserializeIndexes(corrupt, text_);
    // Some windows only touch region coordinates or posting payloads;
    // those may still load or fail the span check. The requirement is no
    // crash and no over-allocation, which running to completion shows.
    (void)loaded;
  }
  // The pristine blob still loads.
  auto spec_ok = DeserializeIndexes(*blob, text_);
  ASSERT_TRUE(spec_ok.ok());
}

TEST_F(IndexIoTest, AbsurdRegionCountFailsWithCountDiagnostic) {
  // Hand-built blob claiming 2^62 regions for one name: the count check
  // must reject it against the (tiny) remaining byte budget.
  auto put32 = [](uint32_t v, std::string* out) {
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  auto put64 = [](uint64_t v, std::string* out) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  std::string corpus = "x";
  std::string blob = "QOFIDX1\n";
  put64(corpus.size(), &blob);
  put64(CorpusFingerprint(corpus), &blob);
  blob.push_back(0);  // mode: full
  blob.push_back(0);  // fold_case: off
  put32(0, &blob);    // no spec names
  put32(0, &blob);    // no within entries
  put32(1, &blob);    // one region name
  put32(1, &blob);
  blob.push_back('A');
  put64(uint64_t{1} << 62, &blob);  // absurd region count
  auto loaded = DeserializeIndexes(blob, corpus);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("count"), std::string::npos)
      << loaded.status().message();
}

TEST_F(IndexIoTest, ExportRequiresBuiltIndexes) {
  EXPECT_FALSE(system_->ExportIndexes().ok());
}

TEST_F(IndexIoTest, TokenFilterIsNotSerializable) {
  IndexSpec spec;
  spec.word_options.token_filter = [](const WordToken&) { return true; };
  ASSERT_TRUE(system_->BuildIndexes(spec).ok());
  auto blob = system_->ExportIndexes();
  ASSERT_FALSE(blob.ok());
  EXPECT_TRUE(blob.status().IsInvalidArgument());
}

TEST_F(IndexIoTest, FingerprintIsStable) {
  EXPECT_EQ(CorpusFingerprint("abc"), CorpusFingerprint("abc"));
  EXPECT_NE(CorpusFingerprint("abc"), CorpusFingerprint("abd"));
  EXPECT_NE(CorpusFingerprint(""), CorpusFingerprint(" "));
}

}  // namespace
}  // namespace qof
