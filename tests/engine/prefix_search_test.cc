// Tests of the PAT-style lexical (prefix) search: word-index prefix
// lookups, the starts/hasprefix algebra selections, and the FQL STARTS
// predicate end-to-end.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "qof/algebra/parser.h"
#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

TEST(WordIndexPrefixTest, MergesAllPrefixedWords) {
  Corpus c;
  ASSERT_TRUE(
      c.AddDocument("t", "char chart charm cat chart zebra").ok());
  WordIndex idx = WordIndex::Build(c);
  auto hits = idx.LookupPrefix("char");
  // char(0), chart(5), charm(11), chart(22) — sorted positions.
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  EXPECT_EQ(idx.LookupPrefix("cha").size(), 4u);
  EXPECT_EQ(idx.LookupPrefix("c").size(), 5u);  // + cat
  EXPECT_TRUE(idx.LookupPrefix("zz").empty());
  // Exact word as a prefix of itself.
  EXPECT_EQ(idx.LookupPrefix("zebra").size(), 1u);
}

TEST(WordIndexPrefixTest, FoldCaseApplies) {
  Corpus c;
  ASSERT_TRUE(c.AddDocument("t", "Chang CHART chip").ok());
  WordIndexOptions opts;
  opts.fold_case = true;
  WordIndex idx = WordIndex::Build(c, opts);
  EXPECT_EQ(idx.LookupPrefix("ch").size(), 3u);
  EXPECT_EQ(idx.LookupPrefix("CH").size(), 3u);
}

class PrefixSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = std::make_unique<FileQuerySystem>(*schema);
    BibtexGenOptions gen;
    gen.num_references = 60;
    gen.probe_author_rate = 0.3;  // plants "Chang"
    ASSERT_TRUE(system_->AddFile("gen.bib", GenerateBibtex(gen)).ok());
    ASSERT_TRUE(system_->BuildIndexes().ok());
  }

  std::set<std::string> Spans(const QueryResult& r) {
    std::set<std::string> out;
    for (const Region& reg : r.regions) out.insert(reg.ToString());
    return out;
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(PrefixSearchTest, AlgebraStartsSelection) {
  ExprEvaluator eval(&system_->region_index(), &system_->word_index(),
                     &system_->corpus());
  auto starts = ParseRegionExpr("starts(\"Cha\", Last_Name)");
  ASSERT_TRUE(starts.ok());
  auto hit = eval.Evaluate(**starts);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_GT(hit->size(), 0u);
  // Every Chang is a Cha-prefixed last name.
  auto exact = ParseRegionExpr("sigma(\"Chang\", Last_Name)");
  auto exact_set = eval.Evaluate(**exact);
  ASSERT_TRUE(exact_set.ok());
  EXPECT_EQ(Intersect(*hit, *exact_set), *exact_set);
}

TEST_F(PrefixSearchTest, AlgebraHasPrefixSelection) {
  ExprEvaluator eval(&system_->region_index(), &system_->word_index(),
                     &system_->corpus());
  auto e = ParseRegionExpr("hasprefix(\"Cha\", Reference)");
  ASSERT_TRUE(e.ok());
  auto refs = eval.Evaluate(**e);
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  // At least the references with Chang authors qualify.
  auto via_sigma = eval.Evaluate(
      **ParseRegionExpr("Reference > sigma(\"Chang\", Last_Name)"));
  ASSERT_TRUE(via_sigma.ok());
  EXPECT_EQ(Intersect(*refs, *via_sigma), *via_sigma);
}

TEST_F(PrefixSearchTest, FqlStartsEndToEnd) {
  const char* fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name STARTS \"Cha\"";
  auto indexed = system_->Execute(fql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_EQ(indexed->stats.strategy, "index-only");
  EXPECT_GT(indexed->regions.size(), 0u);
  auto base = system_->Execute(fql, ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*indexed), Spans(*base));
  // The prefix hits are a superset of the exact-match hits.
  auto exact = system_->Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(exact.ok());
  for (const auto& span : Spans(*exact)) {
    EXPECT_TRUE(Spans(*indexed).count(span) == 1) << span;
  }
}

TEST_F(PrefixSearchTest, StartsOnMultiWordField) {
  // Title STARTS anchors on the title's first word.
  auto r = system_->Execute(
      "SELECT r FROM References r WHERE r.Title STARTS \"Sol\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto base = system_->Execute(
      "SELECT r FROM References r WHERE r.Title STARTS \"Sol\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*r), Spans(*base));
}

TEST_F(PrefixSearchTest, StartsUnderPartialIndexDegradesSoundly) {
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  const char* fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name STARTS \"Cha\"";
  auto indexed = system_->Execute(fql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  auto base = system_->Execute(fql, ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*indexed), Spans(*base));
  // Under {Reference, Key}, the selection degrades to hasprefix on the
  // Reference itself (superset) and two-phase filters it.
  ASSERT_TRUE(
      system_->BuildIndexes(IndexSpec::Partial({"Reference", "Key"}))
          .ok());
  auto degraded = system_->Execute(fql);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->stats.strategy, "two-phase");
  EXPECT_EQ(Spans(*degraded), Spans(*base));
}

TEST_F(PrefixSearchTest, MultiWordPrefixRejected) {
  auto r = system_->Execute(
      "SELECT r FROM References r WHERE r.Title STARTS \"two words\"");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(PrefixSearchTest, RoundTripsThroughToString) {
  auto q = ParseFql(
      "SELECT r FROM References r WHERE r.Title STARTS \"Sol\"");
  ASSERT_TRUE(q.ok());
  auto round = ParseFql(q->ToString());
  ASSERT_TRUE(round.ok()) << q->ToString();
  EXPECT_EQ(round->ToString(), q->ToString());
}

}  // namespace
}  // namespace qof
