// Coverage of engine-level options: case-folded word indexing end to end,
// IndexSpec rendering, and stats/notes plumbing.

#include <memory>

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

constexpr const char* kDoc =
    "@INCOLLECTION{K1,\n  AUTHOR = \"Y. F. CHANG\",\n"
    "  TITLE = \"T\",\n  BOOKTITLE = \"B\",\n  YEAR = \"1982\",\n"
    "  EDITOR = \"A. Editor\",\n  PUBLISHER = \"P\",\n"
    "  ADDRESS = \"A\",\n  PAGES = \"1--2\",\n  REFERRED = \"\",\n"
    "  KEYWORDS = \"k\",\n  ABSTRACT = \"x\"\n}\n";

TEST(EngineOptionsTest, FoldCaseMatchesAnyCasing) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("doc.bib", kDoc).ok());

  // Case-sensitive (default): lowercase query misses "CHANG".
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto miss = system.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->regions.empty());

  // Folded: any casing matches at the index level.
  IndexSpec folded;
  folded.word_options.fold_case = true;
  ASSERT_TRUE(system.BuildIndexes(folded).ok());
  auto plan = system.Plan(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"chang\"");
  ASSERT_TRUE(plan.ok());
  // Candidates find the region; note: the db-side equality remains
  // case-sensitive, so run the raw candidate expression.
  ExprEvaluator eval(&system.region_index(), &system.word_index(),
                     &system.corpus());
  auto set = eval.Evaluate(*plan->candidates);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

TEST(EngineOptionsTest, IndexSpecToString) {
  EXPECT_EQ(IndexSpec::Full().ToString(), "full");
  IndexSpec partial = IndexSpec::Partial({"A", "B"});
  EXPECT_EQ(partial.ToString(), "partial{A, B}");
  partial.within["B"] = "A";
  EXPECT_EQ(partial.ToString(), "partial{A, B within A}");
}

TEST(EngineOptionsTest, NotesSurfaceCompilerDecisions) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("doc.bib", kDoc).ok());
  ASSERT_TRUE(system
                  .BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  auto r = system.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"CHANG\"");
  ASSERT_TRUE(r.ok());
  bool saw_superset_note = false;
  for (const std::string& note : r->stats.notes) {
    saw_superset_note =
        saw_superset_note || note.find("superset") != std::string::npos;
  }
  EXPECT_TRUE(saw_superset_note);
}

TEST(EngineOptionsTest, StatsTimingsAndAlgebraCountsPopulated) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("doc.bib", kDoc).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto r = system.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"CHANG\"");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.algebra.total_ops(), 0u);
  EXPECT_EQ(r->stats.corpus_bytes, system.corpus().size());
}

}  // namespace
}  // namespace qof
