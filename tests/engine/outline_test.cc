// End-to-end tests of the recursive outline schema: cyclic RIG
// (Section -> Subsections -> Section), nested view regions, and the
// §5.3 transitive-closure queries.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

// A hand-written outline with known structure:
//   A { B { D } C }   E { F }
// where C and F carry the probe title "Optimization".
constexpr const char* kDoc =
    "<sec [Alpha] intro words { "
    "<sec [Beta] more words { "
    "<sec [Delta] deep words { } sec> } sec> "
    "<sec [Optimization] tuning words { } sec> } sec>\n"
    "<sec [Epsilon] other words { "
    "<sec [Optimization] also tuning { } sec> } sec>\n";

class OutlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = OutlineSchema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    system_ = std::make_unique<FileQuerySystem>(*schema);
    ASSERT_TRUE(system_->AddFile("doc.outline", kDoc).ok());
    ASSERT_TRUE(system_->BuildIndexes().ok());
  }

  // Titles of the result sections.
  std::set<std::string> Titles(const QueryResult& result) {
    std::set<std::string> out;
    for (const Region& r : result.regions) {
      std::string_view text = system_->corpus().RawText(r.start, r.end);
      size_t b = text.find('[') + 1;
      size_t e = text.find(']');
      out.insert(std::string(text.substr(b, e - b)));
    }
    return out;
  }

  QueryResult Run(std::string_view fql,
                  ExecutionMode mode = ExecutionMode::kAuto) {
    auto r = system_->Execute(fql, mode);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  " << fql;
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<FileQuerySystem> system_;
};

TEST_F(OutlineTest, RigHasCycle) {
  const Rig& rig = system_->full_rig();
  auto section = rig.FindNode("Section");
  ASSERT_NE(section, Rig::kInvalidNode);
  EXPECT_TRUE(rig.Reachable(section, section));  // via Subsections
  EXPECT_TRUE(rig.HasEdge("Subsections", "Section"));
  EXPECT_TRUE(rig.HasEdge("Section", "Subsections"));
}

TEST_F(OutlineTest, AllNestingLevelsAreViewObjects) {
  QueryResult all = Run("SELECT s FROM Sections s");
  EXPECT_EQ(all.regions.size(), 6u);  // A, B, D, C, E, F
  QueryResult base =
      Run("SELECT s FROM Sections s", ExecutionMode::kBaseline);
  EXPECT_EQ(base.regions.size(), 6u);
}

TEST_F(OutlineTest, DirectTitleQuery) {
  QueryResult r =
      Run("SELECT s FROM Sections s WHERE s.SecTitle = \"Optimization\"");
  EXPECT_EQ(Titles(r), (std::set<std::string>{"Optimization"}));
  EXPECT_EQ(r.regions.size(), 2u);  // C and F
  EXPECT_EQ(r.stats.strategy, "index-only");
}

TEST_F(OutlineTest, ClosureQueryFindsAncestors) {
  // Sections having an "Optimization" section anywhere below (or being
  // one): A (via C), E (via F), C and F themselves — §5.3's transitive
  // closure as a single plain-inclusion expression.
  QueryResult r = Run(
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"");
  EXPECT_EQ(Titles(r),
            (std::set<std::string>{"Alpha", "Epsilon", "Optimization"}));
  EXPECT_EQ(r.regions.size(), 4u);
  EXPECT_EQ(r.stats.strategy, "index-only");
}

TEST_F(OutlineTest, OneLevelQueryViaConcretePath) {
  // Sections with a *direct* subsection titled Optimization: only A and E.
  QueryResult r = Run(
      "SELECT s FROM Sections s "
      "WHERE s.Subsections.Section.SecTitle = \"Optimization\"");
  EXPECT_EQ(Titles(r), (std::set<std::string>{"Alpha", "Epsilon"}));
  EXPECT_EQ(r.regions.size(), 2u);
}

TEST_F(OutlineTest, DeepConcretePath) {
  // Grandchild title Delta: only Alpha qualifies (A -> B -> D).
  QueryResult r = Run(
      "SELECT s FROM Sections s WHERE "
      "s.Subsections.Section.Subsections.Section.SecTitle = \"Delta\"");
  EXPECT_EQ(Titles(r), (std::set<std::string>{"Alpha"}));
}

TEST_F(OutlineTest, StrategiesAgreeOnRecursiveSchema) {
  const char* queries[] = {
      "SELECT s FROM Sections s WHERE s.SecTitle = \"Optimization\"",
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"",
      "SELECT s FROM Sections s WHERE "
      "s.Subsections.Section.SecTitle = \"Optimization\"",
      "SELECT s FROM Sections s WHERE s.Prose CONTAINS \"tuning\"",
  };
  for (const char* fql : queries) {
    QueryResult indexed = Run(fql);
    QueryResult base = Run(fql, ExecutionMode::kBaseline);
    EXPECT_EQ(Titles(indexed), Titles(base)) << fql;
    EXPECT_EQ(indexed.regions.size(), base.regions.size()) << fql;
  }
}

TEST_F(OutlineTest, PartialIndexOnRecursiveSchema) {
  ASSERT_TRUE(
      system_->BuildIndexes(IndexSpec::Partial({"Section", "SecTitle"}))
          .ok());
  QueryResult indexed = Run(
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"");
  QueryResult base = Run(
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"",
      ExecutionMode::kBaseline);
  EXPECT_EQ(Titles(indexed), Titles(base));
  EXPECT_EQ(indexed.regions.size(), base.regions.size());
}

TEST(OutlineGenTest, GeneratedOutlinesParse) {
  OutlineGenOptions opt;
  opt.num_top_sections = 15;
  opt.probe_title_rate = 0.2;
  std::string text = GenerateOutline(opt);
  auto schema = OutlineSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("gen.outline", text).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto all = system.Execute("SELECT s FROM Sections s");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_GE(all->regions.size(), 15u);  // nested sections add more

  // Closure query agrees with baseline on generated data.
  const char* fql =
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"";
  auto indexed = system.Execute(fql);
  ASSERT_TRUE(indexed.ok());
  auto base = system.Execute(fql, ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(indexed->regions.size(), base->regions.size());
}

}  // namespace
}  // namespace qof
