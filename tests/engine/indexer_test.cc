#include "qof/engine/indexer.h"

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"

namespace qof {
namespace {

class IndexerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<StructuringSchema>(*schema);
  }

  std::unique_ptr<StructuringSchema> schema_;
};

TEST_F(IndexerTest, IndexesMultipleDocuments) {
  Corpus corpus;
  BibtexGenOptions gen;
  gen.num_references = 10;
  gen.seed = 1;
  ASSERT_TRUE(corpus.AddDocument("a.bib", GenerateBibtex(gen)).ok());
  gen.seed = 2;
  gen.num_references = 15;
  ASSERT_TRUE(corpus.AddDocument("b.bib", GenerateBibtex(gen)).ok());

  auto built = BuildIndexes(*schema_, corpus, IndexSpec::Full());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->documents, 2u);
  auto refs = built->regions.Get("Reference");
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ((*refs)->size(), 25u);
  // Regions from different documents do not overlap and the whole
  // universe is laminar.
  EXPECT_TRUE(built->regions.Universe().IsLaminar());
  // The word index spans both documents.
  EXPECT_GT(built->words.num_postings(), 100u);
}

TEST_F(IndexerTest, IndexingDoesNotCountAsQueryScanning) {
  Corpus corpus;
  BibtexGenOptions gen;
  gen.num_references = 5;
  ASSERT_TRUE(corpus.AddDocument("a.bib", GenerateBibtex(gen)).ok());
  corpus.ResetBytesRead();
  auto built = BuildIndexes(*schema_, corpus, IndexSpec::Full());
  ASSERT_TRUE(built.ok());
  // Index construction is pre-processing (paper §1); the query-time
  // scanned-bytes budget stays untouched.
  EXPECT_EQ(corpus.bytes_read(), 0u);
}

TEST_F(IndexerTest, MalformedDocumentNamesTheFile) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocument("good.bib", "").ok());
  ASSERT_TRUE(corpus.AddDocument("bad.bib", "@BOOK{nope}").ok());
  auto built = BuildIndexes(*schema_, corpus, IndexSpec::Full());
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsParseError());
  EXPECT_NE(built.status().message().find("bad.bib"), std::string::npos);
}

TEST_F(IndexerTest, PartialSpecIndexesOnlyRequestedNames) {
  Corpus corpus;
  BibtexGenOptions gen;
  gen.num_references = 5;
  ASSERT_TRUE(corpus.AddDocument("a.bib", GenerateBibtex(gen)).ok());
  auto built = BuildIndexes(*schema_, corpus,
                            IndexSpec::Partial({"Reference", "Year"}));
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->regions.num_names(), 2u);
  EXPECT_TRUE(built->regions.Has("Reference"));
  EXPECT_TRUE(built->regions.Has("Year"));
  EXPECT_FALSE(built->regions.Has("Authors"));
}

TEST_F(IndexerTest, FoldCaseOptionPropagates) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocument("a.bib", "").ok());
  IndexSpec spec;
  spec.word_options.fold_case = true;
  auto built = BuildIndexes(*schema_, corpus, spec);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->words.options().fold_case);
}

TEST_F(IndexerTest, BuildTimeIsReported) {
  Corpus corpus;
  BibtexGenOptions gen;
  gen.num_references = 200;
  ASSERT_TRUE(corpus.AddDocument("a.bib", GenerateBibtex(gen)).ok());
  auto built = BuildIndexes(*schema_, corpus, IndexSpec::Full());
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->build_micros, 0u);
}

}  // namespace
}  // namespace qof
