#include "qof/engine/condition_eval.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

class ConditionEvalTest : public ::testing::Test {
 protected:
  static Value Name(const char* first, const char* last) {
    return Value::MakeTuple({{"First_Name", Value::Str(first)},
                             {"Last_Name", Value::Str(last)}})
        .WithType("Name");
  }

  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    rig_ = DeriveFullRig(*schema);
    Value state =
        Value::MakeTuple(
            {{"Key", Value::Str("Corl82a")},
             {"Title", Value::Str("Solving Ordinary Equations")},
             {"Year", Value::Int(1982)},
             {"Authors", Value::MakeSet({Name("Y. F.", "Chang"),
                                         Name("G. F.", "Corliss")})
                             .WithType("Authors")},
             {"Editors",
              Value::MakeSet({Name("A.", "Griewank")}).WithType("Editors")},
             {"Keywords",
              Value::MakeSet({Value::Str("Taylor series"),
                              Value::Str("point algorithm")})
                  .WithType("Keywords")}})
            .WithType("Reference");
    id_ = store_.Insert("Reference", state);
    root_ = Value::Ref(id_).WithType("Reference");
  }

  bool Eval(const char* where) {
    auto q = ParseFql(std::string("SELECT r FROM References r WHERE ") +
                      where);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto r = EvaluateCondition(store_, root_, *q->where, rig_,
                               "Reference");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  }

  Rig rig_;
  ObjectStore store_;
  ObjectId id_ = 0;
  Value root_;
};

TEST_F(ConditionEvalTest, FlattenText) {
  EXPECT_EQ(FlattenText(store_, Value::Str("abc")), "abc");
  EXPECT_EQ(FlattenText(store_, Value::Int(42)), "42");
  EXPECT_EQ(FlattenText(store_, Name("Y. F.", "Chang")), "Y. F. Chang");
  EXPECT_EQ(FlattenText(store_, Value::Null()), "");
  // Refs flatten through the store.
  std::string whole = FlattenText(store_, root_);
  EXPECT_NE(whole.find("Corl82a"), std::string::npos);
  EXPECT_NE(whole.find("1982"), std::string::npos);
}

TEST_F(ConditionEvalTest, ValueMatchesLiteralTrims) {
  EXPECT_TRUE(ValueMatchesLiteral(store_, Value::Str("Chang"), "Chang"));
  EXPECT_TRUE(
      ValueMatchesLiteral(store_, Value::Str("Chang"), "  Chang  "));
  EXPECT_FALSE(ValueMatchesLiteral(store_, Value::Str("Chang"), "Chan"));
  EXPECT_TRUE(ValueMatchesLiteral(store_, Name("Y. F.", "Chang"),
                                  "Y. F. Chang"));
}

TEST_F(ConditionEvalTest, ValueContainsWordTokenizes) {
  Value title = Value::Str("Solving Ordinary Equations");
  EXPECT_TRUE(ValueContainsWord(store_, title, "Ordinary"));
  EXPECT_FALSE(ValueContainsWord(store_, title, "Ordinar"));
  EXPECT_FALSE(ValueContainsWord(store_, title, "ordinary"));  // case
}

TEST_F(ConditionEvalTest, EqualityLeaves) {
  EXPECT_TRUE(Eval("r.Key = \"Corl82a\""));
  EXPECT_FALSE(Eval("r.Key = \"Other\""));
  EXPECT_TRUE(Eval("r.Year = \"1982\""));
  EXPECT_TRUE(Eval("r.Authors.Name.Last_Name = \"Chang\""));
  EXPECT_FALSE(Eval("r.Editors.Name.Last_Name = \"Chang\""));
}

TEST_F(ConditionEvalTest, BooleanOperators) {
  EXPECT_TRUE(Eval("r.Key = \"Corl82a\" AND r.Year = \"1982\""));
  EXPECT_FALSE(Eval("r.Key = \"Corl82a\" AND r.Year = \"1983\""));
  EXPECT_TRUE(Eval("r.Year = \"1983\" OR r.Year = \"1982\""));
  EXPECT_TRUE(Eval("NOT r.Year = \"1983\""));
  EXPECT_FALSE(Eval("NOT r.Year = \"1982\""));
}

TEST_F(ConditionEvalTest, WildcardPaths) {
  EXPECT_TRUE(Eval("r.*X.Last_Name = \"Chang\""));
  EXPECT_TRUE(Eval("r.*X.Last_Name = \"Griewank\""));
  EXPECT_FALSE(Eval("r.*X.Last_Name = \"Milo\""));
  EXPECT_TRUE(Eval("r.?A.Name.Last_Name = \"Griewank\""));
}

TEST_F(ConditionEvalTest, ContainsLeaf) {
  EXPECT_TRUE(Eval("r.Title CONTAINS \"Ordinary\""));
  EXPECT_TRUE(Eval("r.Keywords CONTAINS \"Taylor\""));
  EXPECT_FALSE(Eval("r.Title CONTAINS \"Fortran\""));
}

TEST_F(ConditionEvalTest, JoinLeaf) {
  // No editor is an author in this object.
  EXPECT_FALSE(Eval("r.Editors.Name = r.Authors.Name"));
  EXPECT_TRUE(Eval("r.Authors.Name = r.Authors.Name"));
  EXPECT_FALSE(
      Eval("r.Editors.Name.Last_Name = r.Authors.Name.Last_Name"));
}

TEST_F(ConditionEvalTest, EvaluateTargetProjection) {
  auto q = ParseFql("SELECT r.Authors.Name.Last_Name FROM References r");
  ASSERT_TRUE(q.ok());
  auto values =
      EvaluateTarget(store_, root_, q->target, rig_, "Reference");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 2u);
  // Empty target path yields the object itself.
  PathExpr bare;
  bare.var = "r";
  auto self = EvaluateTarget(store_, root_, bare, rig_, "Reference");
  ASSERT_TRUE(self.ok());
  ASSERT_EQ(self->size(), 1u);
  EXPECT_EQ((*self)[0].kind(), Value::Kind::kRef);
}

}  // namespace
}  // namespace qof
