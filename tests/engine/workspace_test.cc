#include "qof/engine/workspace.h"

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/schemas.h"

namespace qof {
namespace {

class WorkspaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ws_.AddSchema(*BibtexSchema()).ok());
    ASSERT_TRUE(ws_.AddSchema(*MailSchema()).ok());
    ASSERT_TRUE(ws_.AddSchema(*LogSchema()).ok());
    BibtexGenOptions bib;
    bib.num_references = 30;
    bib.probe_author_rate = 0.3;
    ASSERT_TRUE(
        ws_.AddFile("BibTeX", "refs.bib", GenerateBibtex(bib)).ok());
    MailGenOptions mail;
    mail.num_messages = 30;
    mail.probe_sender_rate = 0.3;
    ASSERT_TRUE(
        ws_.AddFile("Mail", "inbox.mail", GenerateMailbox(mail)).ok());
    LogGenOptions log;
    log.num_entries = 100;
    ASSERT_TRUE(ws_.AddFile("Log", "app.log", GenerateLog(log)).ok());
    ASSERT_TRUE(ws_.BuildAllIndexes().ok());
  }

  Workspace ws_;
};

TEST_F(WorkspaceTest, RoutesByViewName) {
  auto refs = ws_.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  EXPECT_GT(refs->regions.size(), 0u);

  auto mail = ws_.Execute(
      "SELECT m FROM Messages m "
      "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"");
  ASSERT_TRUE(mail.ok()) << mail.status().ToString();
  EXPECT_GT(mail->regions.size(), 0u);

  auto logs =
      ws_.Execute("SELECT e FROM Entries e WHERE e.Level = \"INFO\"");
  ASSERT_TRUE(logs.ok()) << logs.status().ToString();
  EXPECT_GT(logs->regions.size(), 0u);
}

TEST_F(WorkspaceTest, UnknownViewIsNotFound) {
  auto r = ws_.Execute("SELECT x FROM Ghosts x");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(WorkspaceTest, ExplainRoutesToo) {
  auto text = ws_.Explain(
      "SELECT e FROM Entries e WHERE e.Level = \"ERROR\"");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("strategy:"), std::string::npos);
}

TEST_F(WorkspaceTest, PerSchemaIndexSpecs) {
  ASSERT_TRUE(
      ws_.BuildIndexes("BibTeX",
                       IndexSpec::Partial({"Reference", "Last_Name"}))
          .ok());
  auto refs = ws_.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(refs->stats.strategy, "two-phase");
  // Other schemas untouched.
  auto logs =
      ws_.Execute("SELECT e FROM Entries e WHERE e.Level = \"INFO\"");
  ASSERT_TRUE(logs.ok());
  EXPECT_EQ(logs->stats.strategy, "index-only");
}

TEST_F(WorkspaceTest, DuplicateSchemaRejected) {
  EXPECT_FALSE(ws_.AddSchema(*BibtexSchema()).ok());
}

TEST_F(WorkspaceTest, SchemaNamesAndSystemAccess) {
  EXPECT_EQ(ws_.num_schemas(), 3u);
  EXPECT_EQ(ws_.SchemaNames(),
            (std::vector<std::string>{"BibTeX", "Mail", "Log"}));
  auto system = ws_.System("Mail");
  ASSERT_TRUE(system.ok());
  EXPECT_EQ((*system)->schema().view_name(), "Message");
  EXPECT_FALSE(ws_.System("Nope").ok());
}

TEST(WorkspaceCollisionTest, ViewNameCollisionRejected) {
  Workspace ws;
  ASSERT_TRUE(ws.AddSchema(*BibtexSchema()).ok());
  // A second schema whose view is also "Reference".
  SchemaBuilder b("Clone", "Top", "Reference");
  b.Star("Top", "Reference", "", Action::CollectSet());
  b.Sequence("Reference", {b.Lit("<"), b.NT("W"), b.Lit(">")},
             Action::Child(1));
  b.Token("W", TokenKind::kWord);
  auto clone = b.Build();
  ASSERT_TRUE(clone.ok());
  EXPECT_FALSE(ws.AddSchema(*clone).ok());
}

}  // namespace
}  // namespace qof
