// End-to-end property tests: on generated corpora, every index-backed
// execution strategy must agree with the baseline full scan, under every
// index spec — the system's core soundness property.

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"

namespace qof {
namespace {

std::set<std::string> Spans(const QueryResult& result) {
  std::set<std::string> out;
  for (const Region& r : result.regions) out.insert(r.ToString());
  return out;
}

class BibtexIntegrationTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    auto schema = BibtexSchema();
    ASSERT_TRUE(schema.ok());
    system_ = std::make_unique<FileQuerySystem>(*schema);
    BibtexGenOptions opt;
    opt.num_references = 60;
    opt.seed = GetParam();
    opt.probe_author_rate = 0.2;
    opt.probe_editor_rate = 0.2;
    ASSERT_TRUE(system_->AddFile("gen.bib", GenerateBibtex(opt)).ok());
  }

  void CheckAgreement(const std::string& fql, const IndexSpec& spec) {
    ASSERT_TRUE(system_->BuildIndexes(spec).ok());
    auto indexed = system_->Execute(fql);
    ASSERT_TRUE(indexed.ok())
        << indexed.status().ToString() << "\n  " << fql;
    auto baseline = system_->Execute(fql, ExecutionMode::kBaseline);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_EQ(Spans(*indexed), Spans(*baseline))
        << fql << "\n  spec: " << spec.ToString()
        << "\n  strategy: " << indexed->stats.strategy;
  }

  std::unique_ptr<FileQuerySystem> system_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, BibtexIntegrationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(BibtexIntegrationTest, StrategiesAgreeAcrossIndexSpecs) {
  const std::string queries[] = {
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"",
      "SELECT r FROM References r WHERE r.Publisher = \"SIAM\"",
      "SELECT r FROM References r WHERE r.Keywords CONTAINS \"Taylor\"",
      "SELECT r FROM References r WHERE r.Keywords CONTAINS "
      "\"Taylor series\"",
      "SELECT r FROM References r WHERE r.Title STARTS \"Sol\"",
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\" AND NOT r.Editors.Name.Last_Name = \"Chang\"",
      "SELECT r FROM References r WHERE r.Year = \"1982\" OR r.Year = "
      "\"1983\"",
      "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "
      "r.Authors.Name.Last_Name",
      "SELECT r FROM References r WHERE r.?A.Name.Last_Name = \"Chang\"",
  };
  const IndexSpec specs[] = {
      IndexSpec::Full(),
      IndexSpec::Partial({"Reference", "Key", "Last_Name"}),
      IndexSpec::Partial({"Reference", "Authors", "Editors", "Name",
                          "Last_Name"}),
      IndexSpec::Partial({"Reference", "Authors", "Last_Name"}),
      IndexSpec::Partial({"Reference", "Publisher", "Year", "Keywords",
                          "Keyword"}),
      IndexSpec::Partial({"Reference"}),
  };
  for (const IndexSpec& spec : specs) {
    for (const std::string& fql : queries) {
      CheckAgreement(fql, spec);
    }
  }
}

TEST_P(BibtexIntegrationTest, TwoPhaseInvariants) {
  // Candidates are a superset of results, and (for word-level
  // selections) the bytes scanned equal the candidates' total length.
  ASSERT_TRUE(system_
                  ->BuildIndexes(IndexSpec::Partial(
                      {"Reference", "Key", "Last_Name"}))
                  .ok());
  auto r = system_->Execute(
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->stats.strategy, "two-phase");
  EXPECT_GE(r->stats.candidates, r->stats.results);
  EXPECT_EQ(r->stats.objects_built, r->stats.candidates);
  EXPECT_LE(r->stats.bytes_scanned, r->stats.corpus_bytes);
  // Exact plans never scan.
  ASSERT_TRUE(system_->BuildIndexes().ok());
  auto exact = system_->Execute(
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->stats.bytes_scanned, 0u);
  EXPECT_EQ(exact->stats.objects_built, 0u);
}

TEST_P(BibtexIntegrationTest, ProjectionAgreesWithBaseline) {
  ASSERT_TRUE(system_->BuildIndexes(IndexSpec::Full()).ok());
  const std::string fql =
      "SELECT r.Authors.Name.Last_Name FROM References r WHERE "
      "r.Publisher = \"SIAM\"";
  auto indexed = system_->Execute(fql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  auto baseline = system_->Execute(fql, ExecutionMode::kBaseline);
  ASSERT_TRUE(baseline.ok());
  // Index projection returns attribute-region texts; baseline returns
  // navigated values. Compare multisets of rendered strings.
  EXPECT_EQ(indexed->RenderedValues(), baseline->RenderedValues()) << fql;
}

TEST(MailIntegrationTest, SenderVersusRecipientRoles) {
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  MailGenOptions opt;
  opt.num_messages = 80;
  opt.probe_sender_rate = 0.15;
  opt.probe_recipient_rate = 0.15;
  ASSERT_TRUE(system.AddFile("box.mail", GenerateMailbox(opt)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());

  auto sender = system.Execute(
      "SELECT m FROM Messages m "
      "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"");
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();
  auto recipient = system.Execute(
      "SELECT m FROM Messages m "
      "WHERE m.Recipients.Address.Addr_Name = \"Dana Chang\"");
  ASSERT_TRUE(recipient.ok()) << recipient.status().ToString();
  auto any = system.Execute(
      "SELECT m FROM Messages m WHERE m.*X.Addr_Name = \"Dana Chang\"");
  ASSERT_TRUE(any.ok());
  EXPECT_GT(sender->regions.size(), 0u);
  EXPECT_GT(recipient->regions.size(), 0u);
  // The union of roles equals the wildcard query.
  std::set<std::string> role_union = Spans(*sender);
  for (const auto& s : Spans(*recipient)) role_union.insert(s);
  EXPECT_EQ(role_union, Spans(*any));

  // Baseline agreement.
  auto base = system.Execute(
      "SELECT m FROM Messages m "
      "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*base), Spans(*sender));
}

TEST(MailIntegrationTest, TagAndSubjectQueries) {
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  MailGenOptions opt;
  opt.num_messages = 50;
  ASSERT_TRUE(system.AddFile("box.mail", GenerateMailbox(opt)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto urgent = system.Execute(
      "SELECT m FROM Messages m WHERE m.Tags.Tag = \"urgent\"");
  ASSERT_TRUE(urgent.ok()) << urgent.status().ToString();
  auto base = system.Execute(
      "SELECT m FROM Messages m WHERE m.Tags.Tag = \"urgent\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*urgent), Spans(*base));
  EXPECT_GT(urgent->regions.size(), 0u);
}

TEST(LogIntegrationTest, ErrorsByComponent) {
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  LogGenOptions opt;
  opt.num_entries = 400;
  opt.error_rate = 0.1;
  ASSERT_TRUE(system.AddFile("app.log", GenerateLog(opt)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());

  auto errors = system.Execute(
      "SELECT e FROM Entries e WHERE e.Level = \"ERROR\"");
  ASSERT_TRUE(errors.ok()) << errors.status().ToString();
  EXPECT_EQ(errors->stats.strategy, "index-only");
  EXPECT_GT(errors->regions.size(), 0u);

  auto auth_errors = system.Execute(
      "SELECT e FROM Entries e WHERE e.Level = \"ERROR\" AND "
      "e.Component = \"auth\"");
  ASSERT_TRUE(auth_errors.ok());
  EXPECT_LE(auth_errors->regions.size(), errors->regions.size());

  auto base = system.Execute(
      "SELECT e FROM Entries e WHERE e.Level = \"ERROR\" AND "
      "e.Component = \"auth\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*auth_errors), Spans(*base));
}

TEST(SelectiveIndexIntegrationTest, OutOfContextQueriesStaySound) {
  // Regression: Name/Last_Name indexed only within Authors. Queries on
  // the *editor* side must not trust those instances (they are missing
  // editor-side regions) — the compiler treats them as unindexed there
  // and the engine falls back to a verified superset.
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  BibtexGenOptions opt;
  opt.num_references = 80;
  opt.probe_author_rate = 0.2;
  opt.probe_editor_rate = 0.2;
  ASSERT_TRUE(system.AddFile("gen.bib", GenerateBibtex(opt)).ok());
  IndexSpec spec = IndexSpec::Partial(
      {"Reference", "Authors", "Editors", "Name", "Last_Name"});
  spec.within["Name"] = "Authors";
  spec.within["Last_Name"] = "Authors";
  ASSERT_TRUE(system.BuildIndexes(spec).ok());
  const char* queries[] = {
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"",
  };
  for (const char* fql : queries) {
    auto indexed = system.Execute(fql);
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    auto base = system.Execute(fql, ExecutionMode::kBaseline);
    ASSERT_TRUE(base.ok());
    EXPECT_EQ(Spans(*indexed), Spans(*base)) << fql;
  }
  // The in-context query is still answered purely on the indices.
  auto author_plan = system.Plan(queries[0]);
  ASSERT_TRUE(author_plan.ok());
  EXPECT_TRUE(author_plan->exact);
  auto editor_plan = system.Plan(queries[1]);
  ASSERT_TRUE(editor_plan.ok());
  EXPECT_FALSE(editor_plan->exact);
}

TEST(LogIntegrationTest, MessageWordSearch) {
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok());
  FileQuerySystem system(*schema);
  LogGenOptions opt;
  opt.num_entries = 300;
  ASSERT_TRUE(system.AddFile("app.log", GenerateLog(opt)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto timeouts = system.Execute(
      "SELECT e FROM Entries e WHERE e.Message CONTAINS \"timeout\"");
  ASSERT_TRUE(timeouts.ok()) << timeouts.status().ToString();
  auto base = system.Execute(
      "SELECT e FROM Entries e WHERE e.Message CONTAINS \"timeout\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(Spans(*timeouts), Spans(*base));
}

}  // namespace
}  // namespace qof
