#include "qof/engine/join.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

// Corpus layout (offsets):
//   candidate 1: [0,30)   lhs "ann" at [2,5),   rhs "bob" at [10,13)
//   candidate 2: [40,70)  lhs "cat" at [42,45), rhs "cat" at [50,53)
//   candidate 3: [80,110) lhs none,             rhs "dog" at [90,93)
class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string text(120, '.');
    text.replace(2, 3, "ann");
    text.replace(10, 3, "bob");
    text.replace(42, 3, "cat");
    text.replace(50, 3, "cat");
    text.replace(90, 3, "dog");
    ASSERT_TRUE(corpus_.AddDocument("t", text).ok());
    candidates_ = RegionSet::FromUnsorted({{0, 30}, {40, 70}, {80, 110}});
    lhs_ = RegionSet::FromUnsorted({{2, 5}, {42, 45}});
    rhs_ = RegionSet::FromUnsorted({{10, 13}, {50, 53}, {90, 93}});
  }

  Corpus corpus_;
  RegionSet candidates_;
  RegionSet lhs_;
  RegionSet rhs_;
};

TEST_F(JoinTest, KeepsCandidatesWithMatchingTexts) {
  auto out = RunIndexJoin(corpus_, candidates_, lhs_, rhs_);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (Region{40, 70}));
}

TEST_F(JoinTest, EmptySidesYieldNothing) {
  auto out = RunIndexJoin(corpus_, candidates_, RegionSet(), rhs_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  auto out2 = RunIndexJoin(corpus_, RegionSet(), lhs_, rhs_);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2->empty());
}

TEST_F(JoinTest, OnlyReadsAttributeBytes) {
  corpus_.ResetBytesRead();
  auto out = RunIndexJoin(corpus_, candidates_, lhs_, rhs_);
  ASSERT_TRUE(out.ok());
  // 2 lhs + 3 rhs regions, 3 bytes each — far below the 90 candidate
  // bytes a parse would touch. (rhs groups are skipped when lhs is
  // empty, so candidate 3's rhs may remain unread.)
  EXPECT_LE(corpus_.bytes_read(), 15u);
  EXPECT_GT(corpus_.bytes_read(), 0u);
}

TEST_F(JoinTest, AttributesOutsideCandidatesIgnored) {
  // Attribute regions not inside any candidate never match.
  RegionSet stray_lhs = RegionSet::FromUnsorted({{111, 114}});
  auto out = RunIndexJoin(corpus_, candidates_, stray_lhs, rhs_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(JoinTest, WhitespaceTrimmedComparison) {
  // lhs span includes surrounding dots? No — craft spans with padding
  // spaces to check trimming.
  std::string text = "[ cat ]...[cat]";
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocument("t", text).ok());
  RegionSet candidates = RegionSet::FromUnsorted({{0, 15}});
  RegionSet lhs = RegionSet::FromUnsorted({{1, 6}});    // " cat "
  RegionSet rhs = RegionSet::FromUnsorted({{11, 14}});  // "cat"
  auto out = RunIndexJoin(corpus, candidates, lhs, rhs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST_F(JoinTest, AlgorithmsAgreeOnTheFixture) {
  auto nested =
      RunIndexJoin(corpus_, candidates_, lhs_, rhs_,
                   JoinAlgorithm::kNestedLoop);
  auto merged = RunIndexJoin(corpus_, candidates_, lhs_, rhs_,
                             JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*nested, *merged);
  ASSERT_EQ(merged->size(), 1u);
  EXPECT_EQ((*merged)[0], (Region{40, 70}));
}

TEST_F(JoinTest, SortMergeHandlesEmptySides) {
  auto no_lhs = RunIndexJoin(corpus_, candidates_, RegionSet(), rhs_,
                             JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(no_lhs.ok());
  EXPECT_TRUE(no_lhs->empty());
  auto no_rhs = RunIndexJoin(corpus_, candidates_, lhs_, RegionSet(),
                             JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(no_rhs.ok());
  EXPECT_TRUE(no_rhs->empty());
  auto no_candidates = RunIndexJoin(corpus_, RegionSet(), lhs_, rhs_,
                                    JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(no_candidates.ok());
  EXPECT_TRUE(no_candidates->empty());
}

// Builds a corpus of `n` fixed-width candidate blocks, each holding
// `per_side` lhs and `per_side` rhs attribute spans whose texts are drawn
// from a small key alphabet — guaranteeing heavy duplicate keys both
// within a candidate and across candidates.
struct DuplicateKeyFixture {
  static constexpr size_t kBlock = 100;
  Corpus corpus;
  RegionSet candidates;
  RegionSet lhs;
  RegionSet rhs;

  DuplicateKeyFixture(size_t n, size_t per_side, uint32_t seed) {
    static constexpr const char* kKeys[] = {"aa", "bb", "cc", "dd"};
    uint32_t state = seed;
    auto next = [&state]() {
      state = state * 1664525u + 1013904223u;
      return state >> 16;
    };
    std::string text(n * kBlock, '.');
    std::vector<Region> cand, left, right;
    for (size_t i = 0; i < n; ++i) {
      size_t base = i * kBlock;
      cand.push_back({base, base + kBlock - 2});
      for (size_t j = 0; j < per_side; ++j) {
        size_t lpos = base + 2 + j * 4;
        size_t rpos = base + 50 + j * 4;
        text.replace(lpos, 2, kKeys[next() % 4]);
        text.replace(rpos, 2, kKeys[next() % 4]);
        left.push_back({lpos, lpos + 2});
        right.push_back({rpos, rpos + 2});
      }
    }
    EXPECT_TRUE(corpus.AddDocument("dup", text).ok());
    candidates = RegionSet::FromUnsorted(cand);
    lhs = RegionSet::FromUnsorted(left);
    rhs = RegionSet::FromUnsorted(right);
  }
};

TEST(JoinAlgorithmTest, DuplicateKeysJoinIdentically) {
  // Many identical keys per candidate exercise the sort-merge group
  // advance: one match must qualify the candidate exactly once, never
  // once per matching pair.
  DuplicateKeyFixture f(/*n=*/12, /*per_side=*/6, /*seed=*/7);
  auto nested = RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                             JoinAlgorithm::kNestedLoop);
  auto merged = RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                             JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*nested, *merged);
  EXPECT_FALSE(merged->empty());
  // No candidate may appear twice.
  for (size_t i = 1; i < merged->size(); ++i) {
    EXPECT_LT((*merged)[i - 1].start, (*merged)[i].start);
  }
}

TEST(JoinAlgorithmTest, EquivalentAcrossSizesSpanningTheAutoThreshold) {
  // Sweep sizes so total attribute counts land below, at, and above
  // CostModel::kSortMergeJoinMinPairs: kAuto must agree with both forced
  // algorithms everywhere, whichever one it dispatches to.
  for (size_t n : {size_t{2}, size_t{8}, size_t{16}, size_t{40}}) {
    DuplicateKeyFixture f(n, /*per_side=*/2, /*seed=*/static_cast<uint32_t>(n));
    auto nested = RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                               JoinAlgorithm::kNestedLoop);
    auto merged = RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                               JoinAlgorithm::kSortMerge);
    auto autod = RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                              JoinAlgorithm::kAuto);
    ASSERT_TRUE(nested.ok());
    ASSERT_TRUE(merged.ok());
    ASSERT_TRUE(autod.ok());
    EXPECT_EQ(*nested, *merged) << "n=" << n;
    EXPECT_EQ(*nested, *autod) << "n=" << n;
  }
}

TEST(JoinAlgorithmTest, SortMergeSkipsRhsBytesForLhsEmptyCandidates) {
  // Byte-accounting parity with the nested loop: a candidate with no lhs
  // attributes must not have its rhs attribute texts scanned by either
  // algorithm (governance budgets would otherwise diverge by algorithm).
  std::string text(60, '.');
  text.replace(2, 3, "key");   // candidate 1 lhs
  text.replace(10, 3, "key");  // candidate 1 rhs
  text.replace(40, 3, "big");  // candidate 2 rhs only
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocument("t", text).ok());
  RegionSet candidates = RegionSet::FromUnsorted({{0, 30}, {30, 60}});
  RegionSet lhs = RegionSet::FromUnsorted({{2, 5}});
  RegionSet rhs = RegionSet::FromUnsorted({{10, 13}, {40, 43}});
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kSortMerge}) {
    corpus.ResetBytesRead();
    auto out = RunIndexJoin(corpus, candidates, lhs, rhs, algorithm);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 1u);
    // 1 lhs span + 1 rhs span in candidate 1 = 6 bytes; candidate 2's
    // rhs span is skipped because its lhs group is empty.
    EXPECT_EQ(corpus.bytes_read(), 6u);
  }
}

}  // namespace
}  // namespace qof
