#include "qof/engine/join.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

// Corpus layout (offsets):
//   candidate 1: [0,30)   lhs "ann" at [2,5),   rhs "bob" at [10,13)
//   candidate 2: [40,70)  lhs "cat" at [42,45), rhs "cat" at [50,53)
//   candidate 3: [80,110) lhs none,             rhs "dog" at [90,93)
class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string text(120, '.');
    text.replace(2, 3, "ann");
    text.replace(10, 3, "bob");
    text.replace(42, 3, "cat");
    text.replace(50, 3, "cat");
    text.replace(90, 3, "dog");
    ASSERT_TRUE(corpus_.AddDocument("t", text).ok());
    candidates_ = RegionSet::FromUnsorted({{0, 30}, {40, 70}, {80, 110}});
    lhs_ = RegionSet::FromUnsorted({{2, 5}, {42, 45}});
    rhs_ = RegionSet::FromUnsorted({{10, 13}, {50, 53}, {90, 93}});
  }

  Corpus corpus_;
  RegionSet candidates_;
  RegionSet lhs_;
  RegionSet rhs_;
};

TEST_F(JoinTest, KeepsCandidatesWithMatchingTexts) {
  auto out = RunIndexJoin(corpus_, candidates_, lhs_, rhs_);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], (Region{40, 70}));
}

TEST_F(JoinTest, EmptySidesYieldNothing) {
  auto out = RunIndexJoin(corpus_, candidates_, RegionSet(), rhs_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  auto out2 = RunIndexJoin(corpus_, RegionSet(), lhs_, rhs_);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2->empty());
}

TEST_F(JoinTest, OnlyReadsAttributeBytes) {
  corpus_.ResetBytesRead();
  auto out = RunIndexJoin(corpus_, candidates_, lhs_, rhs_);
  ASSERT_TRUE(out.ok());
  // 2 lhs + 3 rhs regions, 3 bytes each — far below the 90 candidate
  // bytes a parse would touch. (rhs groups are skipped when lhs is
  // empty, so candidate 3's rhs may remain unread.)
  EXPECT_LE(corpus_.bytes_read(), 15u);
  EXPECT_GT(corpus_.bytes_read(), 0u);
}

TEST_F(JoinTest, AttributesOutsideCandidatesIgnored) {
  // Attribute regions not inside any candidate never match.
  RegionSet stray_lhs = RegionSet::FromUnsorted({{111, 114}});
  auto out = RunIndexJoin(corpus_, candidates_, stray_lhs, rhs_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(JoinTest, WhitespaceTrimmedComparison) {
  // lhs span includes surrounding dots? No — craft spans with padding
  // spaces to check trimming.
  std::string text = "[ cat ]...[cat]";
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocument("t", text).ok());
  RegionSet candidates = RegionSet::FromUnsorted({{0, 15}});
  RegionSet lhs = RegionSet::FromUnsorted({{1, 6}});    // " cat "
  RegionSet rhs = RegionSet::FromUnsorted({{11, 14}});  // "cat"
  auto out = RunIndexJoin(corpus, candidates, lhs, rhs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

}  // namespace
}  // namespace qof
