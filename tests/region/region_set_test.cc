#include "qof/region/region_set.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

RegionSet RS(std::vector<Region> v) {
  return RegionSet::FromUnsorted(std::move(v));
}

TEST(RegionTest, ContainmentSemantics) {
  Region outer{0, 10};
  Region inner{2, 5};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_TRUE(outer.StrictlyContains(inner));
  EXPECT_FALSE(outer.StrictlyContains(outer));
  EXPECT_FALSE(inner.Contains(outer));
  // Shared endpoint still counts as containment (endpoints "within").
  EXPECT_TRUE(outer.Contains(Region{0, 10}));
  EXPECT_TRUE(outer.Contains(Region{5, 10}));
}

TEST(RegionTest, CanonicalOrderPutsEnclosersFirst) {
  // Same start: longer region sorts first.
  EXPECT_TRUE(Region({0, 10}) < Region({0, 5}));
  EXPECT_TRUE(Region({0, 5}) < Region({1, 3}));
  EXPECT_FALSE(Region({1, 3}) < Region({1, 3}));
}

TEST(RegionSetTest, FromUnsortedSortsAndDedupes) {
  RegionSet s = RS({{5, 8}, {0, 10}, {5, 8}, {0, 3}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], (Region{0, 10}));
  EXPECT_EQ(s[1], (Region{0, 3}));
  EXPECT_EQ(s[2], (Region{5, 8}));
}

TEST(RegionSetTest, ContainsRegionExactSpanOnly) {
  RegionSet s = RS({{0, 10}, {5, 8}});
  EXPECT_TRUE(s.ContainsRegion({5, 8}));
  EXPECT_FALSE(s.ContainsRegion({5, 9}));
  EXPECT_FALSE(s.ContainsRegion({6, 8}));
}

TEST(RegionSetTest, SetOperations) {
  RegionSet a = RS({{0, 2}, {4, 6}, {8, 10}});
  RegionSet b = RS({{4, 6}, {8, 10}, {12, 14}});
  EXPECT_EQ(Union(a, b), RS({{0, 2}, {4, 6}, {8, 10}, {12, 14}}));
  EXPECT_EQ(Intersect(a, b), RS({{4, 6}, {8, 10}}));
  EXPECT_EQ(Difference(a, b), RS({{0, 2}}));
  EXPECT_EQ(Difference(b, a), RS({{12, 14}}));
}

TEST(RegionSetTest, SetOperationsWithEmpty) {
  RegionSet a = RS({{0, 2}});
  RegionSet e;
  EXPECT_EQ(Union(a, e), a);
  EXPECT_EQ(Intersect(a, e), e);
  EXPECT_EQ(Difference(a, e), a);
  EXPECT_EQ(Difference(e, a), e);
}

TEST(RegionSetTest, InnermostKeepsDeepestOnly) {
  // Nested chain: only the deepest survives.
  RegionSet s = RS({{0, 10}, {1, 9}, {2, 8}});
  EXPECT_EQ(Innermost(s), RS({{2, 8}}));
  // Two disjoint leaves under one parent: both survive.
  RegionSet t = RS({{0, 10}, {1, 3}, {5, 7}});
  EXPECT_EQ(Innermost(t), RS({{1, 3}, {5, 7}}));
}

TEST(RegionSetTest, OutermostKeepsShallowestOnly) {
  RegionSet s = RS({{0, 10}, {1, 9}, {2, 8}});
  EXPECT_EQ(Outermost(s), RS({{0, 10}}));
  RegionSet t = RS({{0, 4}, {1, 3}, {6, 9}});
  EXPECT_EQ(Outermost(t), RS({{0, 4}, {6, 9}}));
}

TEST(RegionSetTest, InnermostOutermostOnOverlaps) {
  // Partial overlaps: neither contains the other, both survive both ops.
  RegionSet s = RS({{0, 5}, {3, 8}});
  EXPECT_EQ(Innermost(s), s);
  EXPECT_EQ(Outermost(s), s);
}

TEST(RegionSetTest, IncludingSelectsContainers) {
  RegionSet refs = RS({{0, 20}, {30, 50}, {60, 80}});
  RegionSet names = RS({{5, 8}, {35, 38}});
  EXPECT_EQ(Including(refs, names), RS({{0, 20}, {30, 50}}));
  EXPECT_EQ(Including(names, refs), RegionSet());
}

TEST(RegionSetTest, IncludedSelectsContained) {
  RegionSet names = RS({{5, 8}, {35, 38}, {90, 95}});
  RegionSet refs = RS({{0, 20}, {30, 50}});
  EXPECT_EQ(IncludedIn(names, refs), RS({{5, 8}, {35, 38}}));
}

TEST(RegionSetTest, IncludingIsWeakStrictVariantIsNot) {
  RegionSet a = RS({{0, 10}});
  RegionSet b = RS({{0, 10}});
  EXPECT_EQ(Including(a, b), a);    // a region includes itself (weak)
  EXPECT_EQ(IncludedIn(a, b), a);
  EXPECT_EQ(IncludingStrict(a, b), RegionSet());
  EXPECT_EQ(IncludedInStrict(a, b), RegionSet());
}

TEST(RegionSetTest, StrictVariantsSeeDistinctSpans) {
  RegionSet a = RS({{0, 10}});
  RegionSet b = RS({{0, 10}, {2, 5}});
  EXPECT_EQ(IncludingStrict(a, b), a);  // via {2,5}
  RegionSet c = RS({{2, 5}});
  EXPECT_EQ(IncludedInStrict(c, b), c);  // via {0,10}
}

TEST(RegionSetTest, IsLaminar) {
  EXPECT_TRUE(RS({{0, 10}, {2, 5}, {6, 9}, {3, 4}}).IsLaminar());
  EXPECT_TRUE(RS({{0, 5}, {5, 10}}).IsLaminar());  // adjacent ok
  EXPECT_FALSE(RS({{0, 6}, {3, 9}}).IsLaminar());  // partial overlap
  EXPECT_TRUE(RegionSet().IsLaminar());
}

TEST(RegionSetTest, TotalLength) {
  EXPECT_EQ(RS({{0, 10}, {2, 5}}).TotalLength(), 13u);
  EXPECT_EQ(RegionSet().TotalLength(), 0u);
}

// --- direct inclusion -----------------------------------------------------

// Universe mirroring the paper's BibTeX structure:
//   Reference [0,100) ⊃ Authors [10,40) ⊃ Name [12,30) ⊃ Last_Name [20,28)
//   plus Editors [50,80) ⊃ Name [52,70) ⊃ Last_Name [60,68)
struct BibFixture {
  RegionSet reference = RS({{0, 100}});
  RegionSet authors = RS({{10, 40}});
  RegionSet editors = RS({{50, 80}});
  RegionSet name = RS({{12, 30}, {52, 70}});
  RegionSet last_name = RS({{20, 28}, {60, 68}});
  RegionSet universe = Union(
      Union(Union(reference, authors), Union(editors, name)), last_name);
};

TEST(DirectInclusionTest, ParentChildIsDirect) {
  BibFixture f;
  EXPECT_EQ(DirectlyIncluding(f.reference, f.authors, f.universe),
            f.reference);
  EXPECT_EQ(DirectlyIncluding(f.authors, f.name, f.universe), f.authors);
  EXPECT_EQ(DirectlyIncluding(f.name, f.last_name, f.universe), f.name);
}

TEST(DirectInclusionTest, GrandparentIsNotDirect) {
  BibFixture f;
  // Reference ⊃ Name holds but Authors/Editors lie in between.
  EXPECT_EQ(Including(f.reference, f.name), f.reference);
  EXPECT_EQ(DirectlyIncluding(f.reference, f.name, f.universe), RegionSet());
  EXPECT_EQ(DirectlyIncluding(f.reference, f.last_name, f.universe),
            RegionSet());
}

TEST(DirectInclusionTest, DirectlyIncludedMirror) {
  BibFixture f;
  EXPECT_EQ(DirectlyIncluded(f.authors, f.reference, f.universe), f.authors);
  EXPECT_EQ(DirectlyIncluded(f.name, f.reference, f.universe), RegionSet());
  EXPECT_EQ(DirectlyIncluded(f.last_name, f.name, f.universe), f.last_name);
}

TEST(DirectInclusionTest, UnindexedGapMakesInclusionDirect) {
  // Without Name in the universe, Authors ⊃d Last_Name becomes direct.
  BibFixture f;
  RegionSet universe =
      Union(Union(f.reference, f.authors), Union(f.editors, f.last_name));
  EXPECT_EQ(DirectlyIncluding(f.authors, f.last_name, universe), f.authors);
}

TEST(DirectInclusionTest, NestedSelfRegions) {
  // Self-nested regions (cycle in the RIG): sections within sections.
  RegionSet sections = RS({{0, 100}, {10, 50}, {20, 40}, {60, 90}});
  RegionSet universe = sections;
  // outer ⊃d {10,50}? yes. {10,50} ⊃d {20,40}? yes. {0,100} ⊃d {20,40}? no.
  EXPECT_EQ(DirectlyIncluding(sections, RS({{20, 40}}), universe),
            RS({{10, 50}}));
  EXPECT_EQ(DirectlyIncluding(sections, RS({{60, 90}}), universe),
            RS({{0, 100}}));
}

TEST(DirectInclusionTest, LayeredAgreesOnNestedSelfRegions) {
  // The layered program receives the *full instance* of S's region name
  // (its contract — see region_set.h); members of S never act as
  // separators, yet the resulting r-set matches the definition because any
  // r with only S-members in between directly includes the outermost one.
  RegionSet sections = RS({{0, 100}, {10, 50}, {20, 40}, {60, 90}});
  RegionSet direct = DirectlyIncluding(sections, sections, sections);
  EXPECT_EQ(direct, RS({{0, 100}, {10, 50}}));
  RegionSet layered = DirectlyIncludingLayered(sections, sections, {});
  EXPECT_EQ(layered, direct);
}

TEST(DirectInclusionTest, LayeredMatchesFastOnFixture) {
  BibFixture f;
  // I − {Authors-instance}: every other index.
  std::vector<const RegionSet*> others = {&f.reference, &f.editors, &f.name,
                                          &f.last_name};
  EXPECT_EQ(DirectlyIncludingLayered(f.reference, f.authors, others),
            DirectlyIncluding(f.reference, f.authors, f.universe));
  std::vector<const RegionSet*> others2 = {&f.reference, &f.authors,
                                           &f.editors, &f.name};
  EXPECT_EQ(DirectlyIncludingLayered(f.name, f.last_name, others2),
            DirectlyIncluding(f.name, f.last_name, f.universe));
  // Non-direct pair stays empty in both.
  std::vector<const RegionSet*> others3 = {&f.reference, &f.authors,
                                           &f.editors, &f.last_name};
  EXPECT_EQ(DirectlyIncludingLayered(f.reference, f.name, others3),
            RegionSet());
}

TEST(DirectInclusionTest, EmptyOperands) {
  BibFixture f;
  EXPECT_EQ(DirectlyIncluding(RegionSet(), f.authors, f.universe),
            RegionSet());
  EXPECT_EQ(DirectlyIncluding(f.reference, RegionSet(), f.universe),
            RegionSet());
  EXPECT_EQ(DirectlyIncluded(RegionSet(), f.reference, f.universe),
            RegionSet());
}

TEST(DirectInclusionTest, InnermostStrictEnclosersChain) {
  RegionSet universe = RS({{0, 100}, {10, 50}, {20, 40}});
  auto enc = InnermostStrictEnclosers(RS({{20, 40}}), universe);
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(enc[0], (Region{10, 50}));
  auto enc2 = InnermostStrictEnclosers(RS({{0, 100}}), universe);
  ASSERT_EQ(enc2.size(), 1u);
  EXPECT_EQ(enc2[0], (Region{0, 0}));  // sentinel: no encloser
}

}  // namespace
}  // namespace qof
