// Adaptive-kernel tests: the galloping variants of Intersect, Difference,
// Including and IncludedIn must return byte-identical sets to the linear
// merges under every size skew, and the policy knob (SetKernelPolicy /
// QOF_FORCE_KERNEL) must pin the kernel without changing any result.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qof/region/region_set.h"

namespace qof {
namespace {

/// Forces a kernel policy for one scope and restores the previous one.
class ScopedPolicy {
 public:
  explicit ScopedPolicy(KernelPolicy policy) : saved_(kernel_policy()) {
    SetKernelPolicy(policy);
  }
  ~ScopedPolicy() { SetKernelPolicy(saved_); }

 private:
  KernelPolicy saved_;
};

RegionSet RandomSet(std::mt19937& rng, int max_regions, uint64_t max_pos) {
  std::uniform_int_distribution<int> count(0, max_regions);
  std::uniform_int_distribution<uint64_t> pos(0, max_pos);
  int n = count(rng);
  std::vector<Region> v;
  for (int i = 0; i < n; ++i) {
    uint64_t a = pos(rng);
    uint64_t b = pos(rng);
    if (a > b) std::swap(a, b);
    if (a == b) ++b;
    v.push_back({a, b});
  }
  return RegionSet::FromUnsorted(std::move(v));
}

/// Runs `op` under both forced policies and expects identical results;
/// returns the linear one.
template <typename Op>
RegionSet SamePolicyResult(Op op, const char* label) {
  RegionSet linear, galloping;
  {
    ScopedPolicy p(KernelPolicy::kLinear);
    linear = op();
  }
  {
    ScopedPolicy p(KernelPolicy::kGalloping);
    galloping = op();
  }
  EXPECT_EQ(linear, galloping) << label;
  return linear;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceTest,
                         ::testing::Range(0u, 10u));

TEST_P(KernelEquivalenceTest, AllKernelsAgreeAcrossSkews) {
  std::mt19937 rng(GetParam() * 7919u + 3u);
  // Skews from balanced to 1:200 in both directions; positions overlap so
  // the operators produce non-trivial output.
  struct Skew {
    int small, large;
  };
  for (const Skew& skew :
       {Skew{40, 40}, Skew{3, 200}, Skew{200, 3}, Skew{1, 400},
        Skew{0, 50}}) {
    RegionSet a = RandomSet(rng, skew.small, 300);
    RegionSet b = RandomSet(rng, skew.large, 300);
    SamePolicyResult([&] { return Intersect(a, b); }, "Intersect");
    SamePolicyResult([&] { return Difference(a, b); }, "Difference a-b");
    SamePolicyResult([&] { return Difference(b, a); }, "Difference b-a");
    SamePolicyResult([&] { return Including(a, b); }, "Including");
    SamePolicyResult([&] { return IncludingStrict(a, b); },
                     "IncludingStrict");
    SamePolicyResult([&] { return IncludedIn(a, b); }, "IncludedIn");
    SamePolicyResult([&] { return IncludedInStrict(a, b); },
                     "IncludedInStrict");
    // Adaptive must match too (it picks one of the two).
    EXPECT_EQ(Intersect(a, b), SamePolicyResult(
                                   [&] { return Intersect(a, b); },
                                   "Intersect adaptive"));
  }
}

TEST_P(KernelEquivalenceTest, NestedFamiliesAgree) {
  // Containment-heavy inputs: many regions sharing starts and nesting
  // deeply, the shapes the inclusion kernels' window scans must handle.
  std::mt19937 rng(GetParam() * 104729u + 7u);
  std::uniform_int_distribution<uint64_t> pos(0, 40);
  std::uniform_int_distribution<uint64_t> len(1, 40);
  auto nested = [&](int n) {
    std::vector<Region> v;
    for (int i = 0; i < n; ++i) {
      uint64_t s = pos(rng);
      v.push_back({s, s + len(rng)});
    }
    return RegionSet::FromUnsorted(std::move(v));
  };
  RegionSet small = nested(4);
  RegionSet large = nested(300);
  SamePolicyResult([&] { return Including(small, large); },
                   "Including small-r");
  SamePolicyResult([&] { return Including(large, small); },
                   "Including small-s");
  SamePolicyResult([&] { return IncludedIn(small, large); },
                   "IncludedIn small-r");
  SamePolicyResult([&] { return IncludedIn(large, small); },
                   "IncludedIn small-s");
  SamePolicyResult([&] { return IncludedInStrict(small, large); },
                   "IncludedInStrict small-r");
  SamePolicyResult([&] { return IncludedInStrict(large, small); },
                   "IncludedInStrict small-s");
  SamePolicyResult([&] { return IncludingStrict(small, large); },
                   "IncludingStrict small-r");
  SamePolicyResult([&] { return IncludingStrict(large, small); },
                   "IncludingStrict small-s");
}

TEST(KernelPolicyTest, PolicyRoundTrips) {
  KernelPolicy saved = kernel_policy();
  SetKernelPolicy(KernelPolicy::kLinear);
  EXPECT_EQ(kernel_policy(), KernelPolicy::kLinear);
  SetKernelPolicy(KernelPolicy::kGalloping);
  EXPECT_EQ(kernel_policy(), KernelPolicy::kGalloping);
  SetKernelPolicy(KernelPolicy::kAdaptive);
  EXPECT_EQ(kernel_policy(), KernelPolicy::kAdaptive);
  SetKernelPolicy(saved);
}

TEST(KernelPolicyTest, StrictIdenticalSpanEdgeCases) {
  // The strict variants must exclude only the identical span; duplicated
  // max-ends in the prefix (the second_end bookkeeping in the galloping
  // IncludedIn) are the regression surface.
  RegionSet r = RegionSet::FromUnsorted({{2, 8}});
  RegionSet s = RegionSet::FromUnsorted(
      {{0, 8}, {1, 8}, {2, 8}, {3, 5}, {10, 12}, {11, 20}, {12, 13},
       {14, 30}, {15, 16}, {17, 40}, {18, 19}, {20, 21}, {22, 23},
       {24, 25}, {26, 27}, {28, 29}, {30, 31}, {32, 33}, {34, 35},
       {36, 37}, {38, 39}, {40, 41}, {42, 43}, {44, 45}, {46, 47},
       {48, 49}, {50, 51}, {52, 53}, {54, 55}, {56, 57}, {58, 59},
       {60, 61}, {62, 63}, {64, 65}});
  // {2,8} ∈ s, but {0,8} and {1,8} still strictly contain it.
  RegionSet expect = r;
  {
    ScopedPolicy p(KernelPolicy::kGalloping);
    EXPECT_EQ(IncludedInStrict(r, s), expect);
  }
  {
    ScopedPolicy p(KernelPolicy::kLinear);
    EXPECT_EQ(IncludedInStrict(r, s), expect);
  }

  // Only the identical span remains: strict inclusion must reject it.
  RegionSet s2 = RegionSet::FromUnsorted(
      {{2, 8},   {10, 11}, {12, 13}, {14, 15}, {16, 17}, {18, 19},
       {20, 21}, {22, 23}, {24, 25}, {26, 27}, {28, 29}, {30, 31},
       {32, 33}, {34, 35}, {36, 37}, {38, 39}, {40, 41}, {42, 43},
       {44, 45}, {46, 47}, {48, 49}, {50, 51}, {52, 53}, {54, 55},
       {56, 57}, {58, 59}, {60, 61}, {62, 63}, {64, 65}, {66, 67},
       {68, 69}, {70, 71}, {72, 73}, {74, 75}});
  {
    ScopedPolicy p(KernelPolicy::kGalloping);
    EXPECT_TRUE(IncludedInStrict(r, s2).empty());
    EXPECT_TRUE(IncludingStrict(r, s2).empty());
    EXPECT_EQ(IncludedIn(r, s2), r);
  }
}

TEST(KernelPolicyTest, GallopingHandlesDisjointRanges) {
  // Worst case for galloping: the small set lies entirely past the large
  // one, so every probe overshoots. Results must still be exact.
  std::vector<Region> big;
  for (uint64_t i = 0; i < 500; ++i) big.push_back({i * 3, i * 3 + 2});
  RegionSet large = RegionSet::FromUnsorted(std::move(big));
  RegionSet small = RegionSet::FromUnsorted({{10000, 10002}});
  ScopedPolicy p(KernelPolicy::kGalloping);
  EXPECT_TRUE(Intersect(small, large).empty());
  EXPECT_EQ(Difference(small, large), small);
  EXPECT_TRUE(IncludedIn(small, large).empty());
  EXPECT_TRUE(Including(small, large).empty());
}

}  // namespace
}  // namespace qof
