#include "qof/region/region_index.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

RegionSet RS(std::vector<Region> v) {
  return RegionSet::FromUnsorted(std::move(v));
}

TEST(RegionIndexTest, AddAndGet) {
  RegionIndex idx;
  idx.Add("Reference", RS({{0, 100}}));
  idx.Add("Authors", RS({{10, 40}}));
  EXPECT_TRUE(idx.Has("Reference"));
  EXPECT_FALSE(idx.Has("Editors"));
  auto r = idx.Get("Authors");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, RS({{10, 40}}));
  EXPECT_FALSE(idx.Get("Editors").ok());
}

TEST(RegionIndexTest, AddMergesSameName) {
  RegionIndex idx;
  idx.Add("Key", RS({{0, 5}}));
  idx.Add("Key", RS({{10, 15}}));
  auto r = idx.Get("Key");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, RS({{0, 5}, {10, 15}}));
  EXPECT_EQ(idx.num_names(), 1u);
  EXPECT_EQ(idx.num_regions(), 2u);
}

TEST(RegionIndexTest, UniverseIsUnionOfInstances) {
  RegionIndex idx;
  idx.Add("A", RS({{0, 10}}));
  idx.Add("B", RS({{2, 5}}));
  EXPECT_EQ(idx.Universe(), RS({{0, 10}, {2, 5}}));
  // Universe refreshes after mutation.
  idx.Add("C", RS({{6, 9}}));
  EXPECT_EQ(idx.Universe(), RS({{0, 10}, {2, 5}, {6, 9}}));
}

TEST(RegionIndexTest, AllExceptOmitsOneInstance) {
  RegionIndex idx;
  idx.Add("A", RS({{0, 10}}));
  idx.Add("B", RS({{2, 5}}));
  idx.Add("C", RS({{6, 9}}));
  auto others = idx.AllExcept("B");
  ASSERT_EQ(others.size(), 2u);
  // Sorted name order: A then C.
  EXPECT_EQ(*others[0], RS({{0, 10}}));
  EXPECT_EQ(*others[1], RS({{6, 9}}));
}

TEST(RegionIndexTest, NamesSorted) {
  RegionIndex idx;
  idx.Add("Zeta", RegionSet());
  idx.Add("Alpha", RegionSet());
  EXPECT_EQ(idx.Names(), (std::vector<std::string>{"Alpha", "Zeta"}));
}

TEST(RegionIndexTest, ApproxBytesGrows) {
  RegionIndex small;
  small.Add("A", RS({{0, 10}}));
  RegionIndex big;
  big.Add("A", RS({{0, 10}, {20, 30}, {40, 50}, {60, 70}}));
  EXPECT_LT(small.ApproxBytes(), big.ApproxBytes());
}

}  // namespace
}  // namespace qof
