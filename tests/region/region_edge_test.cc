// Edge-case coverage for the region algebra: empty sets, singletons,
// adjacent regions, duplicated spans across inputs, and large nested
// structures (stress).

#include <gtest/gtest.h>

#include "qof/region/region_set.h"

namespace qof {
namespace {

RegionSet RS(std::vector<Region> v) {
  return RegionSet::FromUnsorted(std::move(v));
}

TEST(RegionEdgeTest, EmptySetsEverywhere) {
  RegionSet e;
  EXPECT_EQ(Union(e, e), e);
  EXPECT_EQ(Intersect(e, e), e);
  EXPECT_EQ(Difference(e, e), e);
  EXPECT_EQ(Innermost(e), e);
  EXPECT_EQ(Outermost(e), e);
  EXPECT_EQ(Including(e, e), e);
  EXPECT_EQ(IncludedIn(e, e), e);
  EXPECT_EQ(DirectlyIncluding(e, e, e), e);
  EXPECT_EQ(DirectlyIncluded(e, e, e), e);
  EXPECT_EQ(DirectlyIncludingLayered(e, e, {}), e);
}

TEST(RegionEdgeTest, SingletonIdentities) {
  RegionSet s = RS({{5, 9}});
  EXPECT_EQ(Innermost(s), s);
  EXPECT_EQ(Outermost(s), s);
  EXPECT_EQ(Including(s, s), s);   // weak self-containment
  EXPECT_EQ(IncludedIn(s, s), s);
  EXPECT_EQ(DirectlyIncluding(s, s, s), RegionSet());  // strict: no pair
}

TEST(RegionEdgeTest, AdjacentRegionsDoNotContain) {
  RegionSet a = RS({{0, 5}});
  RegionSet b = RS({{5, 10}});
  EXPECT_EQ(Including(a, b), RegionSet());
  EXPECT_EQ(Including(b, a), RegionSet());
  EXPECT_TRUE(Union(a, b).IsLaminar());
}

TEST(RegionEdgeTest, SharedEndpointsAreWeakContainment) {
  // [0,10) contains [0,4) and [6,10) — shared endpoints count.
  RegionSet outer = RS({{0, 10}});
  RegionSet inner = RS({{0, 4}, {6, 10}});
  EXPECT_EQ(Including(outer, inner), outer);
  EXPECT_EQ(IncludedIn(inner, outer), inner);
  // And direct inclusion sees both as direct children.
  RegionSet universe = Union(outer, inner);
  EXPECT_EQ(DirectlyIncluding(outer, inner, universe), outer);
  EXPECT_EQ(DirectlyIncluded(inner, outer, universe), inner);
}

TEST(RegionEdgeTest, SameSpanInDifferentOperands) {
  // The same span can be a member of two different sets; weak inclusion
  // relates them, strict/direct does not.
  RegionSet a = RS({{3, 7}});
  RegionSet b = RS({{3, 7}, {0, 10}});
  EXPECT_EQ(IncludedIn(a, b), a);       // via itself and via {0,10}
  EXPECT_EQ(IncludedInStrict(a, b), a); // via {0,10} only
  RegionSet universe = b;
  EXPECT_EQ(DirectlyIncluded(a, RS({{0, 10}}), universe), a);
}

TEST(RegionEdgeTest, DeepNestingStress) {
  // A 500-deep nesting chain alternating between two sets.
  std::vector<Region> r;
  std::vector<Region> s;
  for (uint64_t d = 0; d < 500; ++d) {
    ((d % 2 == 0) ? r : s).push_back({d, 2000 - d});
  }
  RegionSet rs = RS(r);
  RegionSet ss = RS(s);
  RegionSet universe = Union(rs, ss);
  EXPECT_TRUE(universe.IsLaminar());
  // Every r member weakly contains some s member except possibly the
  // innermost; direct inclusion pairs alternate strictly.
  RegionSet direct = DirectlyIncluding(rs, ss, universe);
  EXPECT_EQ(direct.size(), rs.size());
  RegionSet direct_rev = DirectlyIncluding(ss, rs, universe);
  // Every s member directly includes the next r member except the last.
  EXPECT_EQ(direct_rev.size(), ss.size() - 1);
  EXPECT_EQ(Innermost(universe).size(), 1u);
  EXPECT_EQ(Outermost(universe).size(), 1u);
}

TEST(RegionEdgeTest, WideFlatStress) {
  // 20k disjoint regions: linear-ish ops stay exact.
  std::vector<Region> v;
  for (uint64_t i = 0; i < 20000; ++i) {
    v.push_back({i * 10, i * 10 + 8});
  }
  RegionSet s = RS(v);
  EXPECT_EQ(Innermost(s), s);
  EXPECT_EQ(Outermost(s), s);
  EXPECT_EQ(Including(s, s), s);
  EXPECT_EQ(Difference(s, s), RegionSet());
  EXPECT_EQ(Union(s, s), s);
}

TEST(RegionEdgeTest, TotalLengthAndToStringSmall) {
  RegionSet s = RS({{0, 3}, {10, 14}});
  EXPECT_EQ(s.TotalLength(), 7u);
  EXPECT_EQ(s.ToString(), "{[0,3), [10,14)}");
}

TEST(RegionEdgeTest, FromSortedUniqueAcceptsCanonicalInput) {
  std::vector<Region> v = {{0, 10}, {0, 5}, {2, 4}};
  RegionSet s = RegionSet::FromSortedUnique(v);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.ContainsRegion({0, 5}));
}

TEST(RegionEdgeTest, LayeredWithManyOtherIndexes) {
  // Layered ⊃d with the universe split across several "other" sets.
  RegionSet refs = RS({{0, 100}, {200, 300}});
  RegionSet mids = RS({{10, 90}, {210, 290}});
  RegionSet leaves = RS({{20, 30}, {220, 230}});
  std::vector<const RegionSet*> others = {&refs, &mids};
  EXPECT_EQ(DirectlyIncludingLayered(refs, leaves, others), RegionSet());
  std::vector<const RegionSet*> others2 = {&refs, &leaves};
  EXPECT_EQ(DirectlyIncludingLayered(mids, leaves, others2), mids);
}

}  // namespace
}  // namespace qof
