// Property tests: every region-algebra primitive is checked against a
// brute-force O(n^2) oracle on randomized inputs, including the laminar
// (parse-tree shaped) instances the direct-inclusion operators require.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qof/region/region_set.h"

namespace qof {
namespace {

// --- oracles ---------------------------------------------------------------

RegionSet OracleIncluding(const RegionSet& r, const RegionSet& s,
                          bool strict) {
  std::vector<Region> out;
  for (const Region& a : r) {
    for (const Region& b : s) {
      if (strict ? a.StrictlyContains(b) : a.Contains(b)) {
        out.push_back(a);
        break;
      }
    }
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet OracleIncludedIn(const RegionSet& r, const RegionSet& s,
                           bool strict) {
  std::vector<Region> out;
  for (const Region& a : r) {
    for (const Region& b : s) {
      if (strict ? b.StrictlyContains(a) : b.Contains(a)) {
        out.push_back(a);
        break;
      }
    }
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet OracleInnermost(const RegionSet& r) {
  std::vector<Region> out;
  for (const Region& a : r) {
    bool has_inner = false;
    for (const Region& b : r) {
      if (a.StrictlyContains(b)) {
        has_inner = true;
        break;
      }
    }
    if (!has_inner) out.push_back(a);
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet OracleOutermost(const RegionSet& r) {
  std::vector<Region> out;
  for (const Region& a : r) {
    bool has_outer = false;
    for (const Region& b : r) {
      if (b.StrictlyContains(a)) {
        has_outer = true;
        break;
      }
    }
    if (!has_outer) out.push_back(a);
  }
  return RegionSet::FromUnsorted(std::move(out));
}

// r ⊃d s by the paper's definition: r strictly contains s and no universe
// member lies strictly between them.
RegionSet OracleDirectlyIncluding(const RegionSet& r, const RegionSet& s,
                                  const RegionSet& universe) {
  std::vector<Region> out;
  for (const Region& a : r) {
    for (const Region& b : s) {
      if (!a.StrictlyContains(b)) continue;
      bool blocked = false;
      for (const Region& t : universe) {
        if (a.StrictlyContains(t) && t.StrictlyContains(b)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        out.push_back(a);
        break;
      }
    }
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet OracleDirectlyIncluded(const RegionSet& r, const RegionSet& s,
                                 const RegionSet& universe) {
  std::vector<Region> out;
  for (const Region& a : r) {
    for (const Region& b : s) {
      if (!b.StrictlyContains(a)) continue;
      bool blocked = false;
      for (const Region& t : universe) {
        if (b.StrictlyContains(t) && t.StrictlyContains(a)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        out.push_back(a);
        break;
      }
    }
  }
  return RegionSet::FromUnsorted(std::move(out));
}

// --- generators ------------------------------------------------------------

RegionSet RandomSet(std::mt19937& rng, int max_regions, uint64_t max_pos) {
  std::uniform_int_distribution<int> count(0, max_regions);
  std::uniform_int_distribution<uint64_t> pos(0, max_pos);
  int n = count(rng);
  std::vector<Region> v;
  for (int i = 0; i < n; ++i) {
    uint64_t a = pos(rng);
    uint64_t b = pos(rng);
    if (a > b) std::swap(a, b);
    if (a == b) ++b;
    v.push_back({a, b});
  }
  return RegionSet::FromUnsorted(std::move(v));
}

// Builds a random laminar family by recursive subdivision — the shape of a
// parse tree's spans.
void Subdivide(std::mt19937& rng, uint64_t lo, uint64_t hi, int depth,
               std::vector<Region>* out) {
  if (depth <= 0 || hi - lo < 4) return;
  std::uniform_int_distribution<int> children(1, 3);
  int k = children(rng);
  uint64_t width = (hi - lo) / static_cast<uint64_t>(k);
  if (width < 3) return;
  for (int i = 0; i < k; ++i) {
    uint64_t a = lo + static_cast<uint64_t>(i) * width + 1;
    uint64_t b = a + width - 2;
    if (b <= a) continue;
    out->push_back({a, b});
    Subdivide(rng, a, b, depth - 1, out);
  }
}

RegionSet RandomLaminar(std::mt19937& rng, uint64_t span, int depth) {
  std::vector<Region> v;
  v.push_back({0, span});
  Subdivide(rng, 0, span, depth, &v);
  return RegionSet::FromUnsorted(std::move(v));
}

// Random subset of a laminar family (arguments to ⊃d must come from the
// universe).
RegionSet RandomSubset(std::mt19937& rng, const RegionSet& base,
                       double keep) {
  std::bernoulli_distribution coin(keep);
  std::vector<Region> v;
  for (const Region& r : base) {
    if (coin(rng)) v.push_back(r);
  }
  return RegionSet::FromUnsorted(std::move(v));
}

class RegionPropertyTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest,
                         ::testing::Range(0u, 25u));

TEST_P(RegionPropertyTest, IncludingMatchesOracle) {
  std::mt19937 rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    RegionSet r = RandomSet(rng, 30, 60);
    RegionSet s = RandomSet(rng, 30, 60);
    EXPECT_EQ(Including(r, s), OracleIncluding(r, s, false))
        << "r=" << r.ToString() << " s=" << s.ToString();
    EXPECT_EQ(IncludingStrict(r, s), OracleIncluding(r, s, true))
        << "r=" << r.ToString() << " s=" << s.ToString();
  }
}

TEST_P(RegionPropertyTest, IncludedInMatchesOracle) {
  std::mt19937 rng(GetParam() + 1000);
  for (int iter = 0; iter < 20; ++iter) {
    RegionSet r = RandomSet(rng, 30, 60);
    RegionSet s = RandomSet(rng, 30, 60);
    EXPECT_EQ(IncludedIn(r, s), OracleIncludedIn(r, s, false))
        << "r=" << r.ToString() << " s=" << s.ToString();
    EXPECT_EQ(IncludedInStrict(r, s), OracleIncludedIn(r, s, true))
        << "r=" << r.ToString() << " s=" << s.ToString();
  }
}

TEST_P(RegionPropertyTest, InnermostOutermostMatchOracle) {
  std::mt19937 rng(GetParam() + 2000);
  for (int iter = 0; iter < 20; ++iter) {
    RegionSet r = RandomSet(rng, 40, 80);
    EXPECT_EQ(Innermost(r), OracleInnermost(r)) << r.ToString();
    EXPECT_EQ(Outermost(r), OracleOutermost(r)) << r.ToString();
  }
}

TEST_P(RegionPropertyTest, SetAlgebraLaws) {
  std::mt19937 rng(GetParam() + 3000);
  for (int iter = 0; iter < 10; ++iter) {
    RegionSet a = RandomSet(rng, 20, 50);
    RegionSet b = RandomSet(rng, 20, 50);
    RegionSet c = RandomSet(rng, 20, 50);
    EXPECT_EQ(Union(a, b), Union(b, a));
    EXPECT_EQ(Intersect(a, b), Intersect(b, a));
    EXPECT_EQ(Union(Union(a, b), c), Union(a, Union(b, c)));
    EXPECT_EQ(Difference(a, Union(b, c)),
              Difference(Difference(a, b), c));
    EXPECT_EQ(Union(Intersect(a, b), Difference(a, b)), a);
  }
}

TEST_P(RegionPropertyTest, DirectInclusionMatchesOracleOnLaminar) {
  std::mt19937 rng(GetParam() + 4000);
  for (int iter = 0; iter < 10; ++iter) {
    RegionSet universe = RandomLaminar(rng, 400, 4);
    RegionSet r = RandomSubset(rng, universe, 0.5);
    RegionSet s = RandomSubset(rng, universe, 0.5);
    EXPECT_EQ(DirectlyIncluding(r, s, universe),
              OracleDirectlyIncluding(r, s, universe))
        << "universe=" << universe.ToString() << "\nr=" << r.ToString()
        << "\ns=" << s.ToString();
    EXPECT_EQ(DirectlyIncluded(r, s, universe),
              OracleDirectlyIncluded(r, s, universe))
        << "universe=" << universe.ToString() << "\nr=" << r.ToString()
        << "\ns=" << s.ToString();
  }
}

TEST_P(RegionPropertyTest, LayeredDirectInclusionAgreesOnLaminar) {
  std::mt19937 rng(GetParam() + 5000);
  for (int iter = 0; iter < 5; ++iter) {
    RegionSet universe = RandomLaminar(rng, 300, 3);
    RegionSet r = RandomSubset(rng, universe, 0.6);
    RegionSet s = RandomSubset(rng, universe, 0.6);
    // Split the universe complement into two "other index" sets, as the
    // paper's program receives them.
    RegionSet rest = Difference(universe, s);
    RegionSet odd, even;
    {
      std::vector<Region> o, e;
      size_t i = 0;
      for (const Region& reg : rest) {
        ((i++ % 2) ? o : e).push_back(reg);
      }
      odd = RegionSet::FromUnsorted(std::move(o));
      even = RegionSet::FromUnsorted(std::move(e));
    }
    std::vector<const RegionSet*> others = {&odd, &even};
    EXPECT_EQ(DirectlyIncludingLayered(r, s, others),
              OracleDirectlyIncluding(r, s, Union(rest, s)))
        << "universe=" << universe.ToString() << "\nr=" << r.ToString()
        << "\ns=" << s.ToString();
  }
}

TEST_P(RegionPropertyTest, DirectImpliesSimpleInclusion) {
  std::mt19937 rng(GetParam() + 6000);
  for (int iter = 0; iter < 10; ++iter) {
    RegionSet universe = RandomLaminar(rng, 300, 4);
    RegionSet r = RandomSubset(rng, universe, 0.5);
    RegionSet s = RandomSubset(rng, universe, 0.5);
    RegionSet direct = DirectlyIncluding(r, s, universe);
    RegionSet simple = Including(r, s);
    // ⊃d refines ⊃: every direct includer is an includer.
    EXPECT_EQ(Intersect(direct, simple), direct);
  }
}

TEST_P(RegionPropertyTest, InnermostOutermostAreIdempotent) {
  std::mt19937 rng(GetParam() + 7000);
  for (int iter = 0; iter < 10; ++iter) {
    RegionSet r = RandomSet(rng, 30, 60);
    EXPECT_EQ(Innermost(Innermost(r)), Innermost(r));
    EXPECT_EQ(Outermost(Outermost(r)), Outermost(r));
  }
}

}  // namespace
}  // namespace qof
