// Block-skipping cursor kernels (IntersectCursor, IncludingCursor,
// IncludedInCursor) must return byte-identical sets to the plain kernels
// on the same data, for every block geometry — the cursor path is a pure
// I/O optimization, never a semantic change.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qof/region/region_cursor.h"
#include "qof/region/region_set.h"

namespace qof {
namespace {

RegionSet RandomSet(std::mt19937& rng, int max_regions, uint64_t max_pos,
                    uint64_t max_len) {
  std::uniform_int_distribution<int> count(0, max_regions);
  std::uniform_int_distribution<uint64_t> pos(0, max_pos);
  std::uniform_int_distribution<uint64_t> len(1, max_len);
  int n = count(rng);
  std::vector<Region> v;
  for (int i = 0; i < n; ++i) {
    uint64_t a = pos(rng);
    v.push_back({a, a + len(rng)});
  }
  return RegionSet::FromUnsorted(std::move(v));
}

/// Every cursor kernel against its plain counterpart on (instance, probe),
/// across block sizes small enough to force multi-block instances.
void ExpectCursorParity(const RegionSet& instance, const RegionSet& probe) {
  for (uint32_t block_size : {1u, 3u, 8u, 128u}) {
    VectorRegionCursor c1(&instance.regions(), block_size);
    auto isect = IntersectCursor(probe, c1);
    ASSERT_TRUE(isect.ok()) << isect.status().message();
    EXPECT_EQ(*isect, Intersect(probe, instance))
        << "IntersectCursor block_size=" << block_size;

    VectorRegionCursor c2(&instance.regions(), block_size);
    auto incl = IncludingCursor(probe, c2);
    ASSERT_TRUE(incl.ok()) << incl.status().message();
    EXPECT_EQ(*incl, Including(instance, probe))
        << "IncludingCursor block_size=" << block_size;

    VectorRegionCursor c3(&instance.regions(), block_size);
    auto sub = IncludedInCursor(probe, c3);
    ASSERT_TRUE(sub.ok()) << sub.status().message();
    EXPECT_EQ(*sub, IncludedIn(instance, probe))
        << "IncludedInCursor block_size=" << block_size;
  }
}

class CursorKernelTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CursorKernelTest, ::testing::Range(0u, 10u));

TEST_P(CursorKernelTest, AgreesWithPlainKernels) {
  std::mt19937 rng(GetParam() * 104729u + 13u);
  // Mix short and long regions so enclosure relations cross block
  // boundaries; skews in both directions.
  struct Shape {
    int instance_max, probe_max;
    uint64_t len;
  };
  for (const Shape& s :
       {Shape{200, 10, 6}, Shape{200, 10, 120}, Shape{30, 60, 25},
        Shape{400, 2, 400}, Shape{50, 50, 1}}) {
    RegionSet instance = RandomSet(rng, s.instance_max, 1000, s.len);
    RegionSet probe = RandomSet(rng, s.probe_max, 1000, s.len);
    ExpectCursorParity(instance, probe);
  }
}

TEST(CursorKernelTest, EmptySidesYieldEmpty) {
  RegionSet some = RegionSet::FromUnsorted({{10, 20}, {30, 44}});
  RegionSet empty;
  ExpectCursorParity(some, empty);
  ExpectCursorParity(empty, some);
  ExpectCursorParity(empty, empty);
}

TEST(CursorKernelTest, EnclosingRegionInEarlyBlockIsFound) {
  // One giant region opens the instance; probes live hundreds of blocks
  // later. Skipping on block_last alone would never revisit block 0 —
  // the prefix-max over block max_ends is what walks back to it.
  std::vector<Region> v;
  v.push_back({0, 1000000});
  for (uint64_t i = 0; i < 2000; ++i) v.push_back({10 + i * 9, 13 + i * 9});
  RegionSet instance = RegionSet::FromUnsorted(std::move(v));
  RegionSet probe = RegionSet::FromUnsorted({{17000, 17002}, {900000, 900001}});

  VectorRegionCursor cursor(&instance.regions(), 8);
  auto got = IncludingCursor(probe, cursor);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Including(instance, probe));
  ASSERT_GE(got->size(), 1u);
  EXPECT_EQ(got->regions().front(), (Region{0, 1000000}));
  // The walk must not have decoded anywhere near all blocks: the
  // prefix-max cuts each probe's backward walk to block 0 plus its own
  // neighborhood.
  EXPECT_LT(cursor.blocks_decoded(), cursor.num_blocks() / 4);
}

TEST(CursorKernelTest, IncludedInSkipsBlocksOutsideProbeSpan) {
  std::vector<Region> v;
  for (uint64_t i = 0; i < 2000; ++i) v.push_back({i * 10, i * 10 + 4});
  RegionSet instance = RegionSet::FromUnsorted(std::move(v));
  // One enclosing probe near the middle: only the blocks under it decode.
  RegionSet probe = RegionSet::FromUnsorted({{10000, 10100}});

  VectorRegionCursor cursor(&instance.regions(), 8);
  auto got = IncludedInCursor(probe, cursor);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, IncludedIn(instance, probe));
  EXPECT_GT(got->size(), 0u);
  EXPECT_LT(cursor.blocks_decoded(), uint64_t{6});
}

TEST(CursorKernelTest, EqualStartsDifferentEndsAcrossBlocks) {
  // Canonical order puts equal starts with descending ends; with block
  // size 1 each lands in its own block, so the kernels must gather an
  // enclosure answer scattered over adjacent blocks.
  std::vector<Region> v;
  for (uint64_t e = 1; e <= 12; ++e) v.push_back({100, 100 + e * 50});
  RegionSet instance = RegionSet::FromUnsorted(std::move(v));
  RegionSet probe = RegionSet::FromUnsorted({{100, 175}, {400, 420}});
  ExpectCursorParity(instance, probe);
}

}  // namespace
}  // namespace qof
