#include "qof/schema/schema_text.h"

#include <gtest/gtest.h>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/schema/rig_derivation.h"

namespace qof {
namespace {

// The full BibTeX structuring schema, written in the textual format.
constexpr const char* kBibtexText = R"qq(
schema BibTeX root Ref_Set view Reference;

-- one file = a set of references (paper Figure 1 shape)
Ref_Set   ::= (Reference)*  => collect set;

Reference ::= "@INCOLLECTION{" Key ","
              "AUTHOR =" Authors ","
              "TITLE = " '"' Title '",'
              "BOOKTITLE = " '"' BookTitle '",'
              "YEAR = " '"' Year '",'
              "EDITOR =" Editors ","
              "PUBLISHER = " '"' Publisher '",'
              "ADDRESS = " '"' Address '",'
              "PAGES = " '"' Pages '",'
              "REFERRED =" Referred ","
              "KEYWORDS =" Keywords ","
              "ABSTRACT = " '"' Abstract '"'
              "}"
  => object Reference(Key: $1, Authors: $2, Title: $3, BookTitle: $4,
                      Year: $5, Editors: $6, Publisher: $7, Address: $8,
                      Pages: $9, Referred: $10, Keywords: $11,
                      Abstract: $12);

Authors   ::= '"' (Name / "and ")+ '"'   => collect set;
Editors   ::= '"' (Name / "and ")+ '"'   => collect set;
Name      ::= First_Name Last_Name
  => tuple(First_Name: $1, Last_Name: $2);
Keywords  ::= '"' (Keyword / ";")* '"'   => collect set;
Referred  ::= '"' (RefKey / ";")* '"'    => collect set;

Key        ::= until(",");
Title      ::= until('"');
BookTitle  ::= until('"');
Year       ::= number                     => int;
Publisher  ::= until('"');
Address    ::= until('"');
Pages      ::= until('"');
Abstract   ::= until('"');
Keyword    ::= until(";", '"');
RefKey     ::= until(";", '"');
First_Name ::= until-last-word(" and ", '"');
Last_Name  ::= word;
)qq";

TEST(SchemaTextTest, ParsesFullBibtexSchema) {
  auto schema = ParseSchemaText(kBibtexText);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name(), "BibTeX");
  EXPECT_EQ(schema->view_name(), "Reference");
}

TEST(SchemaTextTest, TextualSchemaMatchesBuilderSchema) {
  auto text_schema = ParseSchemaText(kBibtexText);
  ASSERT_TRUE(text_schema.ok()) << text_schema.status().ToString();
  auto builder_schema = BibtexSchema();
  ASSERT_TRUE(builder_schema.ok());
  // Same symbols and same RIG.
  Rig text_rig = DeriveFullRig(*text_schema);
  Rig builder_rig = DeriveFullRig(*builder_schema);
  EXPECT_EQ(text_rig.num_nodes(), builder_rig.num_nodes());
  EXPECT_EQ(text_rig.num_edges(), builder_rig.num_edges());
  for (const std::string& from : builder_rig.NodeNames()) {
    for (const std::string& to : builder_rig.NodeNames()) {
      EXPECT_EQ(text_rig.HasEdge(from, to), builder_rig.HasEdge(from, to))
          << from << " -> " << to;
    }
  }
}

TEST(SchemaTextTest, TextualSchemaAnswersQueries) {
  auto schema = ParseSchemaText(kBibtexText);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  BibtexGenOptions gen;
  gen.num_references = 50;
  gen.probe_author_rate = 0.3;
  FileQuerySystem system(*schema);
  ASSERT_TRUE(system.AddFile("gen.bib", GenerateBibtex(gen)).ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto indexed = system.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_EQ(indexed->stats.strategy, "index-only");
  auto base = system.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"",
      ExecutionMode::kBaseline);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(indexed->regions.size(), base->regions.size());
  EXPECT_GT(indexed->regions.size(), 0u);
}

TEST(SchemaTextTest, MinimalSchema) {
  auto schema = ParseSchemaText(R"qq(
    schema Tiny root File view Item;
    File ::= (Item)* => collect set;
    Item ::= "(" Word ")" => $1;
    Word ::= word;
  )qq");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->grammar().num_symbols(), 3u);
}

TEST(SchemaTextTest, DefaultActions) {
  // Star rules default to collect set; token rules to text.
  auto schema = ParseSchemaText(R"qq(
    schema D root F view I;
    F ::= (I)*;
    I ::= "[" W "]" => $1;
    W ::= word;
  )qq");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  SymbolId f = schema->grammar().FindSymbol("F");
  EXPECT_EQ(schema->ActionFor(f).kind, Action::Kind::kCollectSet);
  SymbolId w = schema->grammar().FindSymbol("W");
  EXPECT_EQ(schema->ActionFor(w).kind, Action::Kind::kString);
}

TEST(SchemaTextTest, CommentsAndWhitespace) {
  auto schema = ParseSchemaText(
      "-- header comment\n"
      "schema C root F view I; -- trailing\n"
      "F ::= (I)*; -- star\n"
      "I ::= \"<\" W \">\" => $1;\n"
      "W ::= word;\n");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
}

TEST(SchemaTextTest, QuoteStyles) {
  // Double-quoted literal containing a single quote and vice versa.
  auto schema = ParseSchemaText(R"qq(
    schema Q root F view I;
    F ::= (I)*;
    I ::= "it's" W '"quoted"' => $1;
    W ::= word;
  )qq");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
}

TEST(SchemaTextTest, RecursiveSchemaInTextFormat) {
  // The self-nested outline schema expressed textually; the RIG must
  // carry the Section -> Subsections -> Section cycle.
  auto schema = ParseSchemaText(R"qq(
    schema Outline root Document view Section;
    Document    ::= (Section)*;
    Section     ::= "<sec [" SecTitle "]" Prose Subsections "sec>"
      => object Section(SecTitle: $1, Prose: $2, Subsections: $3);
    Subsections ::= "{" (Section)* "}"  => collect set;
    SecTitle    ::= until("]");
    Prose       ::= until("{");
  )qq");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  Rig rig = DeriveFullRig(*schema);
  auto section = rig.FindNode("Section");
  ASSERT_NE(section, Rig::kInvalidNode);
  EXPECT_TRUE(rig.Reachable(section, section));

  FileQuerySystem system(*schema);
  ASSERT_TRUE(system
                  .AddFile("d.outline",
                           "<sec [A] p { <sec [B] q { } sec> } sec>")
                  .ok());
  ASSERT_TRUE(system.BuildIndexes().ok());
  auto r = system.Execute(
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"B\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->regions.size(), 2u);  // A (ancestor) and B itself
}

TEST(SchemaTextTest, Errors) {
  // Missing header.
  EXPECT_FALSE(ParseSchemaText("F ::= word;").ok());
  // Missing semicolon.
  EXPECT_FALSE(
      ParseSchemaText("schema X root F view F; F ::= word").ok());
  // Sequence without action.
  EXPECT_FALSE(ParseSchemaText(R"qq(
    schema X root F view I;
    F ::= (I)*;
    I ::= "<" W ">";
    W ::= word;
  )qq").ok());
  // Unknown action.
  EXPECT_FALSE(ParseSchemaText(R"qq(
    schema X root F view I;
    F ::= (I)* => gather;
    I ::= word;
  )qq").ok());
  // Unterminated string.
  EXPECT_FALSE(ParseSchemaText("schema X root F view F; F ::= \"oops;")
                   .ok());
  // Bad repetition marker.
  EXPECT_FALSE(ParseSchemaText(R"qq(
    schema X root F view I;
    F ::= (I)?;
    I ::= word;
  )qq").ok());
  // Builder-level validation still applies (span collision).
  EXPECT_FALSE(ParseSchemaText(R"qq(
    schema X root F view I;
    F ::= (I)*;
    I ::= W => $1;
    W ::= word;
  )qq").ok());
}

TEST(SchemaTextTest, ErrorsCarryLineNumbers) {
  auto r = ParseSchemaText(
      "schema X root F view F;\n"
      "F ::= word\n"
      "G ::= word;\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace qof
