#include "qof/schema/structuring_schema.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"

namespace qof {
namespace {

TEST(SchemaBuilderTest, MinimalSchema) {
  SchemaBuilder b("Tiny", "File", "Item");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Sequence("Item", {b.Lit("("), b.NT("Word"), b.Lit(")")},
             Action::Child(1));
  b.Token("Word", TokenKind::kWord);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name(), "Tiny");
  EXPECT_EQ(schema->view_name(), "Item");
  EXPECT_NE(schema->root(), kInvalidSymbol);
  EXPECT_NE(schema->root(), schema->view());
}

TEST(SchemaBuilderTest, IndexableNamesExcludeRoot) {
  SchemaBuilder b("Tiny", "File", "Item");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Sequence("Item", {b.Lit("("), b.NT("Word"), b.Lit(")")},
             Action::Child(1));
  b.Token("Word", TokenKind::kWord);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto names = schema->IndexableNames();
  EXPECT_EQ(names.size(), 2u);
  for (const auto& n : names) EXPECT_NE(n, "File");
}

TEST(SchemaBuilderTest, ActionIndexOutOfRangeRejected) {
  SchemaBuilder b("Bad", "File", "Item");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Sequence("Item", {b.Lit("("), b.NT("Word"), b.Lit(")")},
             Action::Child(2));  // only one child
  b.Token("Word", TokenKind::kWord);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, ObjectFieldIndexOutOfRangeRejected) {
  SchemaBuilder b("Bad", "File", "Item");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Sequence("Item", {b.Lit("("), b.NT("Word"), b.Lit(")")},
             Action::Object("Item", {{"W", 1}, {"X", 3}}));
  b.Token("Word", TokenKind::kWord);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, UnknownViewRejected) {
  SchemaBuilder b("Bad", "File", "Ghost");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Sequence("Item", {b.Lit("("), b.NT("Word"), b.Lit(")")},
             Action::Child(1));
  b.Token("Word", TokenKind::kWord);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, DuplicateRuleRejected) {
  SchemaBuilder b("Bad", "File", "Item");
  b.Star("File", "Item", "", Action::CollectSet());
  b.Token("Item", TokenKind::kWord);
  b.Token("Item", TokenKind::kNumber);
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuiltinSchemasTest, BibtexSchemaBuilds) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->view_name(), "Reference");
  const Grammar& g = schema->grammar();
  for (const char* name :
       {"Ref_Set", "Reference", "Key", "Authors", "Editors", "Name",
        "First_Name", "Last_Name", "Title", "Year", "Keywords", "Keyword",
        "Abstract", "Referred", "RefKey"}) {
    EXPECT_NE(g.FindSymbol(name), kInvalidSymbol) << name;
  }
}

TEST(BuiltinSchemasTest, MailSchemaBuilds) {
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->view_name(), "Message");
}

TEST(BuiltinSchemasTest, LogSchemaBuilds) {
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->view_name(), "Entry");
}

TEST(ActionTest, ToStringForms) {
  EXPECT_EQ(Action::String().ToString(), "$$ := text");
  EXPECT_EQ(Action::Int().ToString(), "$$ := int(text)");
  EXPECT_EQ(Action::Child(2).ToString(), "$$ := $2");
  EXPECT_EQ(Action::CollectSet().ToString(), "$$ := U $i");
  EXPECT_EQ(Action::Tuple({{"A", 1}}).ToString(), "$$ := tuple(A: $1)");
  EXPECT_EQ(Action::Object("C", {{"A", 1}, {"B", 2}}).ToString(),
            "$$ := new(C, tuple(A: $1, B: $2))");
}

}  // namespace
}  // namespace qof
