#include "qof/schema/grammar.h"

#include <gtest/gtest.h>

namespace qof {
namespace {

TEST(GrammarTest, AddSymbolIdempotent) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  EXPECT_EQ(g.AddSymbol("A"), a);
  EXPECT_EQ(g.num_symbols(), 1u);
  EXPECT_EQ(g.SymbolName(a), "A");
  EXPECT_EQ(g.FindSymbol("A"), a);
  EXPECT_EQ(g.FindSymbol("B"), kInvalidSymbol);
}

TEST(GrammarTest, OneRulePerSymbol) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  EXPECT_TRUE(g.SetRule(a, TokenBody{TokenKind::kWord, {}}).ok());
  EXPECT_TRUE(g.HasRule(a));
  auto s = g.SetRule(a, TokenBody{TokenKind::kNumber, {}});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(GrammarTest, RuleChildrenSkipLiterals) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  SymbolId c = g.AddSymbol("C");
  ASSERT_TRUE(g.SetRule(a, SequenceBody{{GrammarElement::Lit("["),
                                         GrammarElement::NT(b),
                                         GrammarElement::Lit(","),
                                         GrammarElement::NT(c),
                                         GrammarElement::Lit("]")}})
                  .ok());
  EXPECT_EQ(g.RuleChildren(a), (std::vector<SymbolId>{b, c}));
}

TEST(GrammarTest, RuleChildrenIncludeInlineStar) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  ASSERT_TRUE(g.SetRule(a, SequenceBody{{GrammarElement::Lit("\""),
                                         GrammarElement::Star(b, ";"),
                                         GrammarElement::Lit("\"")}})
                  .ok());
  EXPECT_EQ(g.RuleChildren(a), (std::vector<SymbolId>{b}));
}

TEST(GrammarTest, ValidateRejectsMissingRule) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  ASSERT_TRUE(
      g.SetRule(a, SequenceBody{{GrammarElement::Lit("x"),
                                 GrammarElement::NT(b)}})
          .ok());
  auto s = g.Validate(a);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("B"), std::string::npos);
}

TEST(GrammarTest, ValidateRejectsSpanCollision) {
  // A -> B alone: parent and child spans coincide.
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  ASSERT_TRUE(g.SetRule(a, SequenceBody{{GrammarElement::NT(b)}}).ok());
  ASSERT_TRUE(g.SetRule(b, TokenBody{TokenKind::kWord, {}}).ok());
  auto s = g.Validate(a);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("identical spans"), std::string::npos);
}

TEST(GrammarTest, ValidateRejectsMixedStarAndNT) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  SymbolId c = g.AddSymbol("C");
  ASSERT_TRUE(g.SetRule(a, SequenceBody{{GrammarElement::NT(b),
                                         GrammarElement::Star(c, ";")}})
                  .ok());
  ASSERT_TRUE(g.SetRule(b, TokenBody{TokenKind::kWord, {}}).ok());
  ASSERT_TRUE(g.SetRule(c, TokenBody{TokenKind::kWord, {}}).ok());
  EXPECT_FALSE(g.Validate(a).ok());
}

TEST(GrammarTest, ValidateRejectsUntilWithoutStops) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  ASSERT_TRUE(g.SetRule(a, TokenBody{TokenKind::kUntil, {}}).ok());
  EXPECT_FALSE(g.Validate(a).ok());

  Grammar h;
  SymbolId x = h.AddSymbol("X");
  ASSERT_TRUE(h.SetRule(x, TokenBody{TokenKind::kUntil, {""}}).ok());
  EXPECT_FALSE(h.Validate(x).ok());
}

TEST(GrammarTest, ValidateRejectsEmptyLiteral) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  ASSERT_TRUE(g.SetRule(a, SequenceBody{{GrammarElement::Lit("")}}).ok());
  EXPECT_FALSE(g.Validate(a).ok());
}

TEST(GrammarTest, ValidateAcceptsStarRule) {
  Grammar g;
  SymbolId a = g.AddSymbol("A");
  SymbolId b = g.AddSymbol("B");
  ASSERT_TRUE(g.SetRule(a, StarBody{b, "", 0}).ok());
  ASSERT_TRUE(g.SetRule(b, TokenBody{TokenKind::kWord, {}}).ok());
  EXPECT_TRUE(g.Validate(a).ok());
}

}  // namespace
}  // namespace qof
