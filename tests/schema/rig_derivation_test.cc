#include "qof/schema/rig_derivation.h"

#include <gtest/gtest.h>

#include "qof/datagen/schemas.h"

namespace qof {
namespace {

TEST(RigDerivationTest, FullRigMatchesPaperDiagram) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  Rig rig = DeriveFullRig(*schema);
  // §3.2 / §5.1 diagram edges.
  EXPECT_TRUE(rig.HasEdge("Reference", "Key"));
  EXPECT_TRUE(rig.HasEdge("Reference", "Title"));
  EXPECT_TRUE(rig.HasEdge("Reference", "Authors"));
  EXPECT_TRUE(rig.HasEdge("Reference", "Editors"));
  EXPECT_TRUE(rig.HasEdge("Authors", "Name"));
  EXPECT_TRUE(rig.HasEdge("Editors", "Name"));
  EXPECT_TRUE(rig.HasEdge("Name", "First_Name"));
  EXPECT_TRUE(rig.HasEdge("Name", "Last_Name"));
  EXPECT_TRUE(rig.HasEdge("Ref_Set", "Reference"));
  // Non-edges.
  EXPECT_FALSE(rig.HasEdge("Reference", "Name"));
  EXPECT_FALSE(rig.HasEdge("Reference", "Last_Name"));
  EXPECT_FALSE(rig.HasEdge("Authors", "First_Name"));
  EXPECT_FALSE(rig.HasEdge("Name", "Authors"));
}

TEST(RigDerivationTest, PartialRigMatchesPaperSection61) {
  // §6.1: Ip = {Reference, Key, Last_Name} gives
  //   Reference -> Key, Reference -> Last_Name.
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  Rig full = DeriveFullRig(*schema);
  Rig partial =
      DerivePartialRig(full, {"Reference", "Key", "Last_Name"});
  EXPECT_EQ(partial.num_nodes(), 3u);
  EXPECT_TRUE(partial.HasEdge("Reference", "Key"));
  EXPECT_TRUE(partial.HasEdge("Reference", "Last_Name"));
  EXPECT_FALSE(partial.HasEdge("Key", "Last_Name"));
  EXPECT_FALSE(partial.HasEdge("Last_Name", "Key"));
}

TEST(RigDerivationTest, PartialRigKeepsDirectEdges) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  Rig full = DeriveFullRig(*schema);
  Rig partial = DerivePartialRig(
      full, {"Reference", "Authors", "Name", "Last_Name"});
  EXPECT_TRUE(partial.HasEdge("Reference", "Authors"));
  EXPECT_TRUE(partial.HasEdge("Authors", "Name"));
  EXPECT_TRUE(partial.HasEdge("Name", "Last_Name"));
  // Editors is unindexed, so Reference gains a bypass edge to Name.
  EXPECT_TRUE(partial.HasEdge("Reference", "Name"));
  // But not to Last_Name: every derivation passes the indexed Name.
  EXPECT_FALSE(partial.HasEdge("Reference", "Last_Name"));
  EXPECT_FALSE(partial.HasEdge("Authors", "Last_Name"));
}

TEST(RigDerivationTest, PartialRigIgnoresUnknownNames) {
  auto schema = BibtexSchema();
  ASSERT_TRUE(schema.ok());
  Rig full = DeriveFullRig(*schema);
  Rig partial = DerivePartialRig(full, {"Reference", "NoSuchRegion"});
  EXPECT_EQ(partial.num_nodes(), 1u);
}

TEST(RigDerivationTest, MailRig) {
  auto schema = MailSchema();
  ASSERT_TRUE(schema.ok());
  Rig rig = DeriveFullRig(*schema);
  EXPECT_TRUE(rig.HasEdge("Message", "Sender"));
  EXPECT_TRUE(rig.HasEdge("Sender", "Address"));
  EXPECT_TRUE(rig.HasEdge("Recipients", "Address"));
  EXPECT_TRUE(rig.HasEdge("Address", "Addr_Name"));
  EXPECT_TRUE(rig.HasEdge("Address", "Email"));
  EXPECT_FALSE(rig.HasEdge("Message", "Address"));
}

TEST(RigDerivationTest, DotRenderingHasAllNodes) {
  auto schema = LogSchema();
  ASSERT_TRUE(schema.ok());
  Rig rig = DeriveFullRig(*schema);
  std::string dot = rig.ToDot("log");
  for (const char* name :
       {"Entry", "Timestamp", "Level", "Component", "Message"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace qof
