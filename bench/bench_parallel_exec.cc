// Benchmarks backing the parallel-execution + prefetch acceptance
// targets:
//
//   1. Skip-table-guided prefetch + ReadPages batching must cut VFS
//      read calls ≥4× on a scan-heavy disk-tier query (pages_read must
//      never increase) — prefetch changes I/O batching, not I/O volume.
//   2. Results must hash-match the serial run at every worker count ×
//      prefetch setting: the morsel scheduler is invisible in answers.
//
// The corpus is the deterministic grammar-model bench corpus (Zipf-
// skewed words, regenerated from a seed — nothing checked in). On the
// 1-core CI runner the wall-clock columns are informational; the gated
// metrics are I/O counts and result hashes.
//
// Usage: bench_parallel_exec [--json <path>] [--mb <corpus MiB>]
//   default path: BENCH_parallel_exec.json in the current directory;
//   default corpus 8 MiB (--mb 100+ exercises the scale knob).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "qof/engine/system.h"
#include "qof/fuzz/grammar_model.h"
#include "qof/schema/schema_text.h"

namespace {

using qof::BenchCorpus;
using qof::BenchCorpusSpec;
using qof::ExecutionMode;
using qof::FileQuerySystem;
using qof::QueryOptions;
using qof::QueryResult;
using qof::Region;

/// The scan-heavy disk query: two hot-word containments unioned with a
/// selective equality — long posting streams through the block-skipping
/// cursor kernels plus an n-ary union the morsel scheduler splits.
constexpr const char* kScanHeavyQuery =
    "SELECT x FROM Obj x WHERE x.Beta.ItemA CONTAINS \"apple\" "
    "OR x.Gamma.ItemB.ItemBVal CONTAINS \"baker\" "
    "OR x.Alpha = \"zulu\"";

std::string TempPath() {
  return "/tmp/qof-bench-parallel-" + std::to_string(::getpid()) +
         ".qofstore";
}

/// FNV-1a over the result's regions and rendered values — the "results
/// hash-match the serial run" gate compares these across configs.
uint64_t ResultHash(const QueryResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Region& region : r.regions) {
    mix(region.start);
    mix(region.end);
  }
  for (const std::string& v : r.RenderedValues()) {
    for (unsigned char c : v) mix(c);
  }
  return h;
}

struct IoTotals {
  uint64_t pages_read = 0;
  uint64_t read_calls = 0;
  uint64_t prefetch_hits = 0;
};

IoTotals SumIo(const QueryResult& r) {
  IoTotals io;
  for (const auto& [op, t] : r.stats.op_timings) {
    io.pages_read += t.pages_read;
    io.read_calls += t.read_calls;
    io.prefetch_hits += t.prefetch_hits;
  }
  return io;
}

struct Fixture {
  std::string schema_text;
  std::vector<std::pair<std::string, std::string>> docs;
  std::string store_path;
};

/// A fresh disk-backed system with a cold buffer pool, so every config's
/// I/O counts start from the same zero state.
std::unique_ptr<FileQuerySystem> OpenCold(const Fixture& fx) {
  auto schema = qof::ParseSchemaText(fx.schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "bench schema parse failed: %s\n",
                 schema.status().ToString().c_str());
    std::abort();
  }
  auto system = std::make_unique<FileQuerySystem>(*schema);
  system->SetParallelism(1);
  for (const auto& [name, text] : fx.docs) {
    if (!system->AddFile(name, text).ok()) std::abort();
  }
  // Pool sized to the query's working set (as a deployment would be):
  // an undersized pool thrashes under concurrency — prefetched frames
  // get clock-evicted by other operators before their cursor decodes
  // them — which measures eviction policy, not prefetch batching.
  qof::PagedStoreOptions store_options;
  store_options.pool_pages = 4096;
  if (!system->OpenStore(fx.store_path, store_options).ok()) {
    std::fprintf(stderr, "bench store open failed\n");
    std::abort();
  }
  return system;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = qof_bench::ExtractJsonArg(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_parallel_exec.json";
  size_t corpus_mb = 8;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--mb") {
      corpus_mb = static_cast<size_t>(std::atoll(argv[i + 1]));
    }
  }
  qof_bench::JsonEmitter json(json_path);

  BenchCorpusSpec spec;
  spec.seed = 42;
  spec.target_bytes = corpus_mb << 20;
  spec.zipf_s = 1.1;
  BenchCorpus corpus = qof::MakeBenchCorpus(spec);
  std::printf("corpus: %zu docs, %.1f MiB (seed %u, zipf %.2f)\n",
              corpus.docs.size(),
              corpus.total_bytes / (1024.0 * 1024.0), spec.seed,
              spec.zipf_s);

  Fixture fx;
  fx.schema_text = corpus.schema_text;
  fx.docs = std::move(corpus.docs);
  fx.store_path = TempPath();
  {
    auto schema = qof::ParseSchemaText(fx.schema_text);
    if (!schema.ok()) std::abort();
    FileQuerySystem builder(*schema);
    builder.SetParallelism(0);  // index build may use every core
    for (const auto& [name, text] : fx.docs) {
      if (!builder.AddFile(name, text).ok()) std::abort();
    }
    if (!builder.BuildIndexes(qof::IndexSpec::Full()).ok() ||
        !builder.SaveStore(fx.store_path, /*page_size=*/4096).ok()) {
      std::fprintf(stderr, "bench store build failed\n");
      std::abort();
    }
  }

  std::printf("\n%-28s %10s %10s %10s %10s  %s\n", "config", "micros",
              "pages", "reads", "pf_hits", "hash");

  uint64_t serial_hash = 0;
  bool hashes_match = true;
  for (bool prefetch : {false, true}) {
    for (int workers : {1, 2, 4, 8}) {
      auto system = OpenCold(fx);
      QueryOptions options;
      options.use_ir = true;
      options.exec_workers = workers;
      options.prefetch = prefetch;
      double micros = 0;
      auto result = [&] {
        auto start = std::chrono::steady_clock::now();
        auto r = system->Execute(kScanHeavyQuery, ExecutionMode::kAuto,
                                 options);
        micros = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        return r;
      }();
      if (!result.ok()) {
        std::fprintf(stderr, "bench query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      IoTotals io = SumIo(*result);
      const qof::BufferPoolStats pool = system->index_stats().pool;
      std::fprintf(stderr,
                   "  [pool] fetches=%llu hits=%llu misses=%llu "
                   "pf_pages=%llu pf_hits=%llu evict=%llu calls=%llu\n",
                   (unsigned long long)pool.fetches,
                   (unsigned long long)pool.hits,
                   (unsigned long long)pool.misses,
                   (unsigned long long)pool.prefetch_pages,
                   (unsigned long long)pool.prefetch_hits,
                   (unsigned long long)pool.evictions,
                   (unsigned long long)pool.read_calls);
      uint64_t hash = ResultHash(*result);
      if (!prefetch && workers == 1) serial_hash = hash;
      hashes_match = hashes_match && hash == serial_hash;

      std::string config = std::string(prefetch ? "pf_on" : "pf_off") +
                           "_w" + std::to_string(workers);
      std::printf("%-28s %10.0f %10llu %10llu %10llu  %016llx\n",
                  config.c_str(), micros,
                  static_cast<unsigned long long>(io.pages_read),
                  static_cast<unsigned long long>(io.read_calls),
                  static_cast<unsigned long long>(io.prefetch_hits),
                  static_cast<unsigned long long>(hash));
      json.Row("parallel_exec", config, "micros", micros);
      json.Row("parallel_exec", config, "pages_read",
               static_cast<double>(io.pages_read));
      json.Row("parallel_exec", config, "read_calls",
               static_cast<double>(io.read_calls));
      json.Row("parallel_exec", config, "prefetch_hits",
               static_cast<double>(io.prefetch_hits));
      // Double-precision JSON holds the hash exactly only below 2^53;
      // the low 48 bits are plenty for an equality gate.
      json.Row("parallel_exec", config, "result_hash_lo48",
               static_cast<double>(hash & ((1ull << 48) - 1)));
    }
  }
  json.Row("parallel_exec", "all", "hashes_match",
           hashes_match ? 1.0 : 0.0);
  std::printf("\nresult hashes %s across all configs\n",
              hashes_match ? "MATCH" : "DIVERGE");

  std::remove(fx.store_path.c_str());
  json.Flush();
  std::printf("wrote %s\n", json_path.c_str());
  return hashes_match ? 0 : 1;
}
