// Multi-client query service under load (src/qof/server/):
//
//   1. Read-only: N client threads, each with its own session, hammer
//      the service with blocking queries. Reports p50/p99 latency and
//      aggregate QPS.
//
//   2. Mixed 90/10: the same clients issue 10% mutations (each updates
//      its own document, so mutations contend on the engine lock, not on
//      each other's data). Snapshot isolation means queries keep running
//      against pinned generations while mutations clone state
//      copy-on-write — the acceptance target is mixed-load query p99
//      within 2x of the read-only p99 at the same offered QPS.
//
// Both measured phases are paced open-loop: every client issues one
// operation per fixed interval and latency is measured from the
// *scheduled* start (so a slow server cannot hide queueing by delaying
// the next send — no coordinated omission). Matched offered load is
// what the acceptance criterion asks for; a closed-loop flat-out run on
// a single-core box would only measure how mutation CPU steals cycles
// from query CPU at 100% utilization, which no isolation scheme can
// prevent. Each phase reports its median-p99 trial out of three, so a
// single whole-process stall on a shared CI box cannot decide the gate.
//
//   3. Isolation check: one "frozen" session opens before the mixed
//      phase and never refreshes; its answer must be byte-identical
//      before, during, and after the mutation storm (divergences=0 in
//      the JSON output). This is the bench-level twin of the fuzzer's
//      session leg.
//
// Latency numbers on the CI box document correctness overheads, not
// peak throughput — the worker pool is sized for the smoke gate, and
// single-core machines serialize the clients.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "qof/server/service.h"

namespace {

constexpr const char* kQueries[] = {
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"",
    "SELECT r.Title FROM References r WHERE r.Year = \"1994\"",
    "SELECT r FROM References r WHERE r.Keywords = \"query\"",
};
constexpr int kClients = 4;
// 480 ops/client => 1728 mixed-phase queries, so the p99 is the ~17th
// worst sample rather than a single unlucky scheduler wakeup.
constexpr int kOpsPerClient = 480;
constexpr int kMutateEvery = 10;  // mixed phase: every 10th op mutates
// Per-client pacing interval. 4 clients at one op per millisecond offer
// ~4k ops/s — comfortably below the measured single-core closed-loop
// capacity (~20k QPS mixed), so the p99 comparison reflects blocking
// and mutation shadow, not saturation queueing.
constexpr int kOpIntervalMicros = 1000;
constexpr int kRefsPerClientDoc = 30;
// Mutations update a one-reference scratch document per client: the
// realistic OLTP-ish shape (small writes against a larger read set),
// and the one that actually stresses isolation — every mutation still
// clones the pinned state copy-on-write and advances the cache epoch.
constexpr int kRefsPerScratchDoc = 1;

std::string ClientDoc(int client, uint32_t round, int refs) {
  qof::BibtexGenOptions gen;
  gen.num_references = refs;
  gen.seed = static_cast<uint32_t>(client + 1) * 1000u + round;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  return qof::GenerateBibtex(gen);
}

struct PhaseResult {
  std::vector<double> query_micros;     // merged across clients, sorted
  std::vector<double> mutation_micros;  // merged across clients, sorted
  double wall_seconds = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;

  static double PercentileOf(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0;
    size_t at = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[at];
  }
  double Percentile(double p) const {
    return PercentileOf(query_micros, p);
  }
};

/// Runs one load phase: every client issues kOpsPerClient operations on
/// its own session, one per kOpIntervalMicros (open loop, latency
/// measured from the scheduled send time); with `mutate` set, every
/// kMutateEvery-th operation updates the client's document instead of
/// querying. `paced=false` runs flat-out (warmup only).
PhaseResult RunPhase(qof::QueryService& service, bool mutate,
                     bool paced = true) {
  PhaseResult result;
  std::mutex merge_mu;
  std::vector<std::thread> clients;
  auto start = std::chrono::steady_clock::now();
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      auto sid = service.OpenSession();
      if (!sid.ok()) return;
      std::vector<double> micros;
      std::vector<double> mut_micros;
      uint64_t errors = 0;
      uint32_t round = 1;
      // Clients are staggered by a fraction of the interval so the
      // arrivals interleave instead of firing in lockstep.
      auto interval = std::chrono::microseconds(kOpIntervalMicros);
      auto scheduled =
          start + interval * client / kClients;
      for (int op = 0; op < kOpsPerClient; ++op) {
        // Each client's mutation slot is phase-shifted so mutations
        // spread evenly over time instead of convoying (all clients
        // share the same op schedule, so an unshifted slot would put
        // four mutations in the same interval every kMutateEvery ops).
        bool is_mutation =
            mutate &&
            (op + client * kMutateEvery / kClients) % kMutateEvery ==
                kMutateEvery - 1;
        // Generating the replacement document is client-side work —
        // do it before the scheduled send so it is not billed as
        // server latency.
        std::string doc;
        if (is_mutation) {
          doc = ClientDoc(client, round++, kRefsPerScratchDoc);
        }
        if (paced) {
          std::this_thread::sleep_until(scheduled);
        } else {
          scheduled = std::chrono::steady_clock::now();
        }
        auto t0 = scheduled;
        scheduled += interval;
        if (is_mutation) {
          qof::Status updated = service.UpdateFile(
              *sid, "scratch" + std::to_string(client) + ".bib",
              std::move(doc));
          auto m1 = std::chrono::steady_clock::now();
          mut_micros.push_back(
              std::chrono::duration<double, std::micro>(m1 - t0)
                  .count());
          if (!updated.ok()) ++errors;
          continue;
        }
        // Half the traffic re-asks hot queries (cache-served), half
        // asks parameterized ones whose predicate rotates — distinct
        // FQL text, so plan and eval caches see realistic misses.
        std::string fql =
            op % 2 == 0
                ? std::string(kQueries[(op / 2) % 3])
                : "SELECT r FROM References r WHERE r.Year = \"19" +
                      std::to_string(70 + (client * 7 + op) % 25) + "\"";
        auto answer = service.Query(*sid, fql);
        auto t1 = std::chrono::steady_clock::now();
        if (!answer.ok()) ++errors;
        micros.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      (void)service.CloseSession(*sid);
      std::lock_guard<std::mutex> lock(merge_mu);
      result.query_micros.insert(result.query_micros.end(),
                                 micros.begin(), micros.end());
      result.mutation_micros.insert(result.mutation_micros.end(),
                                    mut_micros.begin(),
                                    mut_micros.end());
      result.errors += errors;
    });
  }
  for (std::thread& t : clients) t.join();
  auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.queries = result.query_micros.size();
  std::sort(result.query_micros.begin(), result.query_micros.end());
  std::sort(result.mutation_micros.begin(), result.mutation_micros.end());
  return result;
}

std::string Render(const qof::Result<qof::QueryResult>& r) {
  if (!r.ok()) return "error:" + r.status().ToString();
  std::string out;
  for (const qof::Region& region : r->regions) {
    out += std::to_string(region.start) + "-" +
           std::to_string(region.end) + ";";
  }
  for (const std::string& value : r->RenderedValues()) {
    out += value + "|";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = qof_bench::ExtractJsonArg(&argc, argv);
  qof_bench::JsonEmitter json(json_path);

  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  for (int client = 0; client < kClients; ++client) {
    if (!system
             .AddFile("client" + std::to_string(client) + ".bib",
                      ClientDoc(client, 0, kRefsPerClientDoc))
             .ok() ||
        !system
             .AddFile("scratch" + std::to_string(client) + ".bib",
                      ClientDoc(client, 500, kRefsPerScratchDoc))
             .ok()) {
      std::fprintf(stderr, "fixture setup failed\n");
      return 1;
    }
  }
  system.SetCacheOptions(qof::CacheOptions::Enabled());
  if (!system.BuildIndexes(qof::IndexSpec::Full()).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }

  qof::ServiceOptions options;
  options.workers = 2;
  options.max_queued = 0;  // the bench measures latency, not rejection
  qof::QueryService service(&system, options);

  std::printf("%-12s %10s %10s %10s %8s %7s\n", "phase", "p50us",
              "p99us", "qps", "queries", "errors");
  auto report = [&](const char* phase, const PhaseResult& r) {
    double p50 = r.Percentile(0.50), p99 = r.Percentile(0.99);
    double qps =
        r.wall_seconds > 0 ? static_cast<double>(r.queries) / r.wall_seconds
                           : 0;
    std::printf("%-12s %10.1f %10.1f %10.1f %8llu %7llu\n", phase, p50,
                p99, qps, static_cast<unsigned long long>(r.queries),
                static_cast<unsigned long long>(r.errors));
    json.Row("server", phase, "p50_micros", p50);
    json.Row("server", phase, "p99_micros", p99);
    json.Row("server", phase, "qps", qps);
    json.Row("server", phase, "errors", static_cast<double>(r.errors));
    if (!r.mutation_micros.empty()) {
      double m50 = PhaseResult::PercentileOf(r.mutation_micros, 0.50);
      double m99 = PhaseResult::PercentileOf(r.mutation_micros, 0.99);
      std::printf("%-12s %10.1f %10.1f %10s %8zu %7s  (mutations)\n",
                  phase, m50, m99, "-", r.mutation_micros.size(), "-");
      json.Row("server", phase, "mutation_p50_micros", m50);
      json.Row("server", phase, "mutation_p99_micros", m99);
    }
    return p99;
  };

  // Warmup populates the caches so both measured phases start warm
  // (flat-out — warming does not need pacing).
  RunPhase(service, /*mutate=*/false, /*paced=*/false);

  // Frozen session: pinned before the mutation storm, must answer
  // byte-identically throughout it (snapshot isolation).
  auto frozen = service.OpenSession();
  uint64_t divergences = 0;
  std::string frozen_before;
  if (frozen.ok()) {
    frozen_before = Render(service.Query(*frozen, kQueries[0]));
  }

  // Each phase runs three trials and reports the median-p99 trial: a
  // shared CI box can freeze the whole process for 10+ ms (which shows
  // up in queries and mutations alike), and a single stall must not
  // decide the gate either way.
  auto median_trial = [&](bool mutate) {
    std::vector<PhaseResult> trials;
    for (int t = 0; t < 3; ++t) trials.push_back(RunPhase(service, mutate));
    std::sort(trials.begin(), trials.end(),
              [](const PhaseResult& a, const PhaseResult& b) {
                return a.Percentile(0.99) < b.Percentile(0.99);
              });
    return trials[1];
  };
  double read_p99 = report("read-only", median_trial(false));
  double mixed_p99 = report("mixed-90-10", median_trial(true));

  if (frozen.ok()) {
    for (const char* fql : {kQueries[0], kQueries[0]}) {
      if (Render(service.Query(*frozen, fql)) != frozen_before) {
        ++divergences;
      }
    }
    (void)service.CloseSession(*frozen);
  } else {
    divergences = 1;  // could not even pin — count as a failure
  }
  double ratio = read_p99 > 0 ? mixed_p99 / read_p99 : 0;
  std::printf("mixed/read p99 ratio: %.2f (target <= 2.0)\n", ratio);
  std::printf("frozen-session divergences: %llu (target 0)\n",
              static_cast<unsigned long long>(divergences));
  json.Row("server", "mixed-90-10", "p99_ratio_vs_read_only", ratio);
  json.Row("server", "isolation", "divergences",
           static_cast<double>(divergences));
  return divergences == 0 ? 0 : 2;
}
