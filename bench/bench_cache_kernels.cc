// Benchmarks backing the adaptive-kernel and query-cache acceptance
// targets: galloping vs. linear set-operation kernels across size skews
// (the galloping side must win big at 1:10k and results must stay
// byte-identical), and cold vs. warm query runs with the plan + eval
// caches enabled. Plain driver (no google-benchmark): prints a table and
// writes the JSON rows the CI bench-smoke gate checks.
//
// Usage: bench_cache_kernels [--json <path>]
//   default path: BENCH_cache_kernels.json in the current directory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using qof::KernelPolicy;
using qof::Region;
using qof::RegionSet;

/// `n` disjoint regions spaced so subsets at any stride stay non-trivial.
RegionSet DenseSet(uint64_t n) {
  std::vector<Region> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back({4 * i, 4 * i + 2});
  return RegionSet::FromUnsorted(std::move(v));
}

/// Every `stride`-th member of DenseSet(n) — intersects DenseSet(n) in
/// itself, so the identity checks have known answers.
RegionSet StridedSubset(uint64_t n, uint64_t stride) {
  std::vector<Region> v;
  for (uint64_t i = 0; i < n; i += stride) v.push_back({4 * i, 4 * i + 2});
  return RegionSet::FromUnsorted(std::move(v));
}

double TimePolicy(KernelPolicy policy, int runs,
                  const std::function<RegionSet()>& op, RegionSet* out) {
  qof::SetKernelPolicy(policy);
  double micros = qof_bench::MedianMicros(runs, [&] { *out = op(); });
  qof::SetKernelPolicy(KernelPolicy::kAdaptive);
  return micros;
}

void BenchKernels(qof_bench::JsonEmitter* emitter) {
  constexpr uint64_t kLarge = 1u << 20;  // 1M regions
  std::printf("kernels: linear vs galloping (large side: %llu regions)\n",
              static_cast<unsigned long long>(kLarge));
  std::printf("%-14s %-10s %14s %14s %9s\n", "op", "skew", "linear_us",
              "gallop_us", "speedup");
  RegionSet large = DenseSet(kLarge);
  struct Op {
    const char* name;
    RegionSet (*fn)(const RegionSet&, const RegionSet&);
  };
  const Op ops[] = {{"intersect", [](const RegionSet& a,
                                     const RegionSet& b) {
                       return Intersect(a, b);
                     }},
                    {"included_in", [](const RegionSet& a,
                                       const RegionSet& b) {
                       return IncludedIn(a, b);
                     }}};
  for (const Op& op : ops) {
    for (uint64_t skew : {uint64_t{1}, uint64_t{100}, uint64_t{10000}}) {
      RegionSet small = StridedSubset(kLarge, skew);
      const int runs = skew == 1 ? 5 : 15;
      RegionSet linear_out, gallop_out;
      double linear_us = TimePolicy(
          KernelPolicy::kLinear, runs,
          [&] { return op.fn(small, large); }, &linear_out);
      double gallop_us = TimePolicy(
          KernelPolicy::kGalloping, runs,
          [&] { return op.fn(small, large); }, &gallop_out);
      if (!(linear_out == gallop_out)) {
        std::fprintf(stderr, "FATAL: %s results differ at skew 1:%llu\n",
                     op.name, static_cast<unsigned long long>(skew));
        std::exit(1);
      }
      double speedup = gallop_us > 0 ? linear_us / gallop_us : 0;
      std::string config = "1:" + std::to_string(skew);
      std::printf("%-14s %-10s %14.1f %14.1f %8.1fx\n", op.name,
                  config.c_str(), linear_us, gallop_us, speedup);
      emitter->Row(op.name, config, "linear_micros", linear_us);
      emitter->Row(op.name, config, "gallop_micros", gallop_us);
      emitter->Row(op.name, config, "speedup", speedup);
    }
  }
}

void BenchCache(qof_bench::JsonEmitter* emitter) {
  constexpr const char* kFlagship =
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"";
  constexpr int kRefs = 20000;
  std::printf("\ncache: cold vs warm (corpus: %d references)\n", kRefs);
  std::printf("%-14s %14s %14s %9s\n", "config", "cold_us", "warm_us",
              "speedup");
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(kRefs, qof::IndexSpec::Full(), "full");

  auto run = [&] {
    auto result = system.Execute(kFlagship);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*result);
  };

  system.SetCacheOptions(qof::CacheOptions{});
  qof::QueryResult uncached = run();

  // Cold: every iteration starts from freshly-reset caches.
  qof::QueryResult cold_result;
  double cold_us = qof_bench::MedianMicros(15, [&] {
    system.SetCacheOptions(qof::CacheOptions::Enabled());
    cold_result = run();
  });

  // Warm: caches stay populated across iterations.
  system.SetCacheOptions(qof::CacheOptions::Enabled());
  run();  // populate
  qof::QueryResult warm_result;
  double warm_us =
      qof_bench::MedianMicros(25, [&] { warm_result = run(); });
  system.SetCacheOptions(qof::CacheOptions{});

  if (warm_result.regions != cold_result.regions ||
      warm_result.regions != uncached.regions) {
    std::fprintf(stderr, "FATAL: cached results differ from uncached\n");
    std::exit(1);
  }
  double speedup = warm_us > 0 ? cold_us / warm_us : 0;
  std::printf("%-14s %14.1f %14.1f %8.1fx\n", "flagship", cold_us,
              warm_us, speedup);
  emitter->Row("cache", "flagship", "cold_micros", cold_us);
  emitter->Row("cache", "flagship", "warm_micros", warm_us);
  emitter->Row("cache", "flagship", "speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = qof_bench::ExtractJsonArg(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_cache_kernels.json";
  qof_bench::JsonEmitter emitter(json_path);
  BenchKernels(&emitter);
  BenchCache(&emitter);
  emitter.Flush();
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
