// Durability-cost experiment driver: what does crash consistency cost?
//
//   1. Journal append throughput under the three sync policies. kAlways
//      fsyncs every record (one commit = one durable record), kBatch
//      defers the fsync to an explicit SyncJournal() boundary, kNone
//      opts out entirely. The interesting number is the per-record
//      overhead kAlways pays for its zero-loss guarantee.
//   2. Atomic blob publish (the checkpoint protocol's tmp + fsync +
//      rename + dirsync dance) versus a naive in-place write, at a few
//      blob sizes.
//   3. Recovery: DurableIndexDir::Open + ReadJournal over a directory
//      holding a long journal tail — the startup price of replaying
//      instead of checkpointing.
//
// Plain driver (no google-benchmark): prints a table and writes JSON
// rows for the CI artifacts.
//
// Usage: bench_durability [--json <path>]
//   default path: BENCH_durability.json in the current directory.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "qof/maintain/durable_dir.h"
#include "qof/maintain/journal.h"
#include "qof/store/vfs.h"

namespace {

using qof::DurableIndexDir;
using qof::JournalRecord;
using qof::SyncPolicy;
using qof::SyncPolicyName;
using qof::Vfs;

std::string TempPath(const std::string& name) {
  return "/tmp/qof-bench-durability-" + std::to_string(::getpid()) + "-" +
         name;
}

/// Removes every file in `dir`, then the directory itself. Fresh ground
/// for each measured run.
void NukeDir(Vfs* vfs, const std::string& dir) {
  auto names = vfs->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) {
      (void)vfs->Remove(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

JournalRecord MakeRecord(uint64_t generation) {
  JournalRecord r;
  r.op = qof::JournalOp::kAdd;
  r.generation = generation;
  r.name = "doc-" + std::to_string(generation);
  r.text = std::string(200, 'x');
  return r;
}

void Die(const qof::Status& status, const char* what) {
  std::fprintf(stderr, "bench_durability: %s: %s\n", what,
               status.ToString().c_str());
  std::abort();
}

/// Appends `n` records to a fresh durable dir under `policy`; returns
/// wall micros for the whole append phase (one final SyncJournal under
/// kBatch, so every policy ends with its own notion of "done").
double AppendMicros(Vfs* vfs, SyncPolicy policy, int n) {
  const std::string dir = TempPath("append");
  NukeDir(vfs, dir);
  DurableIndexDir::Options options;
  options.sync_policy = policy;
  auto d = DurableIndexDir::Create(vfs, dir, "blob", 0, options);
  if (!d.ok()) Die(d.status(), "create");
  double micros = qof_bench::MedianMicros(1, [&] {
    for (int i = 0; i < n; ++i) {
      qof::Status s = d->Append(MakeRecord(static_cast<uint64_t>(i) + 1));
      if (!s.ok()) Die(s, "append");
    }
    if (policy == SyncPolicy::kBatch) {
      qof::Status s = d->SyncJournal();
      if (!s.ok()) Die(s, "sync");
    }
  });
  NukeDir(vfs, dir);
  return micros;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json = qof_bench::ExtractJsonArg(&argc, argv);
  if (json.empty()) json = "BENCH_durability.json";
  qof_bench::JsonEmitter emitter(json);
  Vfs* vfs = qof::DefaultVfs();

  // --- 1. journal append throughput per sync policy -------------------
  constexpr int kRecords = 400;
  std::printf("journal append, %d records of ~220 bytes\n", kRecords);
  std::printf("%-10s %14s %14s\n", "policy", "micros/rec", "recs/sec");
  double always_per_rec = 0;
  for (SyncPolicy policy :
       {SyncPolicy::kAlways, SyncPolicy::kBatch, SyncPolicy::kNone}) {
    double micros = AppendMicros(vfs, policy, kRecords);
    double per_rec = micros / kRecords;
    double per_sec = 1e6 / per_rec;
    if (policy == SyncPolicy::kAlways) always_per_rec = per_rec;
    std::string name(SyncPolicyName(policy));
    std::printf("%-10s %14.2f %14.0f\n", name.c_str(), per_rec, per_sec);
    emitter.Row("journal_append", name, "micros_per_record", per_rec);
    emitter.Row("journal_append", name, "records_per_sec", per_sec);
    if (policy != SyncPolicy::kAlways) {
      emitter.Row("journal_append", name, "speedup_vs_always",
                  always_per_rec / per_rec);
    }
  }

  // --- 2. atomic publish vs naive in-place write ----------------------
  std::printf("\natomic blob publish (tmp+fsync+rename+dirsync)\n");
  std::printf("%-10s %14s %14s %10s\n", "blob", "atomic_us", "inplace_us",
              "overhead");
  const std::string dir = TempPath("publish");
  NukeDir(vfs, dir);
  if (!vfs->CreateDir(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    std::abort();
  }
  for (size_t kib : {64, 1024, 8192}) {
    const std::string blob(kib * 1024, 'b');
    const std::string path = dir + "/blob";
    double atomic_us = qof_bench::MedianMicros(5, [&] {
      qof::Status s = qof::AtomicWriteFile(vfs, path, blob);
      if (!s.ok()) Die(s, "atomic write");
    });
    double inplace_us = qof_bench::MedianMicros(5, [&] {
      auto f = vfs->OpenWrite(path, /*truncate=*/true);
      if (!f.ok()) Die(f.status(), "open write");
      qof::Status s = (*f)->Append(blob);
      if (s.ok()) s = (*f)->Close();
      if (!s.ok()) Die(s, "in-place write");
    });
    std::string config = std::to_string(kib) + "KiB";
    std::printf("%-10s %14.1f %14.1f %9.2fx\n", config.c_str(), atomic_us,
                inplace_us, atomic_us / inplace_us);
    emitter.Row("atomic_publish", config, "atomic_micros", atomic_us);
    emitter.Row("atomic_publish", config, "inplace_micros", inplace_us);
    emitter.Row("atomic_publish", config, "overhead_ratio",
                atomic_us / inplace_us);
  }
  NukeDir(vfs, dir);

  // --- 3. recovery: open + journal replay scan ------------------------
  std::printf("\nrecovery (Open + ReadJournal) vs journal length\n");
  std::printf("%-10s %14s %14s\n", "records", "micros", "us/record");
  for (int n : {100, 1000, 4000}) {
    const std::string rdir = TempPath("recover");
    NukeDir(vfs, rdir);
    DurableIndexDir::Options options;
    options.sync_policy = SyncPolicy::kNone;  // setup speed; synced below
    auto d = DurableIndexDir::Create(vfs, rdir, "blob", 0, options);
    if (!d.ok()) Die(d.status(), "create");
    for (int i = 0; i < n; ++i) {
      qof::Status s = d->Append(MakeRecord(static_cast<uint64_t>(i) + 1));
      if (!s.ok()) Die(s, "append");
    }
    double micros = qof_bench::MedianMicros(5, [&] {
      auto opened = DurableIndexDir::Open(vfs, rdir);
      if (!opened.ok()) Die(opened.status(), "open");
      auto records = opened->ReadJournal();
      if (!records.ok()) Die(records.status(), "read journal");
      if (records->size() != static_cast<size_t>(n)) {
        std::fprintf(stderr, "recovery read %zu records, want %d\n",
                     records->size(), n);
        std::abort();
      }
    });
    std::string config = std::to_string(n);
    std::printf("%-10s %14.1f %14.2f\n", config.c_str(), micros,
                micros / n);
    emitter.Row("recovery", config, "micros", micros);
    emitter.Row("recovery", config, "micros_per_record", micros / n);
    NukeDir(vfs, rdir);
  }

  emitter.Flush();
  std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
