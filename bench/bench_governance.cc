// Resource-governance overhead and responsiveness (src/qof/exec/):
//
//   1. Overhead: the per-operator governance checkpoints must be free
//      when no limits are set (ExecContext stays inactive and every
//      checked path takes its fast branch) and cheap when generous
//      limits are armed. Measured on the bench_query_vs_baseline
//      workloads — index-only, forced two-phase, and baseline — the
//      no-limit overhead target is < 2%.
//
//   2. Responsiveness: a 5 ms deadline on a 20k-reference corpus must
//      come back promptly (< 25 ms) on every strategy — either the
//      query finished under the deadline or it returns the typed
//      kDeadlineExceeded with partial-progress decoration.
//
// The corpus is split across many documents: governance checkpoints sit
// at document granularity in the scan loops, so responsiveness depends
// on per-document, not whole-corpus, parse time.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";
constexpr int kDocs = 40;
constexpr int kRefsPerDoc = 500;  // 40 x 500 = 20k references

std::unique_ptr<qof::FileQuerySystem> MakeSystem() {
  auto schema = qof::BibtexSchema();
  auto system = std::make_unique<qof::FileQuerySystem>(*schema);
  for (int d = 0; d < kDocs; ++d) {
    qof::BibtexGenOptions gen;
    gen.num_references = kRefsPerDoc;
    gen.seed = static_cast<uint32_t>(d + 1);
    gen.probe_author_rate = 0.05;
    gen.probe_editor_rate = 0.05;
    if (!system->AddFile("doc" + std::to_string(d) + ".bib",
                         qof::GenerateBibtex(gen))
             .ok()) {
      std::fprintf(stderr, "bench fixture setup failed\n");
      std::abort();
    }
  }
  if (!system->BuildIndexes(qof::IndexSpec::Full()).ok()) {
    std::fprintf(stderr, "bench index build failed\n");
    std::abort();
  }
  return system;
}

struct Workload {
  const char* name;
  qof::ExecutionMode mode;
  int runs;  // more runs for fast strategies to tame timer noise
};

double RunOnce(qof::FileQuerySystem& system, qof::ExecutionMode mode,
               const qof::QueryOptions& options, int runs) {
  return qof_bench::MedianMicros(runs, [&] {
    auto result = system.Execute(kFlagship, mode, options);
    if (!result.ok()) {
      std::fprintf(stderr, "governed query failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
  });
}

}  // namespace

int main() {
  auto system = MakeSystem();
  system->SetParallelism(1);

  const std::vector<Workload> workloads = {
      {"index-only", qof::ExecutionMode::kIndexOnly, 31},
      {"two-phase", qof::ExecutionMode::kTwoPhase, 15},
      {"baseline", qof::ExecutionMode::kBaseline, 5},
  };

  // Generous limits: every checkpoint runs, none ever trips.
  qof::QueryOptions generous;
  generous.deadline_ms = 60 * 60 * 1000;
  generous.max_bytes = 1ull << 60;
  generous.max_regions = 1ull << 60;

  std::printf("governance overhead, %d refs in %d documents (%s)\n",
              kDocs * kRefsPerDoc, kDocs, kFlagship);
  std::printf("%-12s %14s %14s %10s\n", "strategy", "ungoverned_us",
              "governed_us", "overhead");
  for (const Workload& w : workloads) {
    double plain = RunOnce(*system, w.mode, qof::QueryOptions(), w.runs);
    double governed = RunOnce(*system, w.mode, generous, w.runs);
    std::printf("%-12s %14.1f %14.1f %9.2f%%\n", w.name, plain, governed,
                (governed - plain) / plain * 100.0);
  }

  std::printf("\n5 ms deadline responsiveness (target: reply < 25 ms)\n");
  std::printf("%-12s %12s %s\n", "strategy", "reply_ms", "outcome");
  for (const Workload& w : workloads) {
    qof::QueryOptions deadline;
    deadline.deadline_ms = 5;
    auto start = std::chrono::steady_clock::now();
    auto result = system->Execute(kFlagship, w.mode, deadline);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    const char* outcome =
        result.ok() ? "completed under deadline"
        : result.status().IsDeadlineExceeded()
            ? "kDeadlineExceeded (typed)"
            : "UNEXPECTED ERROR";
    std::printf("%-12s %12.2f %s\n", w.name, ms, outcome);
    if (!result.ok() && !result.status().IsDeadlineExceeded()) {
      std::fprintf(stderr, "unexpected: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (ms >= 25.0) {
      std::fprintf(stderr, "governed reply took %.2f ms (>= 25 ms)\n", ms);
      return 1;
    }
  }
  return 0;
}
