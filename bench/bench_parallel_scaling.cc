// Parallel scaling of the two build/query hot paths this engine owns:
// index construction (parse + tokenize every document) and two-phase
// execution (parse + filter every candidate). Reports wall time and
// speedup at 1/2/4/8 workers and cross-checks that every parallel build
// is byte-identical to the serial one — the determinism contract.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct Fixture {
  std::unique_ptr<qof::FileQuerySystem> system;
  std::string serial_blob;
};

Fixture MakeBibtexFixture(int num_files, int refs_per_file) {
  auto schema = qof::BibtexSchema();
  Fixture f;
  f.system = std::make_unique<qof::FileQuerySystem>(*schema);
  for (int i = 0; i < num_files; ++i) {
    qof::BibtexGenOptions gen;
    gen.num_references = refs_per_file;
    gen.seed = static_cast<uint32_t>(i + 1);
    if (!f.system
             ->AddFile("bench" + std::to_string(i) + ".bib",
                       qof::GenerateBibtex(gen))
             .ok()) {
      std::fprintf(stderr, "fixture setup failed\n");
      std::abort();
    }
  }
  return f;
}

void BenchIndexBuild(Fixture* f, int num_files, int refs_per_file) {
  std::printf("index build: %d files x %d refs (%.1f MB corpus)\n",
              num_files, refs_per_file,
              static_cast<double>(f->system->corpus().size()) / 1e6);
  std::printf("%8s %12s %9s %8s\n", "threads", "build", "speedup",
              "identical");
  double serial_micros = 0;
  for (int threads : {1, 2, 4, 8}) {
    qof::IndexSpec spec;
    spec.parallelism = threads;
    double micros = qof_bench::MedianMicros(3, [&] {
      if (!f->system->BuildIndexes(spec).ok()) std::abort();
    });
    auto blob = f->system->ExportIndexes();
    bool identical = true;
    if (threads == 1) {
      serial_micros = micros;
      f->serial_blob = blob.ok() ? *blob : std::string();
    } else {
      identical = blob.ok() && *blob == f->serial_blob;
    }
    std::printf("%8d %10.1f ms %8.2fx %8s\n", threads, micros / 1000.0,
                serial_micros / micros, identical ? "yes" : "NO");
  }
}

void BenchTwoPhase(Fixture* f) {
  // A partial index makes the flagship query inexact, forcing phase 2
  // over every Chang candidate.
  qof::IndexSpec spec =
      qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"});
  if (!f->system->BuildIndexes(spec).ok()) std::abort();
  const std::string fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"";
  std::printf("\ntwo-phase query: %s\n", fql.c_str());
  std::printf("%8s %12s %9s %11s %8s\n", "threads", "query", "speedup",
              "candidates", "results");
  double serial_micros = 0;
  std::vector<std::string> serial_values;
  for (int threads : {1, 2, 4, 8}) {
    f->system->SetParallelism(threads);
    uint64_t candidates = 0;
    uint64_t results = 0;
    std::vector<std::string> values;
    double micros = qof_bench::MedianMicros(5, [&] {
      auto r = f->system->Execute(fql, qof::ExecutionMode::kTwoPhase);
      if (!r.ok()) std::abort();
      candidates = r->stats.candidates;
      results = r->stats.results;
      values = r->RenderedValues();
    });
    bool identical = true;
    if (threads == 1) {
      serial_micros = micros;
      serial_values = values;
    } else {
      identical = values == serial_values;
    }
    std::printf("%8d %10.1f ms %8.2fx %11llu %7llu%s\n", threads,
                micros / 1000.0, serial_micros / micros,
                static_cast<unsigned long long>(candidates),
                static_cast<unsigned long long>(results),
                identical ? "" : "  RESULT MISMATCH");
  }
}

}  // namespace

int main() {
  std::printf("parallel scaling (hardware threads: %d)\n\n",
              qof::EffectiveParallelism(0));
  const int kFiles = 32;
  const int kRefsPerFile = 250;
  Fixture f = MakeBibtexFixture(kFiles, kRefsPerFile);
  BenchIndexBuild(&f, kFiles, kRefsPerFile);
  BenchTwoPhase(&f);
  return 0;
}
