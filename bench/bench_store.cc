// Benchmarks backing the disk-tier acceptance targets:
//
//   1. Block-skipping galloping intersect against a paged store must stay
//      within 3x of the in-memory galloping kernel at 1:10k skew — the
//      skip table has to discard nearly every block without paging it in.
//   2. A cold OpenStore must touch only a small fraction of the file
//      (meta page + fence pages), not slurp it.
//   3. A selective query on a freshly opened store must page in under 5%
//      of the file's pages.
//
// Plain driver (no google-benchmark): prints a table and writes the JSON
// rows the CI store-smoke gate checks.
//
// Usage: bench_store [--json <path>] [--grammar-mb <corpus MiB>]
//   default path: BENCH_store.json in the current directory;
//   default grammar corpus 4 MiB (--grammar-mb 100+ exercises the
//   deterministic scale knob on the grammar-model renderer).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "qof/engine/system.h"
#include "qof/fuzz/grammar_model.h"
#include "qof/region/region_cursor.h"
#include "qof/schema/schema_text.h"
#include "qof/store/paged_store.h"
#include "qof/store/store_writer.h"
#include "qof/util/wire.h"

namespace {

using qof::KernelPolicy;
using qof::Region;
using qof::RegionSet;

std::string TempPath(const char* name) {
  return "/tmp/qof-bench-store-" + std::to_string(::getpid()) + "-" + name;
}

/// `n` disjoint regions spaced so subsets at any stride stay non-trivial
/// (same layout as bench_cache_kernels, so the two benches are
/// comparable).
RegionSet DenseSet(uint64_t n) {
  std::vector<Region> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back({4 * i, 4 * i + 2});
  return RegionSet::FromUnsorted(std::move(v));
}

RegionSet StridedSubset(uint64_t n, uint64_t stride) {
  std::vector<Region> v;
  for (uint64_t i = 0; i < n; i += stride) v.push_back({4 * i, 4 * i + 2});
  return RegionSet::FromUnsorted(std::move(v));
}

/// Writes a store holding exactly one region instance ("big", `n`
/// regions) — the smallest file that exercises the posting blocks and
/// their skip table at scale.
std::shared_ptr<const qof::PagedStore> SyntheticStore(
    const RegionSet& big, const std::string& path) {
  qof::RegionIndex regions;
  regions.Add("big", big);
  qof::WordIndex words = qof::WordIndex::FromEntries({}, false);
  std::string spec_bytes;
  qof::EncodeIndexSpec(qof::IndexSpec::Full(), &spec_bytes);
  std::string doc_table;
  qof::PutU32(0, &doc_table);

  qof::StoreWriterInput input;
  input.regions = &regions;
  input.words = &words;
  input.spec_bytes = spec_bytes;
  input.doc_table_bytes = doc_table;
  auto image = qof::BuildStoreImage(input);
  if (!image.ok() || !qof::WriteFileBytes(path, *image).ok()) {
    std::fprintf(stderr, "bench store setup failed\n");
    std::abort();
  }
  auto store = qof::PagedStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "bench store open failed: %s\n",
                 store.status().ToString().c_str());
    std::abort();
  }
  return *store;
}

void BenchSkewIntersect(qof_bench::JsonEmitter* emitter) {
  constexpr uint64_t kLarge = 1u << 20;  // 1M regions
  RegionSet large = DenseSet(kLarge);
  const std::string path = TempPath("skew.qofstore");
  auto store = SyntheticStore(large, path);
  auto entry = store->FindRegionEntry("big");
  if (!entry.ok() || !entry->has_value()) {
    std::fprintf(stderr, "bench store dictionary probe failed\n");
    std::abort();
  }

  std::printf(
      "skew intersect: galloping kernel vs block-skipping cursors "
      "(large side: %llu regions, %llu-page file)\n",
      static_cast<unsigned long long>(kLarge),
      static_cast<unsigned long long>(store->num_pages()));
  std::printf("%-10s %12s %12s %12s %10s %18s\n", "skew", "gallop_us",
              "memcur_us", "diskcur_us", "ratio", "blocks_decoded");
  for (uint64_t skew : {uint64_t{100}, uint64_t{10000}}) {
    RegionSet probe = StridedSubset(kLarge, skew);
    const int runs = 15;

    qof::SetKernelPolicy(KernelPolicy::kGalloping);
    RegionSet mem_out;
    double gallop_us = qof_bench::MedianMicros(
        runs, [&] { mem_out = Intersect(probe, large); });
    qof::SetKernelPolicy(KernelPolicy::kAdaptive);

    // The same block-skipping kernel over an in-memory cursor with the
    // store's block geometry — isolates what the disk tier itself costs
    // (page pinning + varint decode) from what blocking costs.
    RegionSet memcur_out;
    double memcur_us = qof_bench::MedianMicros(runs, [&] {
      qof::VectorRegionCursor vec(&large.regions(),
                                  qof::kPostingBlockEntries);
      auto result = qof::IntersectCursor(probe, vec);
      if (!result.ok()) std::abort();
      memcur_out = std::move(*result);
    });

    // A fresh cursor per configuration, held across runs like a warm
    // system holds a hot instance. One untimed cold pass pages the
    // touched blocks in and counts them (the skip-effectiveness number);
    // the timed runs then measure the warm path, where the cursor serves
    // repeat blocks from its decoded cache.
    auto cursor = qof::PagedStore::OpenRegionCursor(store, **entry);
    if (!cursor.ok()) {
      std::fprintf(stderr, "bench store cursor open failed\n");
      std::abort();
    }
    RegionSet disk_out;
    uint64_t decoded_before = (*cursor)->blocks_decoded();
    {
      auto result = qof::IntersectCursor(probe, **cursor);
      if (!result.ok()) std::abort();
    }
    uint64_t decoded = (*cursor)->blocks_decoded() - decoded_before;
    double diskcur_us = qof_bench::MedianMicros(runs, [&] {
      auto result = qof::IntersectCursor(probe, **cursor);
      if (!result.ok()) std::abort();
      disk_out = std::move(*result);
    });
    uint64_t blocks = (*cursor)->num_blocks();
    if (!(mem_out == disk_out) || !(mem_out == memcur_out)) {
      std::fprintf(stderr, "FATAL: results differ at skew 1:%llu\n",
                   static_cast<unsigned long long>(skew));
      std::abort();
    }

    std::string config = "1:" + std::to_string(skew);
    double ratio = diskcur_us / gallop_us;
    std::printf("%-10s %12.1f %12.1f %12.1f %10.2f %11llu/%llu\n",
                config.c_str(), gallop_us, memcur_us, diskcur_us, ratio,
                static_cast<unsigned long long>(decoded),
                static_cast<unsigned long long>(blocks));
    emitter->Row("skew_intersect", config, "gallop_micros", gallop_us);
    emitter->Row("skew_intersect", config, "memcursor_micros", memcur_us);
    emitter->Row("skew_intersect", config, "diskcursor_micros",
                 diskcur_us);
    emitter->Row("skew_intersect", config, "ratio", ratio);
    emitter->Row("skew_intersect", config, "blocks_decoded",
                 static_cast<double>(decoded));
    emitter->Row("skew_intersect", config, "blocks_total",
                 static_cast<double>(blocks));
  }
  std::remove(path.c_str());
}

void BenchOpenAndSelectiveQuery(qof_bench::JsonEmitter* emitter) {
  // Big enough that the fixed open cost (meta + fences) and the query's
  // footprint (one word's postings + the region blocks it lands in) are
  // both small fractions of the file; the probe rate keeps the match
  // count — and with it the touched-block count — roughly constant.
  qof::BibtexGenOptions gen;
  gen.num_references = 30000;
  // A genuinely selective probe: "Chang" appears as an author in ~15
  // references and as an editor in ~7 more (the default editor rate
  // would sprinkle it through 5% of all entries, turning the point query
  // into a near-scan of the Last_Name blocks). Blocks share pages
  // (~12 region blocks per 4 KiB page), so each scattered match costs a
  // whole page in up to three sections — the absolute match count, not
  // the match *rate*, is what the footprint tracks.
  gen.probe_author_rate = 0.0005;
  gen.probe_editor_rate = 0.00025;
  std::string text = qof::GenerateBibtex(gen);
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem builder(*schema);
  const std::string path = TempPath("bibtex.qofstore");
  if (!builder.AddFile("bench.bib", text).ok() ||
      !builder.BuildIndexes(qof::IndexSpec::Full()).ok() ||
      !builder.SaveStore(path).ok()) {
    std::fprintf(stderr, "bench corpus setup failed\n");
    std::abort();
  }

  qof::FileQuerySystem disk(*schema);
  if (!disk.AddFile("bench.bib", text).ok() || !disk.OpenStore(path).ok()) {
    std::fprintf(stderr, "bench store reopen failed\n");
    std::abort();
  }
  qof::BufferPoolStats open_stats = disk.index_stats().pool;
  auto file = qof::PagedFile::Open(path, qof::kDefaultPageSize);
  if (!file.ok()) std::abort();
  const double file_bytes = static_cast<double>(file->file_bytes());
  const double total_pages = static_cast<double>(file->num_pages());
  double open_frac = static_cast<double>(open_stats.bytes_read) / file_bytes;
  std::printf(
      "cold open: %llu of %.0f bytes touched (%.1f%% of the file, "
      "%llu of %.0f pages)\n",
      static_cast<unsigned long long>(open_stats.bytes_read), file_bytes,
      open_frac * 100.0,
      static_cast<unsigned long long>(open_stats.pages_touched),
      total_pages);
  emitter->Row("cold_open", "bibtex30k", "open_bytes",
               static_cast<double>(open_stats.bytes_read));
  emitter->Row("cold_open", "bibtex30k", "file_bytes", file_bytes);
  emitter->Row("cold_open", "bibtex30k", "frac", open_frac);

  // One selective point query on the freshly opened store: only the
  // probed word's postings and the touched region blocks should page in.
  auto result = disk.Execute(
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"",
      qof::ExecutionMode::kAuto);
  if (!result.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  qof::BufferPoolStats query_stats = disk.index_stats().pool;
  double query_pages = static_cast<double>(query_stats.pages_touched -
                                           open_stats.pages_touched);
  double query_frac = query_pages / total_pages;
  std::printf(
      "selective query: %.0f of %.0f pages paged in (%.1f%%), "
      "%zu match(es)\n",
      query_pages, total_pages, query_frac * 100.0,
      result->regions.size());
  emitter->Row("selective_query", "bibtex30k", "query_pages", query_pages);
  emitter->Row("selective_query", "bibtex30k", "total_pages", total_pages);
  emitter->Row("selective_query", "bibtex30k", "frac", query_frac);
  std::remove(path.c_str());
}

/// The same cold-open + selective-query shape over the grammar-model
/// bench corpus, whose size scales deterministically from a seed
/// (`--grammar-mb 100` and up regenerates the identical 100 MB+ corpus
/// on every machine — nothing is checked in). The probe word "zulu" is
/// planted at a constant 2% rate, so the point query's match rate — and
/// with it the paged-in fraction — holds roughly steady as the file
/// grows; the absolute page count is the scaling signal.
void BenchGrammarStore(qof_bench::JsonEmitter* emitter, size_t mb) {
  qof::BenchCorpusSpec spec;
  spec.seed = 7;
  spec.target_bytes = mb << 20;
  spec.zipf_s = 1.1;
  qof::BenchCorpus bench = qof::MakeBenchCorpus(spec);
  auto schema = qof::ParseSchemaText(bench.schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "grammar bench schema parse failed\n");
    std::abort();
  }
  const std::string path = TempPath("grammar.qofstore");
  {
    qof::FileQuerySystem builder(*schema);
    builder.SetParallelism(0);
    for (const auto& [name, text] : bench.docs) {
      if (!builder.AddFile(name, text).ok()) std::abort();
    }
    if (!builder.BuildIndexes(qof::IndexSpec::Full()).ok() ||
        !builder.SaveStore(path).ok()) {
      std::fprintf(stderr, "grammar bench store build failed\n");
      std::abort();
    }
  }

  qof::FileQuerySystem disk(*schema);
  for (const auto& [name, text] : bench.docs) {
    if (!disk.AddFile(name, text).ok()) std::abort();
  }
  if (!disk.OpenStore(path).ok()) {
    std::fprintf(stderr, "grammar bench store reopen failed\n");
    std::abort();
  }
  qof::BufferPoolStats open_stats = disk.index_stats().pool;
  auto file = qof::PagedFile::Open(path, qof::kDefaultPageSize);
  if (!file.ok()) std::abort();
  const double file_bytes = static_cast<double>(file->file_bytes());
  const double total_pages = static_cast<double>(file->num_pages());
  double open_frac =
      static_cast<double>(open_stats.bytes_read) / file_bytes;

  auto result =
      disk.Execute("SELECT x FROM Obj x WHERE x.Alpha = \"zulu\"",
                   qof::ExecutionMode::kAuto);
  if (!result.ok()) {
    std::fprintf(stderr, "grammar bench query failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  qof::BufferPoolStats query_stats = disk.index_stats().pool;
  double query_pages = static_cast<double>(query_stats.pages_touched -
                                           open_stats.pages_touched);
  double query_frac = query_pages / total_pages;

  std::string config = "grammar" + std::to_string(mb) + "mb";
  std::printf(
      "\ngrammar corpus (seed %u, zipf %.2f): %zu docs, %.1f MiB -> "
      "%.0f-page store\n"
      "  cold open %.1f%% of the file; selective query %.0f pages "
      "(%.1f%%), %zu match(es)\n",
      spec.seed, spec.zipf_s, bench.docs.size(),
      bench.total_bytes / (1024.0 * 1024.0), total_pages,
      open_frac * 100.0, query_pages, query_frac * 100.0,
      result->regions.size());
  emitter->Row("grammar_store", config, "corpus_bytes",
               static_cast<double>(bench.total_bytes));
  emitter->Row("grammar_store", config, "docs",
               static_cast<double>(bench.docs.size()));
  emitter->Row("grammar_store", config, "open_frac", open_frac);
  emitter->Row("grammar_store", config, "query_pages", query_pages);
  emitter->Row("grammar_store", config, "query_frac", query_frac);
  emitter->Row("grammar_store", config, "matches",
               static_cast<double>(result->regions.size()));
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json = qof_bench::ExtractJsonArg(&argc, argv);
  if (json.empty()) json = "BENCH_store.json";
  size_t grammar_mb = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--grammar-mb") {
      grammar_mb = static_cast<size_t>(std::atoll(argv[i + 1]));
    }
  }
  qof_bench::JsonEmitter emitter(json);
  BenchSkewIntersect(&emitter);
  BenchOpenAndSelectiveQuery(&emitter);
  BenchGrammarStore(&emitter, grammar_mb);
  emitter.Flush();
  std::printf("wrote %s\n", json.c_str());
  return 0;
}
