// Experiment E9 (Theorem 3.6): the optimizer runs in time polynomial in
// the expression length. Random inclusion chains over random DAG-shaped
// RIGs, length sweep 4..512 — per-chain optimize time should grow
// polynomially (roughly quadratically: per-link graph tests over a
// fixed-size RIG).

#include <random>

#include <benchmark/benchmark.h>

#include "qof/optimizer/optimizer.h"

namespace {

// A "ladder" RIG: a long chain i -> i+1 with random short skip edges, so
// downward walks of any requested length exist and skip edges create the
// alternate paths the rewrite conditions must analyse.
qof::Rig LadderRig(std::mt19937& rng, int nodes, double skip_prob) {
  qof::Rig g;
  for (int i = 0; i < nodes; ++i) g.AddNode("N" + std::to_string(i));
  std::bernoulli_distribution coin(skip_prob);
  std::uniform_int_distribution<int> span(2, 5);
  for (int i = 0; i + 1 < nodes; ++i) {
    g.AddEdge(static_cast<qof::Rig::NodeId>(i),
              static_cast<qof::Rig::NodeId>(i + 1));
    if (coin(rng)) {
      int j = std::min(nodes - 1, i + span(rng));
      g.AddEdge(static_cast<qof::Rig::NodeId>(i),
                static_cast<qof::Rig::NodeId>(j));
    }
  }
  return g;
}

// A downward random walk (so chains are usually non-trivial).
qof::InclusionChain RandomChain(const qof::Rig& g, std::mt19937& rng,
                                int length) {
  qof::InclusionChain chain;
  std::uniform_int_distribution<size_t> start(0, g.num_nodes() - 1);
  std::bernoulli_distribution direct(0.7);
  qof::Rig::NodeId cur = static_cast<qof::Rig::NodeId>(start(rng));
  chain.names.push_back(g.name(cur));
  for (int i = 1; i < length; ++i) {
    const auto& out = g.out_edges(cur);
    if (out.empty()) break;
    std::uniform_int_distribution<size_t> pick(0, out.size() - 1);
    cur = out[pick(rng)];
    chain.names.push_back(g.name(cur));
    chain.direct.push_back(direct(rng));
  }
  chain.sels.resize(chain.names.size());
  return chain;
}

void BM_OptimizeChain(benchmark::State& state) {
  std::mt19937 rng(17);
  qof::Rig g = LadderRig(rng, 600, 0.3);
  qof::ChainOptimizer optimizer(&g);
  int length = static_cast<int>(state.range(0));
  std::vector<qof::InclusionChain> chains;
  double total_len = 0;
  for (int i = 0; i < 32; ++i) {
    chains.push_back(RandomChain(g, rng, length));
    total_len += static_cast<double>(chains.back().length());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto outcome = optimizer.Optimize(chains[i++ % chains.size()]);
    if (!outcome.ok()) state.SkipWithError("optimize failed");
    benchmark::DoNotOptimize(outcome->chain.length());
  }
  state.counters["avg_chain_len"] = total_len / 32.0;
}

void BM_TrivialityCheck(benchmark::State& state) {
  std::mt19937 rng(23);
  qof::Rig g = LadderRig(rng, 600, 0.3);
  qof::ChainOptimizer optimizer(&g);
  int length = static_cast<int>(state.range(0));
  std::vector<qof::InclusionChain> chains;
  for (int i = 0; i < 32; ++i) chains.push_back(RandomChain(g, rng, length));
  size_t i = 0;
  for (auto _ : state) {
    bool trivial =
        optimizer.IsTriviallyEmpty(chains[i++ % chains.size()]);
    benchmark::DoNotOptimize(trivial);
  }
}

}  // namespace

BENCHMARK(BM_OptimizeChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(512);
BENCHMARK(BM_TrivialityCheck)->Arg(4)->Arg(64)->Arg(512);

BENCHMARK_MAIN();
