// Experiment E3 (§3.1): the relative cost of ⊃ (simple inclusion) and ⊃d
// (direct inclusion), including the paper's own layer-by-layer ⊃d
// program, on synthetic nested region sets of increasing depth. The
// paper presents the layered program precisely "to show that it is
// significantly more expensive than the simple inclusion operation".

#include <random>

#include <benchmark/benchmark.h>

#include "qof/region/region_index.h"
#include "qof/region/region_set.h"

namespace {

using qof::Region;
using qof::RegionSet;

// A forest of `chains` nested chains, each `depth` levels deep, split
// across two region names (even levels = R, odd levels = S).
struct Fixture {
  RegionSet r;
  RegionSet s;
  RegionSet universe;
};

Fixture MakeNested(int chains, int depth) {
  std::vector<Region> r;
  std::vector<Region> s;
  uint64_t base = 0;
  const uint64_t width = 4096;
  for (int c = 0; c < chains; ++c) {
    uint64_t lo = base;
    uint64_t hi = base + width;
    for (int d = 0; d < depth; ++d) {
      ((d % 2 == 0) ? r : s).push_back({lo, hi});
      ++lo;
      --hi;
      if (lo + 2 >= hi) break;
    }
    base += width + 8;
  }
  Fixture f;
  f.r = RegionSet::FromUnsorted(std::move(r));
  f.s = RegionSet::FromUnsorted(std::move(s));
  f.universe = Union(f.r, f.s);
  return f;
}

void BM_SimpleInclusion(benchmark::State& state) {
  Fixture f = MakeNested(2000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RegionSet out = Including(f.r, f.s);
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["r"] = static_cast<double>(f.r.size());
  state.counters["s"] = static_cast<double>(f.s.size());
}

void BM_DirectInclusion(benchmark::State& state) {
  Fixture f = MakeNested(2000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RegionSet out = DirectlyIncluding(f.r, f.s, f.universe);
    benchmark::DoNotOptimize(out.size());
  }
}

void BM_DirectInclusionLayered(benchmark::State& state) {
  Fixture f = MakeNested(2000, static_cast<int>(state.range(0)));
  std::vector<const RegionSet*> others = {&f.r};
  for (auto _ : state) {
    RegionSet out = DirectlyIncludingLayered(f.r, f.s, others);
    benchmark::DoNotOptimize(out.size());
  }
}

void BM_InnermostOutermost(benchmark::State& state) {
  Fixture f = MakeNested(2000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Innermost(f.universe).size());
    benchmark::DoNotOptimize(Outermost(f.universe).size());
  }
}

void BM_SetOps(benchmark::State& state) {
  Fixture f = MakeNested(2000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(f.r, f.s).size());
    benchmark::DoNotOptimize(Intersect(f.universe, f.r).size());
    benchmark::DoNotOptimize(Difference(f.universe, f.s).size());
  }
}

}  // namespace

BENCHMARK(BM_SimpleInclusion)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DirectInclusion)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DirectInclusionLayered)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_InnermostOutermost)->Arg(4)->Arg(16);
BENCHMARK(BM_SetOps)->Arg(4)->Arg(16);

BENCHMARK_MAIN();
