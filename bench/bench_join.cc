// Experiment E10 (§5.2): select–project–join. The join predicate
// "editors who also authored" cannot be computed by the region algebra
// alone; the index still accelerates it by locating the two attribute
// region sets and loading only their text (index-assisted join), versus
// parsing every candidate (two-phase) or the whole file (baseline).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr const char* kJoin =
    "SELECT r FROM References r "
    "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name";

void Run(benchmark::State& state, qof::ExecutionMode mode) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kJoin, mode);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  state.counters["results"] = static_cast<double>(last.stats.results);
  state.counters["bytes_scanned"] =
      static_cast<double>(last.stats.bytes_scanned);
}

void BM_IndexAssistedJoin(benchmark::State& state) {
  Run(state, qof::ExecutionMode::kAuto);  // picks "index-join"
}

void BM_TwoPhaseJoin(benchmark::State& state) {
  Run(state, qof::ExecutionMode::kTwoPhase);
}

void BM_BaselineJoin(benchmark::State& state) {
  Run(state, qof::ExecutionMode::kBaseline);
}

}  // namespace

BENCHMARK(BM_IndexAssistedJoin)->Arg(1000)->Arg(5000);
BENCHMARK(BM_TwoPhaseJoin)->Arg(1000)->Arg(5000);
BENCHMARK(BM_BaselineJoin)->Arg(1000)->Arg(5000);

BENCHMARK_MAIN();
