// Benchmarks backing the dataflow-IR acceptance targets: tree evaluator
// vs. IR executor on a CSE-heavy multi-leg query with cold caches (the
// IR side must win ≥2×: CSE plus cross-root slot memoization evaluate
// the shared subtree once where the tree walks it four times), fused
// select/containment chains, and nested-loop vs. sort-merge index join
// as the per-candidate attribute count scales (sort-merge must win ≥5×
// at the largest size). Plain driver (no google-benchmark): prints a
// table and writes the JSON rows the CI bench-smoke gate checks.
//
// Usage: bench_ir [--json <path>] [--grammar-mb <corpus MiB>]
//   default path: BENCH_ir.json in the current directory;
//   default grammar corpus 4 MiB (--grammar-mb 100+ exercises the
//   deterministic scale knob on the grammar-model renderer).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "qof/algebra/evaluator.h"
#include "qof/algebra/parser.h"
#include "qof/engine/join.h"
#include "qof/fuzz/grammar_model.h"
#include "qof/ir/executor.h"
#include "qof/ir/ir.h"
#include "qof/ir/passes.h"
#include "qof/schema/schema_text.h"

namespace {

using qof::BuiltIndexes;
using qof::Corpus;
using qof::Region;
using qof::RegionSet;

constexpr int kRefs = 20000;

struct Fixture {
  Corpus corpus;
  std::unique_ptr<BuiltIndexes> built;
};

Fixture& BibtexFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    qof::BibtexGenOptions gen;
    gen.num_references = kRefs;
    gen.probe_author_rate = 0.05;
    gen.probe_editor_rate = 0.05;
    auto schema = qof::BibtexSchema();
    if (!schema.ok() ||
        !f->corpus.AddDocument("bench.bib", qof::GenerateBibtex(gen))
             .ok()) {
      std::fprintf(stderr, "bench fixture setup failed\n");
      std::abort();
    }
    auto built =
        qof::BuildIndexes(*schema, f->corpus, qof::IndexSpec::Full());
    if (!built.ok()) {
      std::fprintf(stderr, "bench index build failed\n");
      std::abort();
    }
    f->built = std::make_unique<BuiltIndexes>(std::move(*built));
    return f;
  }();
  return *fixture;
}

qof::RegionExprPtr Parse(const std::string& text) {
  auto expr = qof::ParseRegionExpr(text);
  if (!expr.ok()) {
    std::fprintf(stderr, "FATAL: bad bench expression: %s\n",
                 expr.status().ToString().c_str());
    std::exit(1);
  }
  return *expr;
}

// Evaluates candidate + projection legs the way each engine does inside
// the system: the tree walks both expression trees (re-deriving shared
// subtrees), the IR engine lowers both legs into one program, runs the
// pass pipeline, and evaluates roots over shared slots.
void BenchCseMultiLeg(qof_bench::JsonEmitter* emitter) {
  Fixture& f = BibtexFixture();
  // The expensive subtree E appears three times in the candidate leg
  // and once more in the projection leg.
  const std::string e =
      "(Reference > Authors > sigma(\"Chang\", Last_Name))";
  const std::string cand = "(" + e + " & sigma(\"1987\", Year)) | (" + e +
                           " & sigma(\"1991\", Year)) | (" + e +
                           " & sigma(\"1994\", Year))";
  const std::string proj = "Last_Name < " + e;
  qof::RegionExprPtr cand_expr = Parse(cand);
  qof::RegionExprPtr proj_expr = Parse(proj);

  std::printf("cse: multi-leg query, cold cache (corpus: %d refs)\n",
              kRefs);
  std::printf("%-14s %14s %14s %9s\n", "config", "tree_us", "ir_us",
              "speedup");

  RegionSet tree_cand, tree_proj;
  double tree_us = qof_bench::MedianMicros(15, [&] {
    qof::ExprEvaluator tree(&f.built->regions, &f.built->words,
                            &f.corpus);
    auto c = tree.Evaluate(*cand_expr);
    auto p = tree.Evaluate(*proj_expr);
    if (!c.ok() || !p.ok()) {
      std::fprintf(stderr, "FATAL: tree evaluation failed\n");
      std::exit(1);
    }
    tree_cand = std::move(*c);
    tree_proj = IncludedIn(*p, tree_cand);
  });

  RegionSet ir_cand, ir_proj;
  double ir_us = qof_bench::MedianMicros(15, [&] {
    // Lowering + passes are inside the timed region: the tree side pays
    // no planning at all, so this is the honest end-to-end comparison.
    qof::IrProgram program = qof::LowerToIr(
        cand_expr.get(), proj_expr.get(), nullptr, nullptr);
    qof::RunPasses(&program, qof::IrPlanOptions{}, &f.built->regions,
                   &f.built->words);
    qof::IrExecutor exec(&program, &f.built->regions, &f.built->words,
                         &f.corpus);
    auto c = exec.EvaluateRoot(program.candidates);
    auto p = exec.EvaluateRoot(program.project);
    if (!c.ok() || !p.ok()) {
      std::fprintf(stderr, "FATAL: IR evaluation failed\n");
      std::exit(1);
    }
    ir_cand = std::move(*c);
    ir_proj = std::move(*p);
  });

  if (!(tree_cand == ir_cand) || !(tree_proj == ir_proj)) {
    std::fprintf(stderr, "FATAL: tree and IR answers differ\n");
    std::exit(1);
  }
  double speedup = ir_us > 0 ? tree_us / ir_us : 0;
  std::printf("%-14s %14.1f %14.1f %8.1fx\n", "multi-leg", tree_us,
              ir_us, speedup);
  emitter->Row("cse", "multi-leg", "tree_micros", tree_us);
  emitter->Row("cse", "multi-leg", "ir_micros", ir_us);
  emitter->Row("cse", "multi-leg", "speedup", speedup);
}

void BenchFusedChain(qof_bench::JsonEmitter* emitter) {
  Fixture& f = BibtexFixture();
  // A per-member predicate chain: containment then two selections —
  // fuses into one batched kernel node on the IR side.
  qof::RegionExprPtr expr = Parse(
      "sigma(\"Chang\", starts(\"Cha\", Last_Name < Name))");

  std::printf("\nfused: select/containment chain\n");
  std::printf("%-14s %14s %14s %9s\n", "config", "tree_us", "ir_us",
              "speedup");

  RegionSet tree_out;
  double tree_us = qof_bench::MedianMicros(25, [&] {
    qof::ExprEvaluator tree(&f.built->regions, &f.built->words,
                            &f.corpus);
    auto r = tree.Evaluate(*expr);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: tree evaluation failed\n");
      std::exit(1);
    }
    tree_out = std::move(*r);
  });

  RegionSet ir_out;
  double ir_us = qof_bench::MedianMicros(25, [&] {
    qof::IrProgram program =
        qof::LowerToIr(expr.get(), nullptr, nullptr, nullptr);
    qof::RunPasses(&program, qof::IrPlanOptions{}, &f.built->regions,
                   &f.built->words);
    qof::IrExecutor exec(&program, &f.built->regions, &f.built->words,
                         &f.corpus);
    auto r = exec.EvaluateRoot(program.candidates);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: IR evaluation failed\n");
      std::exit(1);
    }
    ir_out = std::move(*r);
  });

  if (!(tree_out == ir_out)) {
    std::fprintf(stderr, "FATAL: fused chain answers differ\n");
    std::exit(1);
  }
  double speedup = ir_us > 0 ? tree_us / ir_us : 0;
  std::printf("%-14s %14.1f %14.1f %8.1fx\n", "chain", tree_us, ir_us,
              speedup);
  emitter->Row("fused", "chain", "tree_micros", tree_us);
  emitter->Row("fused", "chain", "ir_micros", ir_us);
  emitter->Row("fused", "chain", "speedup", speedup);
}

/// A synthetic join corpus: `n` candidate blocks, each holding `k`
/// attribute spans per side. Keys are 24 characters (past the SSO cap,
/// so the nested loop's per-attribute std::string really allocates),
/// with the distinguishing bytes up front as real identifiers have.
/// Sides use disjoint key alphabets except in every 8th candidate, where
/// one shared key is planted — rare matches are the nested loop's worst
/// case, since a miss makes it group and probe both full sides.
struct JoinFixture {
  Corpus corpus;
  RegionSet candidates;
  RegionSet lhs;
  RegionSet rhs;

  JoinFixture(size_t n, size_t k) {
    std::string text;
    std::vector<Region> cand, left, right;
    char key[48];
    for (size_t c = 0; c < n; ++c) {
      size_t block_start = text.size();
      auto emit = [&](const char* side, size_t i,
                      std::vector<Region>* out) {
        std::snprintf(key, sizeof(key), "%zx-%s", i, side);
        size_t start = text.size();
        text += key;
        while (text.size() - start < 24) text += 'z';
        out->push_back({start, text.size()});
        text += " ";
      };
      for (size_t i = 0; i < k; ++i) emit("left", i, &left);
      for (size_t i = 0; i < k; ++i) {
        if (c % 8 == 0 && i == k / 2) {
          emit("left", 0, &right);  // the planted shared key
        } else {
          emit("right", i, &right);
        }
      }
      text += "|";
      cand.push_back({block_start, text.size()});
    }
    if (!corpus.AddDocument("join.txt", text).ok()) {
      std::fprintf(stderr, "join fixture setup failed\n");
      std::abort();
    }
    candidates = RegionSet::FromUnsorted(std::move(cand));
    lhs = RegionSet::FromUnsorted(std::move(left));
    rhs = RegionSet::FromUnsorted(std::move(right));
  }
};

void BenchJoinScaling(qof_bench::JsonEmitter* emitter) {
  constexpr size_t kCandidates = 64;
  std::printf("\njoin: nested-loop vs sort-merge (%zu candidates)\n",
              kCandidates);
  std::printf("%-14s %14s %14s %9s\n", "attrs/side", "nested_us",
              "sortmerge_us", "speedup");
  for (size_t k : {size_t{4}, size_t{16}, size_t{64}, size_t{256},
                   size_t{1024}}) {
    JoinFixture f(kCandidates, k);
    const int runs = k >= 256 ? 7 : 25;
    std::vector<Region> nested_out, merged_out;
    double nested_us = qof_bench::MedianMicros(runs, [&] {
      auto r = qof::RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                                 qof::JoinAlgorithm::kNestedLoop);
      if (!r.ok()) std::abort();
      nested_out = std::move(*r);
    });
    double merged_us = qof_bench::MedianMicros(runs, [&] {
      auto r = qof::RunIndexJoin(f.corpus, f.candidates, f.lhs, f.rhs,
                                 qof::JoinAlgorithm::kSortMerge);
      if (!r.ok()) std::abort();
      merged_out = std::move(*r);
    });
    if (nested_out != merged_out || nested_out.empty()) {
      std::fprintf(stderr, "FATAL: join results differ at k=%zu\n", k);
      std::exit(1);
    }
    double speedup = merged_us > 0 ? nested_us / merged_us : 0;
    std::string config = "k=" + std::to_string(k);
    std::printf("%-14s %14.1f %14.1f %8.1fx\n", config.c_str(),
                nested_us, merged_us, speedup);
    emitter->Row("join", config, "nested_micros", nested_us);
    emitter->Row("join", config, "sortmerge_micros", merged_us);
    emitter->Row("join", config, "speedup", speedup);
  }
}

/// The CSE multi-leg shape over the grammar-model bench corpus, whose
/// size scales deterministically from a seed (`--grammar-mb 100` and up
/// regenerates the identical 100 MB+ Zipf-skewed corpus on every
/// machine — nothing checked in). The shared subtree probes the rare
/// planted word; the three branch selections probe the Zipf-hot head of
/// the vocabulary, so both skewed and selective postings are in play.
void BenchGrammarScale(qof_bench::JsonEmitter* emitter, size_t mb) {
  qof::BenchCorpusSpec spec;
  spec.seed = 7;
  spec.target_bytes = mb << 20;
  spec.zipf_s = 1.1;
  qof::BenchCorpus bench = qof::MakeBenchCorpus(spec);
  auto schema = qof::ParseSchemaText(bench.schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "grammar bench schema parse failed\n");
    std::abort();
  }
  Fixture f;
  for (const auto& [name, text] : bench.docs) {
    if (!f.corpus.AddDocument(name, text).ok()) std::abort();
  }
  auto built = qof::BuildIndexes(*schema, f.corpus, qof::IndexSpec::Full());
  if (!built.ok()) {
    std::fprintf(stderr, "grammar bench index build failed\n");
    std::abort();
  }
  f.built = std::make_unique<BuiltIndexes>(std::move(*built));

  const std::string e = "(Obj > Beta > sigma(\"zulu\", ItemA))";
  const std::string cand = "(" + e + " & sigma(\"apple\", Alpha)) | (" +
                           e + " & sigma(\"baker\", Alpha)) | (" + e +
                           " & sigma(\"cedar\", Alpha))";
  const std::string proj = "ItemA < " + e;
  qof::RegionExprPtr cand_expr = Parse(cand);
  qof::RegionExprPtr proj_expr = Parse(proj);

  std::printf(
      "\ngrammar scale: multi-leg CSE query (seed %u, zipf %.2f, "
      "%zu docs, %.1f MiB)\n",
      spec.seed, spec.zipf_s, bench.docs.size(),
      bench.total_bytes / (1024.0 * 1024.0));
  std::printf("%-14s %14s %14s %9s\n", "config", "tree_us", "ir_us",
              "speedup");

  const int runs = mb >= 32 ? 5 : 15;
  RegionSet tree_cand, tree_proj;
  double tree_us = qof_bench::MedianMicros(runs, [&] {
    qof::ExprEvaluator tree(&f.built->regions, &f.built->words,
                            &f.corpus);
    auto c = tree.Evaluate(*cand_expr);
    auto p = tree.Evaluate(*proj_expr);
    if (!c.ok() || !p.ok()) {
      std::fprintf(stderr, "FATAL: tree evaluation failed\n");
      std::exit(1);
    }
    tree_cand = std::move(*c);
    tree_proj = IncludedIn(*p, tree_cand);
  });

  RegionSet ir_cand, ir_proj;
  double ir_us = qof_bench::MedianMicros(runs, [&] {
    qof::IrProgram program = qof::LowerToIr(
        cand_expr.get(), proj_expr.get(), nullptr, nullptr);
    qof::RunPasses(&program, qof::IrPlanOptions{}, &f.built->regions,
                   &f.built->words);
    qof::IrExecutor exec(&program, &f.built->regions, &f.built->words,
                         &f.corpus);
    auto c = exec.EvaluateRoot(program.candidates);
    auto p = exec.EvaluateRoot(program.project);
    if (!c.ok() || !p.ok()) {
      std::fprintf(stderr, "FATAL: IR evaluation failed\n");
      std::exit(1);
    }
    ir_cand = std::move(*c);
    ir_proj = std::move(*p);
  });

  if (!(tree_cand == ir_cand)) {
    std::fprintf(stderr, "FATAL: grammar-scale answers differ\n");
    std::exit(1);
  }
  double speedup = ir_us > 0 ? tree_us / ir_us : 0;
  std::string config = "grammar" + std::to_string(mb) + "mb";
  std::printf("%-14s %14.1f %14.1f %8.1fx\n", config.c_str(), tree_us,
              ir_us, speedup);
  emitter->Row("grammar_scale", config, "corpus_bytes",
               static_cast<double>(bench.total_bytes));
  emitter->Row("grammar_scale", config, "docs",
               static_cast<double>(bench.docs.size()));
  emitter->Row("grammar_scale", config, "tree_micros", tree_us);
  emitter->Row("grammar_scale", config, "ir_micros", ir_us);
  emitter->Row("grammar_scale", config, "speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = qof_bench::ExtractJsonArg(&argc, argv);
  if (json_path.empty()) json_path = "BENCH_ir.json";
  size_t grammar_mb = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--grammar-mb") {
      grammar_mb = static_cast<size_t>(std::atoll(argv[i + 1]));
    }
  }
  qof_bench::JsonEmitter emitter(json_path);
  BenchCseMultiLeg(&emitter);
  BenchFusedChain(&emitter);
  BenchJoinScaling(&emitter);
  BenchGrammarScale(&emitter, grammar_mb);
  emitter.Flush();
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
