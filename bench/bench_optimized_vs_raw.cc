// Experiment E2 (§3.2): the unoptimized expression e1 (three ⊃d) against
// the optimizer's e2 (two ⊃) — the paper's claim that e2 "can be
// evaluated more efficiently ... fewer operations, and 3 instead of the
// more computationally expensive ⊃d". Also measures the projection chain
// of §5.2 and the cost of running the optimizer itself.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr const char* kRawE1 =
    "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)";
constexpr const char* kOptE2 =
    "Reference > Authors > sigma(\"Chang\", Last_Name)";
constexpr const char* kRawProjection =
    "Last_Name << Name << Authors << Reference";
constexpr const char* kOptProjection =
    "Last_Name < Authors < Reference";

void RunExpr(benchmark::State& state, const char* text,
             qof::DirectAlgorithm algo) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  auto expr = qof::ParseRegionExpr(text);
  if (!expr.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  qof::ExprEvaluator evaluator(&system.region_index(),
                               &system.word_index(), &system.corpus(),
                               algo);
  qof::EvalStats stats;
  size_t results = 0;
  for (auto _ : state) {
    stats = qof::EvalStats();
    auto set = evaluator.Evaluate(**expr, &stats);
    if (!set.ok()) state.SkipWithError("evaluation failed");
    results = set->size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["direct_ops"] = static_cast<double>(stats.direct_incl_ops);
  state.counters["simple_ops"] =
      static_cast<double>(stats.simple_incl_ops);
  state.counters["regions_touched"] =
      static_cast<double>(stats.regions_produced);
}

void BM_RawChain(benchmark::State& state) {
  RunExpr(state, kRawE1, qof::DirectAlgorithm::kFast);
}

void BM_RawChainLayeredDirect(benchmark::State& state) {
  // The paper's own ⊃d program (§3.1) — what PAT would actually execute.
  RunExpr(state, kRawE1, qof::DirectAlgorithm::kLayered);
}

void BM_OptimizedChain(benchmark::State& state) {
  RunExpr(state, kOptE2, qof::DirectAlgorithm::kFast);
}

void BM_RawProjectionChain(benchmark::State& state) {
  RunExpr(state, kRawProjection, qof::DirectAlgorithm::kFast);
}

void BM_OptimizedProjectionChain(benchmark::State& state) {
  RunExpr(state, kOptProjection, qof::DirectAlgorithm::kFast);
}

// The optimizer itself must be cheap relative to evaluation.
void BM_OptimizerOverhead(benchmark::State& state) {
  auto schema = qof::BibtexSchema();
  qof::Rig rig = qof::DeriveFullRig(*schema);
  qof::ChainOptimizer optimizer(&rig);
  auto expr = qof::ParseRegionExpr(kRawE1);
  auto chain = qof::InclusionChain::FromExpr(**expr);
  for (auto _ : state) {
    auto outcome = optimizer.Optimize(*chain);
    benchmark::DoNotOptimize(outcome.ok());
  }
}

}  // namespace

BENCHMARK(BM_RawChain)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RawChainLayeredDirect)->Arg(1000)->Arg(10000);
BENCHMARK(BM_OptimizedChain)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RawProjectionChain)->Arg(1000)->Arg(10000);
BENCHMARK(BM_OptimizedProjectionChain)->Arg(1000)->Arg(10000);
BENCHMARK(BM_OptimizerOverhead);

BENCHMARK_MAIN();
