#ifndef QOF_BENCH_BENCH_UTIL_H_
#define QOF_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment drivers and benchmarks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qof/core/api.h"

namespace qof_bench {

/// A cached, fully-initialized BibTeX query system for a given corpus
/// size (building large corpora repeatedly would dominate benchmark
/// setup).
inline qof::FileQuerySystem& BibtexSystem(int num_references,
                                          const qof::IndexSpec& spec,
                                          const std::string& spec_key) {
  static std::map<std::string, std::unique_ptr<qof::FileQuerySystem>>
      cache;
  std::string key = std::to_string(num_references) + "/" + spec_key;
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  qof::BibtexGenOptions gen;
  gen.num_references = num_references;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  auto schema = qof::BibtexSchema();
  auto system = std::make_unique<qof::FileQuerySystem>(*schema);
  if (!system->AddFile("bench.bib", qof::GenerateBibtex(gen)).ok() ||
      !system->BuildIndexes(spec).ok()) {
    std::fprintf(stderr, "bench fixture setup failed\n");
    std::abort();
  }
  auto [pos, inserted] = cache.emplace(key, std::move(system));
  (void)inserted;
  return *pos->second;
}

/// Median wall time of `fn` over `runs` executions, in microseconds.
inline double MedianMicros(int runs, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace qof_bench

#endif  // QOF_BENCH_BENCH_UTIL_H_
