#ifndef QOF_BENCH_BENCH_UTIL_H_
#define QOF_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment drivers and benchmarks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qof/core/api.h"

namespace qof_bench {

/// A cached, fully-initialized BibTeX query system for a given corpus
/// size (building large corpora repeatedly would dominate benchmark
/// setup).
inline qof::FileQuerySystem& BibtexSystem(int num_references,
                                          const qof::IndexSpec& spec,
                                          const std::string& spec_key) {
  static std::map<std::string, std::unique_ptr<qof::FileQuerySystem>>
      cache;
  std::string key = std::to_string(num_references) + "/" + spec_key;
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  qof::BibtexGenOptions gen;
  gen.num_references = num_references;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  auto schema = qof::BibtexSchema();
  auto system = std::make_unique<qof::FileQuerySystem>(*schema);
  if (!system->AddFile("bench.bib", qof::GenerateBibtex(gen)).ok() ||
      !system->BuildIndexes(spec).ok()) {
    std::fprintf(stderr, "bench fixture setup failed\n");
    std::abort();
  }
  auto [pos, inserted] = cache.emplace(key, std::move(system));
  (void)inserted;
  return *pos->second;
}

/// Collects benchmark measurements and writes them as a JSON array of
/// flat rows — `[{"bench": ..., "config": ..., "metric": ..., "value":
/// ...}, ...]` — the machine-readable format the CI bench-smoke gate and
/// the plotting scripts consume (see DESIGN.md "Benchmark JSON output").
/// Values in the string fields must not need JSON escaping (the drivers
/// only use identifier-like names).
class JsonEmitter {
 public:
  /// An empty path disables emission (rows are dropped).
  explicit JsonEmitter(std::string path) : path_(std::move(path)) {}
  ~JsonEmitter() { Flush(); }

  void Row(const std::string& bench, const std::string& config,
           const std::string& metric, double value) {
    rows_.push_back(RowData{bench, config, metric, value});
  }

  void Flush() {
    if (path_.empty() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const RowData& r = rows_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"metric\": \"%s\", \"value\": %.3f}%s\n",
                   r.bench.c_str(), r.config.c_str(), r.metric.c_str(),
                   r.value, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

 private:
  struct RowData {
    std::string bench, config, metric;
    double value;
  };
  std::string path_;
  std::vector<RowData> rows_;
};

/// Extracts a `--json <path>` (or `--json=<path>`) argument from argv,
/// removing it so downstream flag parsing (google-benchmark's
/// Initialize) never sees it. Returns the path, or "" when absent.
inline std::string ExtractJsonArg(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return path;
}

/// Median wall time of `fn` over `runs` executions, in microseconds.
inline double MedianMicros(int runs, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace qof_bench

#endif  // QOF_BENCH_BENCH_UTIL_H_
