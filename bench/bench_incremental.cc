// Incremental maintenance vs full rebuild (src/qof/maintain/): the cost
// of keeping indexes live under document-level mutations. A single-file
// update should re-parse only that file — its latency must track the
// document size, not the corpus size — while a from-scratch BuildIndexes
// pays for the whole corpus every time. Compaction (the deferred cost
// incremental mutation accrues) is timed separately.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

constexpr int kRefsPerDoc = 20;

std::unique_ptr<qof::FileQuerySystem> MakeSystem(int num_docs) {
  auto schema = qof::BibtexSchema();
  auto system = std::make_unique<qof::FileQuerySystem>(*schema);
  for (int d = 0; d < num_docs; ++d) {
    qof::BibtexGenOptions gen;
    gen.num_references = kRefsPerDoc;
    gen.seed = static_cast<uint32_t>(d + 1);
    if (!system->AddFile("doc" + std::to_string(d) + ".bib",
                         qof::GenerateBibtex(gen))
             .ok()) {
      std::fprintf(stderr, "bench fixture setup failed\n");
      std::abort();
    }
  }
  return system;
}

void Row(int refs) {
  int num_docs = refs / kRefsPerDoc;
  auto system = MakeSystem(num_docs);
  system->SetParallelism(1);

  double build_us = qof_bench::MedianMicros(3, [&] {
    if (!system->BuildIndexes(qof::IndexSpec::Full()).ok()) std::abort();
  });
  uint64_t corpus_bytes = system->corpus().size();

  qof::BibtexGenOptions gen;
  gen.num_references = kRefsPerDoc;
  gen.seed = 0x5eedu;
  std::string replacement = qof::GenerateBibtex(gen);

  qof::MaintainStats before = system->maintain_stats();
  const int kRuns = 9;
  double update_us = qof_bench::MedianMicros(kRuns, [&] {
    if (!system->UpdateFile("doc0.bib", replacement).ok()) std::abort();
  });
  qof::MaintainStats after = system->maintain_stats();
  uint64_t reparsed_per_update =
      (after.bytes_reparsed - before.bytes_reparsed) /
      (after.generation - before.generation);

  double compact_us = qof_bench::MedianMicros(1, [&] {
    if (!system->CompactIndexes().ok()) std::abort();
  });

  std::printf(
      "%8d %6d  %11.0f us %11.0f us %8.1fx %10llu B (%5.2f%%) %11.0f us\n",
      refs, num_docs, build_us, update_us, build_us / update_us,
      static_cast<unsigned long long>(reparsed_per_update),
      100.0 * static_cast<double>(reparsed_per_update) /
          static_cast<double>(corpus_bytes),
      compact_us);
}

}  // namespace

int main() {
  std::printf(
      "incremental maintenance: single-document update vs full rebuild\n"
      "(one mutation re-parses one %d-reference document; the rebuild\n"
      "re-parses everything)\n\n",
      kRefsPerDoc);
  std::printf("%8s %6s  %14s %14s %9s %21s %14s\n", "refs", "docs",
              "full build", "1-doc update", "speedup",
              "reparsed/update (corpus)", "compact");
  for (int refs : {1000, 5000, 20000}) Row(refs);
  return 0;
}
