// Experiments E4 + E5 (§6): the efficiency-vs-indexing-amount tradeoff.
//
// Table 1 — the flagship query under progressively smaller index sets:
//   index bytes, plan kind, exactness, candidates, bytes parsed, time.
// Table 2 — candidate-superset growth: as more references mention the
//   probe name as an *editor*, the §6.1 partial index produces more false
//   candidates (and the two-phase plan parses more), while the exact
//   index set is unaffected.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";

struct SpecCase {
  const char* label;
  qof::IndexSpec spec;
};

void Table1(int num_references) {
  qof::BibtexGenOptions gen;
  gen.num_references = num_references;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  std::string text = qof::GenerateBibtex(gen);
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  (void)system.AddFile("t1.bib", text);

  std::vector<SpecCase> cases = {
      {"full (every non-terminal)      ", qof::IndexSpec::Full()},
      {"{Ref, Authors, Editors, Name, Last_Name}",
       qof::IndexSpec::Partial(
           {"Reference", "Authors", "Editors", "Name", "Last_Name"})},
      {"{Ref, Authors, Last_Name}  (6.3 exact)",
       qof::IndexSpec::Partial({"Reference", "Authors", "Last_Name"})},
      {"{Ref, Key, Last_Name}      (6.1 superset)",
       qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"})},
      {"{Ref}                      (word index only)",
       qof::IndexSpec::Partial({"Reference"})},
  };

  std::printf(
      "Table 1 — flagship query, %d references (%zu bytes corpus)\n",
      num_references, text.size());
  std::printf(
      "%-45s %12s %-11s %6s %10s %12s %10s %9s\n", "index set",
      "index bytes", "strategy", "exact", "candidates", "bytes parsed",
      "results", "time(us)");
  for (SpecCase& c : cases) {
    if (!system.BuildIndexes(c.spec).ok()) continue;
    auto result = system.Execute(kFlagship);
    if (!result.ok()) {
      std::printf("%-45s query failed: %s\n", c.label,
                  result.status().ToString().c_str());
      continue;
    }
    double median = qof_bench::MedianMicros(
        9, [&] { (void)system.Execute(kFlagship); });
    std::printf("%-45s %12llu %-11s %6s %10llu %12llu %10llu %9.0f\n",
                c.label,
                static_cast<unsigned long long>(system.IndexBytes()),
                result->stats.strategy.c_str(),
                result->stats.exact ? "yes" : "no",
                static_cast<unsigned long long>(result->stats.candidates),
                static_cast<unsigned long long>(
                    result->stats.bytes_scanned),
                static_cast<unsigned long long>(result->stats.results),
                median);
  }
  // The standard database comparator.
  auto base = system.Execute(kFlagship, qof::ExecutionMode::kBaseline);
  if (base.ok()) {
    double median = qof_bench::MedianMicros(5, [&] {
      (void)system.Execute(kFlagship, qof::ExecutionMode::kBaseline);
    });
    std::printf("%-45s %12s %-11s %6s %10s %12llu %10llu %9.0f\n",
                "(baseline: full scan + parse + load)", "-", "baseline",
                "yes", "-",
                static_cast<unsigned long long>(base->stats.bytes_scanned),
                static_cast<unsigned long long>(base->stats.results),
                median);
  }
  std::printf("\n");
}

void Table2(int num_references) {
  std::printf(
      "Table 2 — candidate superset vs. editor-collision rate "
      "(%d references, index {Reference, Key, Last_Name})\n",
      num_references);
  std::printf("%-14s %10s %12s %10s %14s\n", "editor-rate", "candidates",
              "false cands", "results", "bytes parsed");
  for (double editor_rate : {0.0, 0.05, 0.15, 0.30, 0.60}) {
    qof::BibtexGenOptions gen;
    gen.num_references = num_references;
    gen.probe_author_rate = 0.05;
    gen.probe_editor_rate = editor_rate;
    auto schema = qof::BibtexSchema();
    qof::FileQuerySystem system(*schema);
    (void)system.AddFile("t2.bib", qof::GenerateBibtex(gen));
    if (!system
             .BuildIndexes(qof::IndexSpec::Partial(
                 {"Reference", "Key", "Last_Name"}))
             .ok()) {
      continue;
    }
    auto result = system.Execute(kFlagship);
    if (!result.ok()) continue;
    std::printf("%-14.2f %10llu %12llu %10llu %14llu\n", editor_rate,
                static_cast<unsigned long long>(result->stats.candidates),
                static_cast<unsigned long long>(result->stats.candidates -
                                                result->stats.results),
                static_cast<unsigned long long>(result->stats.results),
                static_cast<unsigned long long>(
                    result->stats.bytes_scanned));
  }
  std::printf("\n");
}

void ExactnessDemo() {
  std::printf(
      "E5 — §6.3 exactness: plan kind as a function of the index set\n");
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  qof::BibtexGenOptions gen;
  gen.num_references = 500;
  (void)system.AddFile("t3.bib", qof::GenerateBibtex(gen));
  struct Case {
    const char* label;
    qof::IndexSpec spec;
  } cases[] = {
      {"{Ref, Key, Last_Name}: two derivations share the link",
       qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"})},
      {"{Ref, Authors, Last_Name}: unique derivations per link",
       qof::IndexSpec::Partial({"Reference", "Authors", "Last_Name"})},
      {"{Ref, Name, Last_Name}: editors still conflated",
       qof::IndexSpec::Partial({"Reference", "Name", "Last_Name"})},
  };
  for (auto& c : cases) {
    if (!system.BuildIndexes(c.spec).ok()) continue;
    auto plan = system.Plan(kFlagship);
    if (!plan.ok()) continue;
    std::printf("  %-55s -> %s\n", c.label,
                plan->exact ? "EXACT (no parsing needed)"
                            : "superset (two-phase)");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Table1(5000);
  Table2(5000);
  ExactnessDemo();
  return 0;
}
