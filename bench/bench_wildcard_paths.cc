// Experiment E8 (§5.3): in OODBs, wildcard paths (*X) are *more*
// expensive than concrete paths (the system traverses every route); on
// indexed files they are *cheaper*, because one plain ⊃ replaces chains
// of the dearer ⊃d. Compare the wildcard query against the equivalent
// union of concrete paths, on the index and on the baseline.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr const char* kWildcard =
    "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"";
// The same result as an explicit union of the two concrete derivations.
constexpr const char* kConcreteUnion =
    "SELECT r FROM References r WHERE "
    "r.Authors.Name.Last_Name = \"Chang\" OR "
    "r.Editors.Name.Last_Name = \"Chang\"";

void Run(benchmark::State& state, const char* fql,
         qof::ExecutionMode mode) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(fql, mode);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  state.counters["results"] = static_cast<double>(last.stats.results);
  state.counters["algebra_ops"] =
      static_cast<double>(last.stats.algebra.total_ops());
}

void BM_WildcardIndex(benchmark::State& state) {
  Run(state, kWildcard, qof::ExecutionMode::kAuto);
}

void BM_ConcreteUnionIndex(benchmark::State& state) {
  Run(state, kConcreteUnion, qof::ExecutionMode::kAuto);
}

void BM_WildcardBaseline(benchmark::State& state) {
  // The OODB way: traverse all attribute routes of every object.
  Run(state, kWildcard, qof::ExecutionMode::kBaseline);
}

void BM_ConcreteUnionBaseline(benchmark::State& state) {
  Run(state, kConcreteUnion, qof::ExecutionMode::kBaseline);
}

}  // namespace

BENCHMARK(BM_WildcardIndex)->Arg(1000)->Arg(10000);
BENCHMARK(BM_ConcreteUnionIndex)->Arg(1000)->Arg(10000);
BENCHMARK(BM_WildcardBaseline)->Arg(1000);
BENCHMARK(BM_ConcreteUnionBaseline)->Arg(1000);

BENCHMARK_MAIN();
