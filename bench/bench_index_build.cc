// The cost side of the indexing tradeoff (§6–§7): index construction time
// and footprint across corpus sizes and index specs. The paper trades
// query speed against "the amount of data being indexed"; this driver
// quantifies the amount.

#include <cstdio>
#include <string>

#include "bench_util.h"

namespace {

void Row(const char* label, const qof::IndexSpec& spec, int refs) {
  qof::BibtexGenOptions gen;
  gen.num_references = refs;
  std::string text = qof::GenerateBibtex(gen);
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  (void)system.AddFile("b.bib", text);
  if (!system.BuildIndexes(spec).ok()) return;
  auto blob = system.ExportIndexes();
  std::printf("%8d  %-34s %9llu us %11llu B (%4.1f%% of corpus) "
              "%9zu B serialized, %llu region entries\n",
              refs, label,
              static_cast<unsigned long long>(system.index_build_micros()),
              static_cast<unsigned long long>(system.IndexBytes()),
              100.0 * static_cast<double>(system.IndexBytes()) /
                  static_cast<double>(text.size()),
              blob.ok() ? blob->size() : 0,
              static_cast<unsigned long long>(
                  system.region_index().num_regions()));
}

}  // namespace

int main() {
  std::printf("index construction cost (build once, query many)\n\n");
  std::printf("%8s  %-34s %12s %14s %22s\n", "refs", "spec", "build",
              "memory", "serialized");
  for (int refs : {1000, 5000, 20000}) {
    Row("full", qof::IndexSpec::Full(), refs);
    Row("partial {Ref, Authors, Last_Name}",
        qof::IndexSpec::Partial({"Reference", "Authors", "Last_Name"}),
        refs);
    Row("partial {Ref, Key, Last_Name}",
        qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"}), refs);
    std::printf("\n");
  }
  return 0;
}
