// Figure reproductions F1–F4:
//   F1 — the Figure 1 sample BibTeX reference (generator output);
//   F2 — the Figure 2 parse tree under full indexing (symbols + spans);
//   F3 — the Figure 3 indexed-region forest under the §6.1 partial index
//        {Reference, Key, Last_Name};
//   F4 — the §3.2 / §6.1 RIG diagrams, full and partial, as GraphViz DOT.

#include <cstdio>
#include <string>

#include "qof/core/api.h"
#include "qof/parse/parser.h"
#include "qof/parse/region_extractor.h"

namespace {

// One Figure-1-shaped entry.
std::string SampleEntry() {
  qof::BibtexGenOptions gen;
  gen.num_references = 1;
  gen.seed = 82;  // a seed whose first entry has 2 authors + 2 editors
  return qof::GenerateBibtex(gen);
}

void Figure1(const std::string& text) {
  std::printf("=== F1: sample reference (paper Figure 1) ===\n%s\n",
              text.c_str());
}

void Figure2(const qof::StructuringSchema& schema,
             const std::string& text) {
  std::printf("=== F2: parse tree, full indexing (paper Figure 2) ===\n");
  qof::SchemaParser parser(&schema);
  auto tree = parser.ParseDocument(text, 0);
  if (!tree.ok()) {
    std::printf("parse error: %s\n", tree.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", qof::ParseTreeToString(schema, **tree).c_str());
}

void Figure3(const qof::StructuringSchema& schema,
             const std::string& text) {
  std::printf(
      "=== F3: indexed regions under partial index {Reference, Key, "
      "Last_Name} (paper Figure 3) ===\n");
  qof::SchemaParser parser(&schema);
  auto tree = parser.ParseDocument(text, 0);
  if (!tree.ok()) return;
  qof::RegionIndex index;
  qof::ExtractRegions(
      schema, **tree,
      qof::ExtractionFilter::Partial({"Reference", "Key", "Last_Name"}),
      &index);
  for (const std::string& name : index.Names()) {
    auto set = index.Get(name);
    if (!set.ok()) continue;
    std::printf("%-10s", name.c_str());
    for (const qof::Region& r : **set) {
      std::printf(" %s", r.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nnote: author and editor Last_Name regions are indistinguishable\n"
      "here — exactly the ambiguity §6.1 describes.\n\n");
}

void Figure4(const qof::StructuringSchema& schema) {
  qof::Rig full = qof::DeriveFullRig(schema);
  std::printf("=== F4a: full RIG (paper §3.2 diagram), DOT ===\n%s\n",
              full.ToDot("BibTeX_RIG").c_str());
  qof::Rig partial = qof::DerivePartialRig(
      full, {"Reference", "Key", "Last_Name"});
  std::printf("=== F4b: partial RIG for {Reference, Key, Last_Name} "
              "(paper §6.1 diagram), DOT ===\n%s\n",
              partial.ToDot("Partial_RIG").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "all";
  auto schema = qof::BibtexSchema();
  if (!schema.ok()) return 1;
  std::string text = SampleEntry();
  if (which == "all" || which == "--figure=1") Figure1(text);
  if (which == "all" || which == "--figure=2") Figure2(*schema, text);
  if (which == "all" || which == "--figure=3") Figure3(*schema, text);
  if (which == "all" || which == "--figure=rig") Figure4(*schema);
  return 0;
}
