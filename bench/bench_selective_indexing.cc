// Experiment E7 (§7/§2): selective (contextual) indexing. "Assume that
// users often query names of authors, but never names of editors. In
// that case, instead of indexing all the Name regions it is better to
// index only those that reside in some Authors region." Measures index
// size and query behaviour with and without the restriction.

#include <cstdio>
#include <string>

#include "bench_util.h"

namespace {

constexpr const char* kAuthorQuery =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";
constexpr const char* kEditorQuery =
    "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "
    "\"Chang\"";

void Report(qof::FileQuerySystem& system, const char* label) {
  std::printf("%-34s index=%9llu bytes, regions=%llu\n", label,
              static_cast<unsigned long long>(system.IndexBytes()),
              static_cast<unsigned long long>(
                  system.region_index().num_regions()));
  for (const char* fql : {kAuthorQuery, kEditorQuery}) {
    auto result = system.Execute(fql);
    if (!result.ok()) {
      std::printf("    %-10s error: %s\n",
                  fql == kAuthorQuery ? "authors:" : "editors:",
                  result.status().ToString().c_str());
      continue;
    }
    double median =
        qof_bench::MedianMicros(9, [&] { (void)system.Execute(fql); });
    std::printf(
        "    %-10s strategy=%-10s results=%-5llu bytes_parsed=%-8llu "
        "time=%.0fus\n",
        fql == kAuthorQuery ? "authors:" : "editors:",
        result->stats.strategy.c_str(),
        static_cast<unsigned long long>(result->stats.results),
        static_cast<unsigned long long>(result->stats.bytes_scanned),
        median);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  qof::BibtexGenOptions gen;
  gen.num_references = 5000;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  (void)system.AddFile("sel.bib", qof::GenerateBibtex(gen));
  std::printf("E7 — selective indexing, %d references\n\n",
              gen.num_references);

  // All Name regions indexed (author- and editor-side).
  if (system
          .BuildIndexes(qof::IndexSpec::Partial(
              {"Reference", "Authors", "Editors", "Name", "Last_Name"}))
          .ok()) {
    Report(system, "names indexed everywhere:");
  }

  // §7: Name/Last_Name only within Authors regions.
  qof::IndexSpec selective = qof::IndexSpec::Partial(
      {"Reference", "Authors", "Name", "Last_Name"});
  selective.within["Name"] = "Authors";
  selective.within["Last_Name"] = "Authors";
  if (system.BuildIndexes(selective).ok()) {
    Report(system, "names indexed within Authors only:");
    std::printf(
        "note: the editor query above still answers correctly — the\n"
        "      compiler treats editor-side Name regions as unindexed\n"
        "      derivations and the engine verifies candidates by "
        "parsing.\n");
  }
  return 0;
}
