// Experiment E6 (§7): the index-selection guidelines, mechanized. For a
// query workload, compare: full indexing, the advisor's minimal set, and
// naive under-indexing — on index size, plan exactness, and query time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> kQueries = {
      "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
      "\"Chang\"",
      "SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "
      "\"Corliss\"",
      "SELECT r FROM References r WHERE r.Year = \"1982\"",
  };
  return kQueries;
}

void Evaluate(qof::FileQuerySystem& system, const char* label) {
  std::printf("%-36s index=%9llu bytes, region-sets=%llu\n", label,
              static_cast<unsigned long long>(system.IndexBytes()),
              static_cast<unsigned long long>(
                  system.region_index().num_names()));
  for (const std::string& fql : Workload()) {
    auto result = system.Execute(fql);
    if (!result.ok()) {
      std::printf("    error: %s\n", result.status().ToString().c_str());
      continue;
    }
    double median =
        qof_bench::MedianMicros(9, [&] { (void)system.Execute(fql); });
    std::printf("    %-9s exact=%-3s bytes_parsed=%-8llu time=%6.0fus  "
                "(%llu results)\n",
                result->stats.strategy.c_str(),
                result->stats.exact ? "yes" : "no",
                static_cast<unsigned long long>(
                    result->stats.bytes_scanned),
                median,
                static_cast<unsigned long long>(result->stats.results));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  qof::BibtexGenOptions gen;
  gen.num_references = 5000;
  auto schema = qof::BibtexSchema();
  qof::FileQuerySystem system(*schema);
  (void)system.AddFile("adv.bib", qof::GenerateBibtex(gen));
  std::printf("E6 — §7 index advisor, %d references, workload of %zu "
              "queries\n\n",
              gen.num_references, Workload().size());

  // The advisor consumes the FQL workload directly.
  std::vector<qof::SelectQuery> queries;
  for (const std::string& fql : Workload()) {
    auto query = qof::ParseFql(fql);
    if (!query.ok()) return 1;
    queries.push_back(*query);
  }
  qof::Rig rig = qof::DeriveFullRig(*schema);
  auto advice = qof::AdviseIndexesForQueries(rig, "Reference", queries);
  if (!advice.ok()) return 1;
  std::printf("advisor picked:");
  for (const std::string& name : advice->names) {
    std::printf(" %s", name.c_str());
  }
  std::printf("  (%zu of %zu indexable names)\n\n", advice->names.size(),
              schema->IndexableNames().size());

  if (system.BuildIndexes(qof::IndexSpec::Full()).ok()) {
    Evaluate(system, "full indexing:");
  }
  if (system.BuildIndexes(qof::IndexSpec::Partial(advice->names)).ok()) {
    Evaluate(system, "advisor's set:");
  }
  if (system
          .BuildIndexes(
              qof::IndexSpec::Partial({"Reference", "Last_Name", "Year"}))
          .ok()) {
    Evaluate(system, "naive under-indexing:");
  }
  return 0;
}
