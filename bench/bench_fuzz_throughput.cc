// Throughput of the differential fuzzing harness: cases generated and
// concretized per second, and full oracle iterations per second. The
// oracle dominates (it builds indexes and runs every plan kind), so
// these numbers bound how many cases a CI smoke budget buys.

#include <benchmark/benchmark.h>

#include "qof/fuzz/fuzzer.h"
#include "qof/fuzz/oracle.h"

namespace {

void BM_GenerateAndConcretize(benchmark::State& state) {
  qof::FuzzOptions options;
  options.seed = 42;
  int i = 0;
  for (auto _ : state) {
    qof::ConcreteCase c =
        qof::Concretize(qof::GenerateCase(options, i++));
    benchmark::DoNotOptimize(c.schema_text.data());
    benchmark::DoNotOptimize(c.fql.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateAndConcretize);

void BM_OracleIteration(benchmark::State& state) {
  qof::FuzzOptions options;
  options.seed = 42;
  options.invalid_fraction = 0.0;
  qof::OracleOptions oracle;
  oracle.workers = 2;
  oracle.max_chains = static_cast<size_t>(state.range(0));
  int i = 0;
  for (auto _ : state) {
    qof::ConcreteCase c =
        qof::Concretize(qof::GenerateCase(options, i++));
    auto outcome = qof::RunOracle(c, oracle, /*seed=*/i);
    if (!outcome.ok() || outcome->failed) {
      state.SkipWithError("oracle failure during benchmark");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleIteration)->Arg(20)->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
