// Experiment E1 (headline claim, §1/§8): queries evaluated via optimized
// index expressions vs. the standard database implementation (full scan +
// parse + load + filter), across corpus sizes. The paper claims
// "significantly faster"; the shape to observe is a roughly constant-time
// index plan against a linearly growing baseline.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";

void ReportStats(benchmark::State& state, const qof::QueryResult& result) {
  state.counters["results"] =
      static_cast<double>(result.stats.results);
  state.counters["candidates"] =
      static_cast<double>(result.stats.candidates);
  state.counters["bytes_scanned"] =
      static_cast<double>(result.stats.bytes_scanned);
  state.counters["corpus_bytes"] =
      static_cast<double>(result.stats.corpus_bytes);
}

void BM_IndexOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

void BM_TwoPhasePartialIndex(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // §6.1's partial index: locate candidates on the index, parse only them.
  qof::FileQuerySystem& system = qof_bench::BibtexSystem(
      n, qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"}),
      "partial-rkl");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

void BM_Baseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship, qof::ExecutionMode::kBaseline);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

}  // namespace

BENCHMARK(BM_IndexOnly)->Arg(200)->Arg(1000)->Arg(5000)->Arg(20000);
BENCHMARK(BM_TwoPhasePartialIndex)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000);
BENCHMARK(BM_Baseline)->Arg(200)->Arg(1000)->Arg(5000)->Arg(20000);

BENCHMARK_MAIN();
