// Experiment E1 (headline claim, §1/§8): queries evaluated via optimized
// index expressions vs. the standard database implementation (full scan +
// parse + load + filter), across corpus sizes. The paper claims
// "significantly faster"; the shape to observe is a roughly constant-time
// index plan against a linearly growing baseline.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr const char* kFlagship =
    "SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "
    "\"Chang\"";

void ReportStats(benchmark::State& state, const qof::QueryResult& result) {
  state.counters["results"] =
      static_cast<double>(result.stats.results);
  state.counters["candidates"] =
      static_cast<double>(result.stats.candidates);
  state.counters["bytes_scanned"] =
      static_cast<double>(result.stats.bytes_scanned);
  state.counters["corpus_bytes"] =
      static_cast<double>(result.stats.corpus_bytes);
}

void BM_IndexOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

void BM_TwoPhasePartialIndex(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // §6.1's partial index: locate candidates on the index, parse only them.
  qof::FileQuerySystem& system = qof_bench::BibtexSystem(
      n, qof::IndexSpec::Partial({"Reference", "Key", "Last_Name"}),
      "partial-rkl");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

void BM_Baseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qof::FileQuerySystem& system =
      qof_bench::BibtexSystem(n, qof::IndexSpec::Full(), "full");
  qof::QueryResult last;
  for (auto _ : state) {
    auto result = system.Execute(kFlagship, qof::ExecutionMode::kBaseline);
    if (!result.ok()) state.SkipWithError("query failed");
    last = std::move(*result);
    benchmark::DoNotOptimize(last.regions.size());
  }
  ReportStats(state, last);
}

}  // namespace

BENCHMARK(BM_IndexOnly)->Arg(200)->Arg(1000)->Arg(5000)->Arg(20000);
BENCHMARK(BM_TwoPhasePartialIndex)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000);
BENCHMARK(BM_Baseline)->Arg(200)->Arg(1000)->Arg(5000)->Arg(20000);

namespace {

/// Console output plus one JSON row per run: "BM_IndexOnly/5000" becomes
/// {"bench": "BM_IndexOnly", "config": "5000", "metric": "micros", ...}.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(qof_bench::JsonEmitter* emitter)
      : emitter_(emitter) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations <= 0) continue;
      std::string name = run.benchmark_name();
      size_t slash = name.find('/');
      std::string bench =
          slash == std::string::npos ? name : name.substr(0, slash);
      std::string config =
          slash == std::string::npos ? "" : name.substr(slash + 1);
      double micros = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e6;
      emitter_->Row(bench, config, "micros", micros);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  qof_bench::JsonEmitter* emitter_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = qof_bench::ExtractJsonArg(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  qof_bench::JsonEmitter emitter(json_path);
  JsonRowReporter reporter(&emitter);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
