#!/usr/bin/env python3
"""Scripted mixed-load smoke client for qof_serve.

Boots the server on a generated BibTeX corpus and drives 200+ scripted
commands through the line protocol: three sessions issuing cold and warm
queries, one of them mutating (ADD/UPDATE/REMOVE/COMPACT) while the
others hold their pinned generations, plus REFRESH/STATS/CANCEL traffic.

Gates (exit 1 on violation):
  - zero protocol errors: every scripted command must be answered OK
    (the script sends only valid commands);
  - warm-query p50 strictly below cold-query p50: repeat executions of
    the same FQL at the same generation must be served by the caches;
  - repeatable reads: a reader session's row count for a fixed query
    must not change while the writer mutates, until the reader REFRESHes.

Usage: server_smoke.py /path/to/qof_serve [--json OUT.json]
"""

import json
import statistics
import subprocess
import sys
import time


class ServeClient:
    """Synchronous driver: one command in flight at a time, so async
    QUERY responses cannot interleave with other sessions' lines."""

    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary, "--entries=40", "--seed=7", "--workers=2"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.commands_sent = 0
        self.protocol_errors = []
        ready = self.proc.stdout.readline()
        if not ready.startswith("READY"):
            raise RuntimeError(f"no READY banner, got: {ready!r}")

    def send(self, line, sid):
        """Sends one command; reads lines until the OK/ERR answering
        `sid` arrives. Returns (ok, detail, rows, seconds)."""
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()
        self.commands_sent += 1
        start = time.perf_counter()
        rows = []
        while True:
            response = self.proc.stdout.readline()
            if not response:
                raise RuntimeError(f"server EOF after: {line!r}")
            tag, rest = response.rstrip("\n").split(" ", 1)
            answered, _, detail = rest.partition(" ")
            if tag == "ROW" and answered == str(sid):
                rows.append(detail)
                continue
            if answered != str(sid):
                raise RuntimeError(
                    f"response for session {answered} while waiting on "
                    f"{sid}: {response!r}")
            elapsed = time.perf_counter() - start
            if tag == "ERR":
                self.protocol_errors.append(f"{line!r} -> {response!r}")
            return tag == "OK", detail, rows, elapsed

    def open_session(self):
        ok, detail, _, _ = self.send("OPEN", 0)
        assert ok, detail
        fields = dict(kv.split("=") for kv in detail.split(" "))
        return int(fields["session"])

    def quit(self):
        self.send("QUIT", 0)
        return self.proc.wait(timeout=30)


def scratch_doc(year):
    return (
        "@INCOLLECTION{Smoke" + str(year) + ",\\n"
        '  AUTHOR = "Wen Chang",\\n'
        '  TITLE = "Smoke Entry",\\n'
        '  BOOKTITLE = "Smoke Proceedings",\\n'
        '  YEAR = "' + str(year) + '",\\n'
        '  EDITOR = "Ed Itor",\\n'
        '  PUBLISHER = "Nowhere Press",\\n'
        '  ADDRESS = "Nowhere",\\n'
        '  PAGES = "1--2",\\n'
        '  REFERRED = "",\\n'
        '  KEYWORDS = "query",\\n'
        '  ABSTRACT = "smoke"\\n'
        "}\\n"
    )


def year_query(year):
    return f'SELECT r FROM References r WHERE r.Year = "{year}"'


PIN_FQL = 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    binary = sys.argv[1]
    json_out = None
    if "--json" in sys.argv[2:]:
        json_out = sys.argv[sys.argv.index("--json") + 1]

    client = ServeClient(binary)
    readers = [client.open_session(), client.open_session()]
    writer = client.open_session()
    sessions = readers + [writer]

    # Cold phase: 8 distinct parameterized queries per session, first
    # execution each — plan and eval caches miss.
    cold, warm = [], []
    plans = {
        sid: [year_query(1970 + 8 * i + k) for k in range(8)]
        for i, sid in enumerate(sessions)
    }
    for sid in sessions:
        for fql in plans[sid]:
            ok, _, _, secs = client.send(f"QUERY {sid} {fql}", sid)
            assert ok
            cold.append(secs)
    # Warm phase: the same queries at the same generations, four times
    # over — everything should come out of the caches.
    for _ in range(4):
        for sid in sessions:
            for fql in plans[sid]:
                ok, _, _, secs = client.send(f"QUERY {sid} {fql}", sid)
                assert ok
                warm.append(secs)

    # Mixed load: the writer mutates while the readers keep querying
    # their pinned generations; their row counts must not move until
    # they REFRESH.
    def row_count(sid):
        ok, _, rows, _ = client.send(f"QUERY {sid} {PIN_FQL}", sid)
        assert ok
        return len(rows)

    pinned = {sid: row_count(sid) for sid in readers}
    isolation_violations = 0
    for round_no in range(10):
        year = 2000 + round_no
        client.send(f"ADD {writer} scratch.bib {scratch_doc(year)}", writer)
        client.send(f"QUERY {writer} {PIN_FQL}", writer)
        for sid in readers:
            if row_count(sid) != pinned[sid]:
                isolation_violations += 1
        client.send(
            f"UPDATE {writer} scratch.bib {scratch_doc(year + 50)}", writer)
        client.send(f"REMOVE {writer} scratch.bib", writer)
        client.send(f"STATS {writer}", writer)
        if round_no % 4 == 3:
            client.send(f"COMPACT {writer}", writer)
        if round_no == 5:
            # One reader catches up; its new count becomes its pin.
            client.send(f"REFRESH {readers[0]}", readers[0])
            pinned[readers[0]] = row_count(readers[0])
    client.send(f"CANCEL {writer}", writer)
    for sid in sessions:
        client.send(f"STATS {sid}", sid)
        client.send(f"CLOSE {sid}", sid)
    client.quit()

    cold_p50 = statistics.median(cold) * 1e6
    warm_p50 = statistics.median(warm) * 1e6
    print(f"commands sent:        {client.commands_sent}")
    print(f"protocol errors:      {len(client.protocol_errors)}")
    print(f"cold-query p50:       {cold_p50:.1f} us ({len(cold)} queries)")
    print(f"warm-query p50:       {warm_p50:.1f} us ({len(warm)} queries)")
    print(f"isolation violations: {isolation_violations}")

    if json_out:
        rows = [
            {"bench": "server_smoke", "config": "all", "metric": m, "value": v}
            for m, v in [
                ("commands", client.commands_sent),
                ("protocol_errors", len(client.protocol_errors)),
                ("cold_p50_micros", round(cold_p50, 3)),
                ("warm_p50_micros", round(warm_p50, 3)),
                ("isolation_violations", isolation_violations),
            ]
        ]
        with open(json_out, "w") as f:
            json.dump(rows, f, indent=2)

    failed = False
    if client.commands_sent < 200:
        print(f"FAIL: only {client.commands_sent} commands scripted (< 200)")
        failed = True
    for err in client.protocol_errors:
        print(f"FAIL: protocol error: {err}")
        failed = True
    if warm_p50 >= cold_p50:
        print(f"FAIL: warm p50 ({warm_p50:.1f}us) not below cold "
              f"({cold_p50:.1f}us)")
        failed = True
    if isolation_violations:
        print(f"FAIL: {isolation_violations} repeatable-read violations")
        failed = True
    print("FAIL" if failed else "PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
