// Log forensics: the paper's log-file motivating example (§1). Structured
// log entries are queried like database rows, with the word index
// accelerating free-text message search.
//
// Build & run:  ./build/examples/log_forensics

#include <cstdio>

#include "qof/core/api.h"

namespace {

void Show(qof::FileQuerySystem& system, const char* title, const char* fql,
          qof::ExecutionMode mode = qof::ExecutionMode::kAuto) {
  std::printf("--- %s\n    %s\n", title, fql);
  auto result = system.Execute(fql, mode);
  if (!result.ok()) {
    std::printf("    error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("    -> %llu results  [%s, %llu/%llu bytes, %llu us]\n\n",
              static_cast<unsigned long long>(result->stats.results),
              result->stats.strategy.c_str(),
              static_cast<unsigned long long>(result->stats.bytes_scanned),
              static_cast<unsigned long long>(result->stats.corpus_bytes),
              static_cast<unsigned long long>(result->stats.micros));
}

}  // namespace

int main() {
  qof::LogGenOptions gen;
  gen.num_entries = 20000;
  gen.error_rate = 0.03;
  std::string log = qof::GenerateLog(gen);

  auto schema = qof::LogSchema();
  if (!schema.ok()) return 1;
  qof::FileQuerySystem system(*schema);
  if (!system.AddFile("app.log", log).ok()) return 1;
  if (!system.BuildIndexes().ok()) return 1;
  std::printf("%d log entries, %zu bytes, fully indexed\n\n",
              gen.num_entries, log.size());

  Show(system, "all errors",
       "SELECT e FROM Entries e WHERE e.Level = \"ERROR\"");

  Show(system, "auth failures",
       "SELECT e FROM Entries e WHERE e.Level = \"ERROR\" AND "
       "e.Component = \"auth\"");

  Show(system, "fatal or error in storage",
       "SELECT e FROM Entries e WHERE (e.Level = \"FATAL\" OR "
       "e.Level = \"ERROR\") AND e.Component = \"storage\"");

  Show(system, "timeouts anywhere in the message text",
       "SELECT e FROM Entries e WHERE e.Message CONTAINS \"timeout\"");

  Show(system, "messages of session 17 (projection)",
       "SELECT e.Message FROM Entries e WHERE e.SessionId = \"17\"");

  // Same query, the way a grep-then-load pipeline would do it.
  Show(system, "all errors — forced baseline full scan for comparison",
       "SELECT e FROM Entries e WHERE e.Level = \"ERROR\"",
       qof::ExecutionMode::kBaseline);
  return 0;
}
