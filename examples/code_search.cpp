// Code search: the paper's intro names *programs* among the files worth
// querying. This example defines a structuring schema for a simple
// function-index format using the textual schema language
// (ParseSchemaText), registers it in a Workspace next to the BibTeX
// schema, and runs queries against both — the "uniform framework" of §1.
//
// Build & run:  ./build/examples/code_search

#include <cstdio>
#include <random>

#include "qof/core/api.h"
#include "qof/engine/workspace.h"

namespace {

// A tags-like function index:
//   fn parse_expr (lexer, depth) -> Node in parser.cc : 120-180 ;
constexpr const char* kCodeSchema = R"qq(
schema Code root TagFile view Function;

TagFile  ::= (Function)*                        => collect set;
Function ::= "fn" FnName "(" Params ")" "->" RetType
             "in" FileName ":" Span ";"
  => object Function(FnName: $1, Params: $2, RetType: $3,
                     FileName: $4, Span: $5);
Params   ::= (Param / ",")*                     => collect set;

FnName   ::= word;
Param    ::= word;
RetType  ::= word;
FileName ::= until(":");
Span     ::= until(";");
)qq";

std::string GenerateTags(int count, unsigned seed) {
  const char* verbs[] = {"parse", "eval",  "build", "scan",
                         "merge", "split", "fold",  "hash"};
  const char* nouns[] = {"expr",  "region", "index", "query",
                         "chain", "token",  "tree",  "plan"};
  const char* types[] = {"Node", "Status", "Region", "void", "int"};
  const char* params[] = {"lexer", "depth", "corpus", "out", "opts",
                          "rig"};
  const char* files[] = {"parser.cc", "region.cc", "engine.cc",
                         "optimizer.cc"};
  std::mt19937 rng(seed);
  auto pick = [&rng](auto& pool) {
    return pool[std::uniform_int_distribution<size_t>(
        0, std::size(pool) - 1)(rng)];
  };
  std::string out;
  for (int i = 0; i < count; ++i) {
    out += "fn ";
    out += pick(verbs);
    out += "_";
    out += pick(nouns);
    out += " (";
    int np = std::uniform_int_distribution<int>(0, 3)(rng);
    for (int p = 0; p < np; ++p) {
      if (p > 0) out += ", ";
      out += pick(params);
    }
    out += ") -> ";
    out += pick(types);
    out += " in ";
    out += pick(files);
    out += " : ";
    int lo = std::uniform_int_distribution<int>(1, 900)(rng);
    out += std::to_string(lo) + "-" + std::to_string(lo + 40);
    out += " ;\n";
  }
  return out;
}

void Show(qof::Workspace& ws, const char* title, const char* fql) {
  std::printf("--- %s\n    %s\n", title, fql);
  auto result = ws.Execute(fql);
  if (!result.ok()) {
    std::printf("    error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("    -> %llu results  [%s]\n\n",
              static_cast<unsigned long long>(result->stats.results),
              result->stats.strategy.c_str());
}

}  // namespace

int main() {
  auto code_schema = qof::ParseSchemaText(kCodeSchema);
  if (!code_schema.ok()) {
    std::fprintf(stderr, "schema: %s\n",
                 code_schema.status().ToString().c_str());
    return 1;
  }

  qof::Workspace ws;
  if (!ws.AddSchema(*code_schema).ok()) return 1;
  if (!ws.AddSchema(*qof::BibtexSchema()).ok()) return 1;

  if (!ws.AddFile("Code", "project.tags", GenerateTags(2000, 5)).ok()) {
    return 1;
  }
  qof::BibtexGenOptions bib;
  bib.num_references = 500;
  if (!ws.AddFile("BibTeX", "refs.bib", qof::GenerateBibtex(bib)).ok()) {
    return 1;
  }
  if (!ws.BuildAllIndexes().ok()) return 1;
  std::printf("workspace: %zu schemas — one query interface over code "
              "tags and bibliographies\n\n",
              ws.num_schemas());

  Show(ws, "functions in parser.cc",
       "SELECT f FROM Functions f WHERE f.FileName = \"parser.cc\"");

  Show(ws, "parse_* functions (prefix search)",
       "SELECT f FROM Functions f WHERE f.FnName STARTS \"parse\"");

  Show(ws, "functions taking a 'rig' parameter",
       "SELECT f FROM Functions f WHERE f.Params.Param = \"rig\"");

  Show(ws, "Status-returning functions outside engine.cc",
       "SELECT f FROM Functions f WHERE f.RetType = \"Status\" "
       "AND NOT f.FileName = \"engine.cc\"");

  Show(ws, "file names of functions returning Node (projection)",
       "SELECT f.FileName FROM Functions f "
       "WHERE f.RetType = \"Node\"");

  Show(ws, "…and, through the same interface, bibliography queries",
       "SELECT r FROM References r WHERE r.Publisher = \"SIAM\"");
  return 0;
}
