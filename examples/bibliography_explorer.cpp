// Bibliography explorer: the full breadth of FQL over a shared
// bibliography — boolean predicates, wildcards (§5.3), projections
// (§5.2), joins (§5.2), and the partial-indexing tradeoff (§6–§7).
//
// Build & run:  ./build/examples/bibliography_explorer

#include <cstdio>
#include <string>
#include <vector>

#include "qof/core/api.h"

namespace {

void Show(qof::FileQuerySystem& system, const char* title,
          const char* fql) {
  std::printf("--- %s\n    %s\n", title, fql);
  auto result = system.Execute(fql);
  if (!result.ok()) {
    std::printf("    error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("    -> %llu results  [%s, %llu candidates, %llu bytes "
              "scanned, %llu us]\n",
              static_cast<unsigned long long>(result->stats.results),
              result->stats.strategy.c_str(),
              static_cast<unsigned long long>(result->stats.candidates),
              static_cast<unsigned long long>(result->stats.bytes_scanned),
              static_cast<unsigned long long>(result->stats.micros));
  if (!result->values.empty()) {
    auto rendered = result->RenderedValues();
    std::printf("    values:");
    size_t shown = 0;
    for (const std::string& v : rendered) {
      if (shown++ == 8) {
        std::printf(" ... (%zu total)", rendered.size());
        break;
      }
      std::printf(" %s;", v.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  qof::BibtexGenOptions gen;
  gen.num_references = 5000;
  gen.probe_author_rate = 0.03;
  gen.probe_editor_rate = 0.03;
  std::string bibliography = qof::GenerateBibtex(gen);

  auto schema = qof::BibtexSchema();
  if (!schema.ok()) return 1;
  qof::FileQuerySystem system(*schema);
  if (!system.AddFile("shared.bib", bibliography).ok()) return 1;
  if (!system.BuildIndexes().ok()) return 1;
  std::printf("%d references, %zu bytes, fully indexed\n\n",
              gen.num_references, bibliography.size());

  Show(system, "Chang as author (the paper's flagship, §2)",
       "SELECT r FROM References r "
       "WHERE r.Authors.Name.Last_Name = \"Chang\"");

  Show(system, "Chang in any role (wildcard path, §5.3)",
       "SELECT r FROM References r WHERE r.*X.Last_Name = \"Chang\"");

  Show(system, "Chang exactly one level below a field (?-variables, §5.3)",
       "SELECT r FROM References r "
       "WHERE r.?F.Name.Last_Name = \"Chang\"");

  Show(system, "author but NOT editor (boolean composition)",
       "SELECT r FROM References r "
       "WHERE r.Authors.Name.Last_Name = \"Chang\" "
       "AND NOT r.Editors.Name.Last_Name = \"Chang\"");

  Show(system, "SIAM titles mentioning Taylor (selection + containment)",
       "SELECT r FROM References r WHERE r.Publisher = \"SIAM\" "
       "AND r.Keywords CONTAINS \"Taylor\"");

  Show(system, "all last names of authors (projection, §5.2)",
       "SELECT r.Authors.Name.Last_Name FROM References r "
       "WHERE r.Year = \"1982\"");

  Show(system, "editors who also authored the same reference (join, §5.2)",
       "SELECT r FROM References r "
       "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name");

  Show(system, "provably empty (Prop. 3.3: keys contain no last names)",
       "SELECT r FROM References r WHERE r.Key.*X.Last_Name = \"Chang\"");

  // Partial indexing: same flagship query, three different index sets.
  struct SpecCase {
    const char* label;
    qof::IndexSpec spec;
  };
  std::vector<SpecCase> cases;
  cases.push_back({"full indexing (§5)", qof::IndexSpec::Full()});
  cases.push_back({"partial {Reference, Key, Last_Name} (§6.1)",
                   qof::IndexSpec::Partial(
                       {"Reference", "Key", "Last_Name"})});
  cases.push_back({"partial {Reference, Authors, Last_Name} (§6.3 exact)",
                   qof::IndexSpec::Partial(
                       {"Reference", "Authors", "Last_Name"})});

  std::printf("=== the indexing tradeoff (§6–§7) ===\n\n");
  for (auto& c : cases) {
    if (!system.BuildIndexes(c.spec).ok()) return 1;
    std::printf("index set: %s  (%llu bytes)\n", c.label,
                static_cast<unsigned long long>(system.IndexBytes()));
    Show(system, "flagship query under this index set",
         "SELECT r FROM References r "
         "WHERE r.Authors.Name.Last_Name = \"Chang\"");
  }

  // §7: let the advisor pick the minimal index set for a workload.
  auto expr = qof::ParseRegionExpr(
      "Reference >> Authors >> Name >> sigma(\"Chang\", Last_Name)");
  auto chain = qof::InclusionChain::FromExpr(**expr);
  auto advice = qof::AdviseIndexes(system.full_rig(), "Reference",
                                   {*chain});
  if (advice.ok()) {
    std::printf("advisor for the flagship workload picks:");
    for (const std::string& name : advice->names) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
