// Quickstart: the paper's flagship scenario end to end.
//
//   1. generate a BibTeX file (Figure 1 shape),
//   2. register the BibTeX structuring schema and build full indices,
//   3. run "references where Chang is an author" — the §2 query — and
//      show that the index plan touches no file text,
//   4. compare against the baseline full scan.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "qof/core/api.h"

namespace {

void PrintResult(const char* label, const qof::QueryResult& result) {
  std::printf("%-12s strategy=%-11s results=%llu candidates=%llu "
              "bytes_scanned=%llu/%llu time=%lluus\n",
              label, result.stats.strategy.c_str(),
              static_cast<unsigned long long>(result.stats.results),
              static_cast<unsigned long long>(result.stats.candidates),
              static_cast<unsigned long long>(result.stats.bytes_scanned),
              static_cast<unsigned long long>(result.stats.corpus_bytes),
              static_cast<unsigned long long>(result.stats.micros));
}

}  // namespace

int main() {
  // 1. A synthetic bibliography: 2000 references, ~5% with Chang as an
  //    author and ~5% with Chang as an editor.
  qof::BibtexGenOptions gen;
  gen.num_references = 2000;
  gen.probe_author_rate = 0.05;
  gen.probe_editor_rate = 0.05;
  std::string bibliography = qof::GenerateBibtex(gen);
  std::printf("generated bibliography: %zu bytes\n\n", bibliography.size());
  std::printf("first entry:\n%.*s...\n\n", 220, bibliography.c_str());

  // 2. View the file as a database.
  auto schema = qof::BibtexSchema();
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  qof::FileQuerySystem system(*schema);
  if (auto s = system.AddFile("bibliography.bib", bibliography); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = system.BuildIndexes(qof::IndexSpec::Full()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexes built in %llu us (%llu bytes)\n\n",
              static_cast<unsigned long long>(system.index_build_micros()),
              static_cast<unsigned long long>(system.IndexBytes()));

  // 3. The paper's §2 query.
  const char* fql =
      "SELECT r FROM References r "
      "WHERE r.Authors.Name.Last_Name = \"Chang\"";
  std::printf("query: %s\n\n", fql);

  auto plan = system.Plan(fql);
  if (plan.ok()) {
    std::printf("compiled candidate expression:\n  %s\n",
                (*plan).candidates->ToString().c_str());
    for (const std::string& note : (*plan).notes) {
      std::printf("  note: %s\n", note.c_str());
    }
    std::printf("\n");
  }

  auto indexed = system.Execute(fql);
  if (!indexed.ok()) {
    std::fprintf(stderr, "%s\n", indexed.status().ToString().c_str());
    return 1;
  }
  PrintResult("index:", *indexed);

  // 4. What a standard database implementation would do instead.
  auto baseline = system.Execute(fql, qof::ExecutionMode::kBaseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  PrintResult("baseline:", *baseline);

  if (indexed->regions.size() != baseline->regions.size()) {
    std::fprintf(stderr, "PLANS DISAGREE — this is a bug\n");
    return 1;
  }
  double speedup = indexed->stats.micros > 0
                       ? static_cast<double>(baseline->stats.micros) /
                             static_cast<double>(indexed->stats.micros)
                       : 0.0;
  std::printf(
      "\nboth plans found %zu references; the index plan scanned %llu "
      "file bytes (baseline: %llu) and ran %.0fx faster\n",
      indexed->regions.size(),
      static_cast<unsigned long long>(indexed->stats.bytes_scanned),
      static_cast<unsigned long long>(baseline->stats.bytes_scanned),
      speedup);
  return 0;
}
