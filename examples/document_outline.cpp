// Document outline: recursive (self-nested) sections — the paper's
// self-nested regions (§3.2) and transitive-closure paths (§5.3) — plus
// EXPLAIN output, PAT-style lexical/proximity search at the algebra
// level, and index persistence.
//
// Build & run:  ./build/examples/document_outline

#include <cstdio>

#include "qof/core/api.h"

namespace {

void Show(qof::FileQuerySystem& system, const char* title,
          const char* fql) {
  std::printf("--- %s\n    %s\n", title, fql);
  auto result = system.Execute(fql);
  if (!result.ok()) {
    std::printf("    error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("    -> %llu sections  [%s]\n\n",
              static_cast<unsigned long long>(result->stats.results),
              result->stats.strategy.c_str());
}

}  // namespace

int main() {
  qof::OutlineGenOptions gen;
  gen.num_top_sections = 400;
  gen.max_depth = 5;
  gen.probe_title_rate = 0.03;
  std::string document = qof::GenerateOutline(gen);

  auto schema = qof::OutlineSchema();
  if (!schema.ok()) return 1;
  qof::FileQuerySystem system(*schema);
  if (!system.AddFile("spec.outline", document).ok()) return 1;
  if (!system.BuildIndexes().ok()) return 1;

  auto all = system.Execute("SELECT s FROM Sections s");
  if (!all.ok()) return 1;
  std::printf("document: %zu bytes, %llu sections at all nesting levels\n",
              document.size(),
              static_cast<unsigned long long>(all->stats.results));
  std::printf("RIG has a cycle: Section -> Subsections -> Section\n\n");

  Show(system, "sections titled Optimization",
       "SELECT s FROM Sections s WHERE s.SecTitle = \"Optimization\"");

  Show(system,
       "sections with an Optimization section anywhere below "
       "(transitive closure as ONE plain-inclusion expression, §5.3)",
       "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"");

  Show(system, "sections with a *direct* Optimization subsection",
       "SELECT s FROM Sections s "
       "WHERE s.Subsections.Section.SecTitle = \"Optimization\"");

  Show(system, "prefix search over titles (PAT lexical search)",
       "SELECT s FROM Sections s WHERE s.SecTitle STARTS \"Optim\"");

  // EXPLAIN: how the closure query compiles.
  auto explain = system.Explain(
      "SELECT s FROM Sections s WHERE s.*X.SecTitle = \"Optimization\"");
  if (explain.ok()) {
    std::printf("=== EXPLAIN of the closure query ===\n%s\n",
                explain->c_str());
  }

  // Algebra-level PAT features: proximity and frequency search.
  qof::ExprEvaluator evaluator(&system.region_index(),
                               &system.word_index(), &system.corpus());
  auto near = qof::ParseRegionExpr(
      "near(\"indexed\", \"regions\", 40, Prose)");
  if (near.ok()) {
    auto hits = evaluator.Evaluate(**near);
    if (hits.ok()) {
      std::printf("proximity: %zu prose blocks say 'indexed' within 40 "
                  "bytes of 'regions'\n",
                  hits->size());
    }
  }
  auto frequent =
      qof::ParseRegionExpr("atleast(\"the\", 2, Prose)");
  if (frequent.ok()) {
    auto hits = evaluator.Evaluate(**frequent);
    if (hits.ok()) {
      std::printf("frequency: %zu prose blocks use 'the' at least "
                  "twice\n\n",
                  hits->size());
    }
  }

  // Index persistence: export, reload into a fresh session, re-run.
  auto blob = system.ExportIndexes();
  if (blob.ok()) {
    qof::FileQuerySystem fresh(*schema);
    if (fresh.AddFile("spec.outline", document).ok() &&
        fresh.ImportIndexes(*blob).ok()) {
      auto again = fresh.Execute(
          "SELECT s FROM Sections s WHERE s.SecTitle = \"Optimization\"");
      if (again.ok()) {
        std::printf(
            "persistence: exported %zu-byte index blob; a fresh session "
            "answered with %llu sections without rebuilding\n",
            blob->size(),
            static_cast<unsigned long long>(again->stats.results));
      }
    }
  }
  return 0;
}
