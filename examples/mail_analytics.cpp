// Mail analytics: the paper's e-mail motivating example (§1). A mailbox
// file becomes a database view; FQL distinguishes sender and recipient
// roles the same way BibTeX distinguishes authors and editors.
//
// Build & run:  ./build/examples/mail_analytics

#include <cstdio>

#include "qof/core/api.h"

namespace {

void Show(qof::FileQuerySystem& system, const char* title,
          const char* fql) {
  std::printf("--- %s\n    %s\n", title, fql);
  auto result = system.Execute(fql);
  if (!result.ok()) {
    std::printf("    error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("    -> %llu results  [%s, %llu bytes scanned]\n\n",
              static_cast<unsigned long long>(result->stats.results),
              result->stats.strategy.c_str(),
              static_cast<unsigned long long>(result->stats.bytes_scanned));
}

}  // namespace

int main() {
  qof::MailGenOptions gen;
  gen.num_messages = 3000;
  gen.probe_sender_rate = 0.04;
  gen.probe_recipient_rate = 0.08;
  std::string mailbox = qof::GenerateMailbox(gen);

  auto schema = qof::MailSchema();
  if (!schema.ok()) return 1;
  qof::FileQuerySystem system(*schema);
  if (!system.AddFile("inbox.mail", mailbox).ok()) return 1;
  if (!system.BuildIndexes().ok()) return 1;
  std::printf("%d messages, %zu bytes, fully indexed\n\n",
              gen.num_messages, mailbox.size());

  Show(system, "mail FROM Dana Chang (role-specific)",
       "SELECT m FROM Messages m "
       "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"");

  Show(system, "mail TO Dana Chang",
       "SELECT m FROM Messages m "
       "WHERE m.Recipients.Address.Addr_Name = \"Dana Chang\"");

  Show(system, "any mention of Dana Chang in headers (wildcard)",
       "SELECT m FROM Messages m WHERE m.*X.Addr_Name = \"Dana Chang\"");

  Show(system, "urgent work mail",
       "SELECT m FROM Messages m WHERE m.Tags.Tag = \"urgent\" "
       "AND m.Tags.Tag = \"work\"");

  Show(system, "budget threads not from Dana Chang",
       "SELECT m FROM Messages m WHERE m.Subject CONTAINS \"budget\" "
       "AND NOT m.Sender.Address.Addr_Name = \"Dana Chang\"");

  Show(system, "self-addressed mail (join: a sender who is a recipient)",
       "SELECT m FROM Messages m "
       "WHERE m.Sender.Address = m.Recipients.Address");

  Show(system, "subjects of mail sent by Dana Chang (projection)",
       "SELECT m.Subject FROM Messages m "
       "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"");

  // Selective indexing (§7): if queries only ever ask about senders,
  // index addresses only inside FROM fields.
  qof::IndexSpec spec = qof::IndexSpec::Partial(
      {"Message", "Sender", "Address", "Addr_Name"});
  spec.within["Address"] = "Sender";
  spec.within["Addr_Name"] = "Sender";
  if (!system.BuildIndexes(spec).ok()) return 1;
  std::printf("selective index (sender-side only): %llu bytes\n\n",
              static_cast<unsigned long long>(system.IndexBytes()));
  Show(system, "mail FROM Dana Chang under the selective index",
       "SELECT m FROM Messages m "
       "WHERE m.Sender.Address.Addr_Name = \"Dana Chang\"");
  return 0;
}
