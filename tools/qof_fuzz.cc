// Differential fuzzing driver: random structuring schemas, corpora and
// FQL queries cross-checked across every plan kind (see DESIGN.md,
// "Testing & fuzzing"). Exit codes: 0 = all iterations passed (or a
// replayed repro passed), 1 = an invariant violation was found (the
// repro is printed and optionally written), 2 = usage error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "qof/exec/fault_injector.h"
#include "qof/fuzz/fuzzer.h"
#include "qof/fuzz/repro.h"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: qof_fuzz [options]\n"
         "  --iterations N        cases to run (default 100)\n"
         "  --seed N              master seed (default 1)\n"
         "  --invalid-fraction F  mutated-query fraction (default 0.15)\n"
         "  --canned-fraction F   canned-corpus fraction (default 0.2)\n"
         "  --subsets N           index subsets per case (default 2)\n"
         "  --mutation-fraction F mutation-sequence fraction (default "
         "0.35)\n"
         "  --workers N           parallel leg worker count (default 4)\n"
         "  --inject KIND         none | relax-direct | exact-skip | "
         "drop-tombstone\n"
         "                        | stale-cache | bad-cse | "
         "stale-snapshot | evict-pinned | skip-dir-sync\n"
         "                        | racy-merge\n"
         "                        | fault[:SITE[:HIT]] — fault-injection "
         "leg; SITE from\n"
         "                        --list-fault-sites (default random per "
         "iteration)\n"
         "  --list-fault-sites    print the injectable fault sites and "
         "exit\n"
         "  --no-shrink           report the unshrunk failing case\n"
         "  --repro FILE          replay a repro file instead of fuzzing\n"
         "  --repro-out FILE      write the repro of a failure here\n";
}

bool ParseInt(const char* text, long* out) {
  char* end = nullptr;
  *out = std::strtol(text, &end, 10);
  return end != text && *end == '\0';
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  qof::FuzzOptions options;
  std::string repro_path;
  std::string repro_out_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long n = 0;
    double f = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--iterations" && ParseInt(next(), &n)) {
      options.iterations = static_cast<int>(n);
    } else if (arg == "--seed" && ParseInt(next(), &n)) {
      options.seed = static_cast<uint64_t>(n);
    } else if (arg == "--invalid-fraction" && ParseDouble(next(), &f)) {
      options.invalid_fraction = f;
    } else if (arg == "--canned-fraction" && ParseDouble(next(), &f)) {
      options.canned_fraction = f;
    } else if (arg == "--subsets" && ParseInt(next(), &n)) {
      options.subsets_per_case = static_cast<int>(n);
    } else if (arg == "--mutation-fraction" && ParseDouble(next(), &f)) {
      options.mutation_fraction = f;
    } else if (arg == "--workers" && ParseInt(next(), &n)) {
      options.workers = static_cast<int>(n);
    } else if (arg == "--inject") {
      const char* raw = next();
      std::string name = raw ? raw : "";
      if (name == "fault" || name.rfind("fault:", 0) == 0) {
        // fault[:site[:hit]] — arm the oracle's fault-injection leg.
        options.fault_site = "random";
        if (name.size() > 6) {
          std::string rest = name.substr(6);
          size_t colon = rest.find(':');
          options.fault_site = rest.substr(0, colon);
          if (colon != std::string::npos) {
            long hit = 0;
            if (!ParseInt(rest.c_str() + colon + 1, &hit) || hit < 1) {
              std::cerr << "bad fault hit ordinal in: " << name << "\n";
              return 2;
            }
            options.fault_hit = static_cast<uint64_t>(hit);
          }
        }
        if (options.fault_site != "random") {
          const std::vector<std::string>& sites = qof::FaultSites();
          bool known = false;
          for (const std::string& site : sites) {
            known = known || site == options.fault_site;
          }
          if (!known) {
            std::cerr << "unknown fault site: " << options.fault_site
                      << " (see --list-fault-sites)\n";
            return 2;
          }
        }
      } else {
        auto bug = qof::InjectedBugFromName(name);
        if (!bug.ok()) {
          std::cerr << bug.status().ToString() << "\n";
          return 2;
        }
        options.bug = *bug;
      }
    } else if (arg == "--list-fault-sites") {
      for (const std::string& site : qof::FaultSites()) {
        std::cout << site << "\n";
      }
      return 0;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--repro") {
      const char* path = next();
      if (path == nullptr) {
        PrintUsage(std::cerr);
        return 2;
      }
      repro_path = path;
    } else if (arg == "--repro-out") {
      const char* path = next();
      if (path == nullptr) {
        PrintUsage(std::cerr);
        return 2;
      }
      repro_out_path = path;
    } else {
      std::cerr << "unrecognized or malformed option: " << arg << "\n";
      PrintUsage(std::cerr);
      return 2;
    }
  }

  if (!repro_path.empty()) {
    std::ifstream in(repro_path);
    if (!in) {
      std::cerr << "cannot open repro file: " << repro_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto outcome = qof::ReplayRepro(buffer.str(), options.workers);
    if (!outcome.ok()) {
      std::cerr << "repro replay error: " << outcome.status().ToString()
                << "\n";
      return 2;
    }
    if (outcome->failed) {
      std::cout << "repro still fails:\n  " << outcome->failure << "\n";
      return 1;
    }
    std::cout << "repro passes (the defect is fixed or not reproduced)\n";
    return 0;
  }

  auto report = qof::RunFuzz(options);
  if (!report.ok()) {
    std::cerr << "fuzzer harness error: " << report.status().ToString()
              << "\n";
    return 2;
  }
  std::cout << "ran " << report->iterations_run << " case(s), seed "
            << options.seed << ", case-hash " << std::hex
            << report->case_hash << std::dec << "\n";
  if (!report->failed) {
    std::cout << "all invariants held\n";
    return 0;
  }

  std::cout << "FAILURE at iteration " << report->failing_iteration
            << ":\n  " << report->failure << "\n";
  if (options.shrink) {
    std::cout << "shrunk with " << report->shrink_oracle_runs
              << " oracle run(s)\n";
  }
  std::cout << "repro:\n" << report->repro;
  if (!repro_out_path.empty()) {
    std::ofstream out(repro_out_path);
    out << report->repro;
    std::cout << "repro written to " << repro_out_path << "\n";
  }
  return 1;
}
