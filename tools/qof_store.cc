// Paged-store utility: inspects "QOFSTOR1" files (page census, fill
// factors, compression ratio, full checksum verification), converts
// serialized index blobs (see src/qof/engine/index_io.h) into the paged
// format without needing the original files — the blob's document table
// rides along, so a store produced here is byte-identical to one the
// engine saves from the same indexes (SaveStore) — and audits/salvages
// damaged stores (`scrub` names the index instances and documents a
// damaged page touches; `repair` rebuilds the store from its surviving
// streams, quarantining the damaged original).
//
// Exit codes: 0 = success, 1 = usage error, 2 = data error (unreadable
// file, damaged pages, unconvertible blob).

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qof/engine/index_io.h"
#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/store/scrub.h"
#include "qof/store/store_format.h"
#include "qof/store/store_writer.h"
#include "qof/util/result.h"
#include "qof/util/wire.h"

namespace qof {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: qof_store <command> [args]\n"
         "  inspect STORE                 page census, section layout, "
         "fill\n"
         "                                factors, compression ratio, and "
         "a\n"
         "                                checksum pass over every page\n"
         "  convert BLOB STORE            rewrite a v2/v3 index blob "
         "(.qofidx)\n"
         "                                as a paged store file\n"
         "  scrub STORE                   audit every page; map damage "
         "to\n"
         "                                sections, index instances and "
         "the\n"
         "                                documents they cover\n"
         "  repair STORE                  rebuild a damaged store from "
         "its\n"
         "                                surviving streams (original "
         "kept\n"
         "                                as STORE.quarantined)\n"
         "options:\n"
         "  --page-size N    store page size for convert (default "
      << kDefaultPageSize
      << ",\n"
         "                   multiple of "
      << kMinStorePageSize
      << ")\n"
         "exit codes: 0 ok, 1 usage, 2 data error\n";
}

const char* SectionName(StoreSection s) {
  switch (s) {
    case StoreSection::kSpec: return "spec";
    case StoreSection::kDocTable: return "doc-table";
    case StoreSection::kRegionFence: return "region-fence";
    case StoreSection::kRegionDict: return "region-dict";
    case StoreSection::kWordFence: return "word-fence";
    case StoreSection::kWordDict: return "word-dict";
    case StoreSection::kPostings: return "postings";
  }
  return "unknown";
}

std::string Percent(double fraction) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return out.str();
}

Status RunInspect(const std::string& path) {
  // Bootstrap the meta page from the file's first 256 bytes — the true
  // page size is inside it.
  QOF_ASSIGN_OR_RETURN(std::string head,
                       ReadFilePrefix(path, kMinStorePageSize));
  QOF_ASSIGN_OR_RETURN(PageHeader meta_header,
                       ParsePage(head, kMinStorePageSize, 0));
  if (meta_header.type != PageType::kMeta) {
    return Status::InvalidArgument(path + ": page 0 is not a meta page");
  }
  QOF_ASSIGN_OR_RETURN(
      StoreMeta meta,
      DecodeStoreMeta(std::string_view(head).substr(
          kPageHeaderSize, meta_header.payload_len)));

  QOF_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path, meta.page_size));
  std::cout << path << ": " << file.num_pages() << " pages of "
            << meta.page_size << " bytes (" << file.file_bytes()
            << " bytes), generation " << meta.generation << "\n"
            << "  " << meta.doc_count << " document(s), "
            << meta.region_names << " region name(s) / "
            << meta.total_regions << " region(s), " << meta.distinct_words
            << " word(s) / " << meta.total_postings << " posting(s)\n";

  // Section layout with per-section fill: stored stream bytes against
  // the payload capacity of the pages the section occupies.
  const uint32_t capacity = PagePayloadCapacity(meta.page_size);
  std::cout << "sections:\n";
  for (int i = 0; i < kNumStoreSections; ++i) {
    const SectionInfo& s = meta.sections[i];
    std::cout << "  " << std::left << std::setw(13)
              << SectionName(static_cast<StoreSection>(i)) << std::right
              << " pages " << std::setw(5) << s.first_page << " +"
              << std::setw(4) << s.num_pages << "  " << std::setw(9)
              << s.byte_len << " bytes";
    if (s.num_pages > 0) {
      std::cout << "  fill "
                << Percent(static_cast<double>(s.byte_len) /
                           (static_cast<double>(s.num_pages) * capacity));
    }
    std::cout << "\n";
  }
  const SectionInfo& postings = meta.section(StoreSection::kPostings);
  if (postings.byte_len > 0 && meta.body_bytes > 0) {
    std::ostringstream ratio;
    ratio << std::fixed << std::setprecision(2)
          << static_cast<double>(meta.body_bytes) / postings.byte_len;
    std::cout << "postings compression: " << meta.body_bytes
              << " uncompressed -> " << postings.byte_len << " stored ("
              << ratio.str() << "x)\n";
  }

  // Checksum pass: parse (and thereby verify) every page, tallying the
  // census by page type.
  size_t counts[8] = {};
  uint64_t payload_bytes = 0;
  std::vector<std::string> damaged;
  std::string raw;
  for (uint32_t page = 0; page < file.num_pages(); ++page) {
    QOF_RETURN_IF_ERROR(file.ReadPage(page, &raw));
    auto header = ParsePage(raw, meta.page_size, page);
    if (!header.ok()) {
      damaged.push_back(header.status().ToString());
      continue;
    }
    counts[static_cast<int>(header->type) & 7]++;
    payload_bytes += header->payload_len;
  }
  std::cout << "pages:";
  for (int t = 0; t < 8; ++t) {
    if (counts[t] == 0) continue;
    std::cout << " " << PageTypeName(static_cast<PageType>(t)) << "="
              << counts[t];
  }
  std::cout << "  overall fill "
            << Percent(static_cast<double>(payload_bytes) /
                       (static_cast<double>(file.num_pages()) * capacity))
            << "\n";
  if (damaged.empty()) {
    std::cout << "checksums: all " << file.num_pages()
              << " page(s) verify\n";
    return Status::OK();
  }
  for (const std::string& error : damaged) {
    std::cout << "checksums: FAILED — " << error << "\n";
  }
  return Status::InvalidArgument(path + ": " +
                                 std::to_string(damaged.size()) +
                                 " damaged page(s)");
}

Status RunConvert(const std::string& blob_path, const std::string& out_path,
                  uint32_t page_size) {
  QOF_ASSIGN_OR_RETURN(std::string blob, ReadFileBytes(blob_path));
  QOF_ASSIGN_OR_RETURN(UncheckedIndexes unchecked,
                       DeserializeIndexesUnchecked(blob));

  std::string spec_bytes;
  EncodeIndexSpec(unchecked.indexes.spec, &spec_bytes);
  // Re-encode the document table from the blob's fingerprints — same
  // wire rows EncodeDocTable emits from a live corpus, so the image
  // matches what the engine's SaveStore writes for these indexes.
  std::string doc_table;
  PutU32(static_cast<uint32_t>(unchecked.docs.size()), &doc_table);
  for (const DocFingerprint& doc : unchecked.docs) {
    PutString(doc.name, &doc_table);
    PutU64(doc.size, &doc_table);
    PutU64(doc.fnv1a, &doc_table);
  }

  StoreWriterInput input;
  input.regions = &unchecked.indexes.indexes.regions;
  input.words = &unchecked.indexes.indexes.words;
  input.spec_bytes = spec_bytes;
  input.doc_table_bytes = doc_table;
  input.generation = unchecked.indexes.generation;
  input.doc_count = unchecked.indexes.indexes.documents;
  QOF_ASSIGN_OR_RETURN(std::string image, BuildStoreImage(input, page_size));
  QOF_RETURN_IF_ERROR(WriteFileBytes(out_path, image));
  std::cout << "converted v" << unchecked.version << " blob ("
            << blob.size() << " bytes) -> " << out_path << " ("
            << image.size() << " bytes, " << image.size() / page_size
            << " pages of " << page_size << ")\n";
  return Status::OK();
}

Status RunScrub(const std::string& path) {
  QOF_ASSIGN_OR_RETURN(ScrubReport report, ScrubStore(path));
  std::cout << FormatScrubReport(report);
  if (!report.clean()) {
    return Status::DataLoss(path + ": " +
                            std::to_string(report.damaged_pages.size()) +
                            " damaged page(s)");
  }
  return Status::OK();
}

Status RunRepair(const std::string& path) {
  QOF_ASSIGN_OR_RETURN(RepairResult result, RepairStore(path));
  if (result.quarantine_path.empty()) {
    std::cout << path << ": clean, nothing to repair\n";
    return Status::OK();
  }
  std::cout << "rebuilt " << path << " from surviving streams; damaged "
            << "original kept as " << result.quarantine_path << "\n";
  if (result.dropped.empty()) {
    std::cout << "no index instances lost (damage was confined to "
                 "derived data)\n";
  } else {
    std::cout << result.dropped.size() << " instance(s) dropped:\n";
    for (const std::string& key : result.dropped) {
      std::cout << "  " << key << "\n";
    }
  }
  return Status::OK();
}

}  // namespace
}  // namespace qof

int main(int argc, char** argv) {
  if (argc < 2) {
    qof::PrintUsage(std::cerr);
    return 1;
  }
  std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    qof::PrintUsage(std::cout);
    return 0;
  }

  uint32_t page_size = qof::kDefaultPageSize;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--page-size" && i + 1 < argc) {
      page_size =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unrecognized option: " << arg << "\n";
      qof::PrintUsage(std::cerr);
      return 1;
    } else {
      args.push_back(arg);
    }
  }

  qof::Status status = qof::Status::OK();
  if (command == "inspect") {
    if (args.size() != 1) {
      std::cerr << "inspect wants exactly one store file\n";
      return 1;
    }
    status = qof::RunInspect(args[0]);
  } else if (command == "convert") {
    if (args.size() != 2) {
      std::cerr << "convert wants a blob file and an output path\n";
      return 1;
    }
    status = qof::RunConvert(args[0], args[1], page_size);
  } else if (command == "scrub") {
    if (args.size() != 1) {
      std::cerr << "scrub wants exactly one store file\n";
      return 1;
    }
    status = qof::RunScrub(args[0]);
  } else if (command == "repair") {
    if (args.size() != 1) {
      std::cerr << "repair wants exactly one store file\n";
      return 1;
    }
    status = qof::RunRepair(args[0]);
  } else {
    std::cerr << "unknown command: " << command << "\n";
    qof::PrintUsage(std::cerr);
    return 1;
  }

  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 2;
  }
  return 0;
}
