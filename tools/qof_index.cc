// On-disk index maintenance driver: builds a v2 index blob over a set of
// files and keeps it current across mutations via the append-only
// maintenance journal (see src/qof/maintain/ and DESIGN.md, "Index
// maintenance" and "Durability & failure model"). State on disk is a
// crash-consistent DurableIndexDir:
//
//   MANIFEST           checksummed superblock naming the committed
//                      (generation, blob, journal) triple
//   blob-<G>.qofidx    the serialized base blob (spec + indexes + per-doc
//                      fingerprints + generation G)
//   journal-<G>.qofj   mutations applied since blob generation G
//   schema             the canned schema kind the corpus parses under
//
// Mutations (`add`, `update`, `remove`) reconstruct the maintainer as
// base blob + journal replay, apply the change incrementally — only the
// touched file is re-parsed — and append one journal frame; the blob is
// rewritten only by `build` and `compact`, via the manifest checkpoint
// protocol (new blob + empty journal durable first, manifest swing as
// the commit point, old pair reaped after). Every write is fsync'd and
// every rename is followed by a parent-directory fsync, so a crash or
// power cut at any instant leaves either the old committed state or the
// new one — never a torn mix. `--sync-policy batch|none` trades that
// per-append durability for throughput.
//
// Files whose bytes changed (or vanished) since the blob was written
// load as synthetic placeholders: queries on their old content would be
// wrong, so `inspect` flags them and `compact` refuses until they are
// updated or removed.
//
// Exit codes: 0 = success, 1 = usage error, 2 = data error (unreadable
// state, parse failure, bad blob), 3 = deadline or resource limit
// exceeded (--timeout-ms / --max-bytes).

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/exec/exec_context.h"
#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/maintain/durable_dir.h"
#include "qof/maintain/journal.h"
#include "qof/maintain/maintainer.h"
#include "qof/store/vfs.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"
#include "qof/util/thread_pool.h"

namespace qof {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: qof_index <command> --index DIR [args]\n"
         "  build --schema KIND --index DIR FILE...   parse FILEs, build "
         "full indexes,\n"
         "                                            write blob + empty "
         "journal\n"
         "  add --index DIR FILE...      index new files incrementally\n"
         "  update --index DIR FILE...   re-index changed files "
         "incrementally\n"
         "  remove --index DIR NAME...   drop files from the indexes\n"
         "  compact --index DIR          fold tombstones, rewrite blob, "
         "reset journal\n"
         "  inspect --index DIR          show blob, journal and "
         "maintenance state\n"
         "KIND is a canned schema: bibtex | mail | log | outline\n"
         "options:\n"
         "  --timeout-ms N   wall-clock budget for parsing/indexing work\n"
         "  --max-bytes N    cap on corpus bytes scanned\n"
         "  --sync-policy P  journal durability: always (fsync every "
         "append,\n"
         "                   the default) | batch (fsync once per "
         "command) |\n"
         "                   none (leave syncing to the OS)\n"
         "exit codes: 0 ok, 1 usage, 2 data error, 3 deadline/limit "
         "exceeded\n";
}

Result<StructuringSchema> SchemaByKind(const std::string& kind) {
  if (kind == "bibtex") return BibtexSchema();
  if (kind == "mail") return MailSchema();
  if (kind == "log") return LogSchema();
  if (kind == "outline") return OutlineSchema();
  return Status::InvalidArgument("unknown schema kind '" + kind +
                                 "' (want bibtex | mail | log | outline)");
}

Result<std::string> ReadFile(const std::string& path) {
  return VfsReadFile(DefaultVfs(), path);
}

std::string SchemaPath(const std::string& dir) { return dir + "/schema"; }

ThreadPool* SharedPool() {
  static ThreadPool* pool = [] {
    unsigned n = std::thread::hardware_concurrency();
    return n > 1 ? new ThreadPool(n) : nullptr;
  }();
  return pool;
}

/// The maintainer state reconstructed from disk: base blob + journal
/// replay over a corpus re-read from the indexed files.
struct State {
  std::unique_ptr<DurableIndexDir> durable;
  std::unique_ptr<StructuringSchema> schema;
  std::string schema_kind;
  Corpus corpus;
  BuiltIndexes built;
  IndexSpec spec;
  std::unique_ptr<IndexMaintainer> maintainer;
  std::vector<std::string> synthetic_names;  // placeholder-backed docs
  size_t journal_records = 0;
  bool journal_repaired = false;  // a torn tail was discarded
};

Result<std::unique_ptr<State>> LoadState(const std::string& dir,
                                         SyncPolicy policy) {
  auto state = std::make_unique<State>();

  DurableIndexDir::Options durable_options;
  durable_options.sync_policy = policy;
  QOF_ASSIGN_OR_RETURN(
      DurableIndexDir durable,
      DurableIndexDir::Open(DefaultVfs(), dir, durable_options));
  state->durable = std::make_unique<DurableIndexDir>(std::move(durable));

  QOF_ASSIGN_OR_RETURN(std::string kind, ReadFile(SchemaPath(dir)));
  while (!kind.empty() && (kind.back() == '\n' || kind.back() == ' ')) {
    kind.pop_back();
  }
  state->schema_kind = kind;
  QOF_ASSIGN_OR_RETURN(StructuringSchema schema, SchemaByKind(kind));
  state->schema = std::make_unique<StructuringSchema>(std::move(schema));

  QOF_ASSIGN_OR_RETURN(std::string blob, state->durable->ReadBlob());
  QOF_ASSIGN_OR_RETURN(BlobInfo info, ReadBlobInfo(blob));
  if (info.version < 2) {
    return Status::InvalidArgument(
        "v1 blobs carry no document table; rebuild with 'qof_index "
        "build'");
  }

  // Re-read each indexed file; bytes that no longer match the blob's
  // fingerprint become zero-filled placeholders (synthetic documents).
  std::vector<DocId> synthetic;
  for (const DocFingerprint& doc : info.docs) {
    auto text = ReadFile(doc.name);
    bool matches = text.ok() && text->size() == doc.size &&
                   CorpusFingerprint(*text) == doc.fnv1a;
    QOF_ASSIGN_OR_RETURN(
        DocId id,
        state->corpus.AddDocument(
            doc.name, matches ? *text : std::string(doc.size, '\0')));
    if (!matches) {
      synthetic.push_back(id);
      state->synthetic_names.push_back(doc.name);
    }
  }

  DeserializeOptions options;
  options.allow_stale = true;  // placeholders fail the fingerprint check
  QOF_ASSIGN_OR_RETURN(SerializedIndexes loaded,
                       DeserializeIndexes(blob, state->corpus, options));
  state->built = std::move(loaded.indexes);
  state->spec = loaded.spec;

  MaintainOptions maintain_options;
  maintain_options.auto_compact = false;  // blob rewrites are explicit
  state->maintainer = std::make_unique<IndexMaintainer>(
      state->schema.get(), &state->corpus, &state->built, state->spec,
      maintain_options);
  state->maintainer->set_generation(loaded.generation);
  for (DocId id : synthetic) state->maintainer->MarkDocumentSynthetic(id);

  QOF_ASSIGN_OR_RETURN(
      std::vector<JournalRecord> records,
      state->durable->ReadJournal(&state->journal_repaired));
  if (state->journal_repaired) {
    std::cerr << "warning: discarded a torn journal tail (crash "
                 "mid-append)\n";
  }
  QOF_RETURN_IF_ERROR(ReplayJournal(records, state->maintainer.get()));
  state->journal_records = records.size();
  return state;
}

Status RunBuild(const std::string& dir, const std::string& kind,
                const std::vector<std::string>& files,
                const QueryOptions& limits, SyncPolicy policy) {
  QOF_ASSIGN_OR_RETURN(StructuringSchema schema, SchemaByKind(kind));
  ExecContext governed(limits);
  const ExecContext* ctx = governed.active() ? &governed : nullptr;
  Corpus corpus;
  if (ctx != nullptr) {
    governed.set_scanned_bytes_counter(&corpus.bytes_read_counter());
  }
  for (const std::string& path : files) {
    QOF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    QOF_RETURN_IF_ERROR(corpus.AddDocument(path, text).status());
  }
  QOF_ASSIGN_OR_RETURN(
      BuiltIndexes built,
      BuildIndexes(schema, corpus, IndexSpec::Full(), SharedPool(), ctx));
  QOF_ASSIGN_OR_RETURN(
      std::string blob,
      SerializeIndexes(built, IndexSpec::Full(), corpus, /*generation=*/0));
  DurableIndexDir::Options durable_options;
  durable_options.sync_policy = policy;
  QOF_RETURN_IF_ERROR(DurableIndexDir::Create(DefaultVfs(), dir, blob,
                                              /*generation=*/0,
                                              durable_options)
                          .status());
  QOF_RETURN_IF_ERROR(
      AtomicWriteFile(DefaultVfs(), SchemaPath(dir), kind + "\n"));
  std::cout << "indexed " << files.size() << " file(s): "
            << built.regions.num_regions() << " regions, "
            << built.words.num_postings() << " postings, blob "
            << blob.size() << " bytes\n";
  return Status::OK();
}

Status RunMutate(const std::string& dir, const std::string& command,
                 const std::vector<std::string>& args,
                 const QueryOptions& limits, SyncPolicy policy) {
  QOF_ASSIGN_OR_RETURN(std::unique_ptr<State> state,
                       LoadState(dir, policy));
  ExecContext governed(limits);
  const ExecContext* ctx = governed.active() ? &governed : nullptr;
  if (ctx != nullptr) {
    governed.set_scanned_bytes_counter(&state->corpus.bytes_read_counter());
  }
  for (const std::string& arg : args) {
    JournalRecord record;
    record.name = arg;
    Status applied = Status::OK();
    if (command == "add" || command == "update") {
      QOF_ASSIGN_OR_RETURN(record.text, ReadFile(arg));
      record.op =
          command == "add" ? JournalOp::kAdd : JournalOp::kUpdate;
      applied =
          command == "add"
              ? state->maintainer
                    ->AddDocument(arg, record.text, SharedPool(), ctx)
                    .status()
              : state->maintainer
                    ->UpdateDocument(arg, record.text, SharedPool(), ctx)
                    .status();
    } else {
      record.op = JournalOp::kRemove;
      applied = state->maintainer->RemoveDocument(arg, SharedPool(), ctx);
    }
    if (!applied.ok()) {
      return Status(applied.code(),
                    command + " " + arg + ": " + applied.message());
    }
    record.generation = state->maintainer->generation();
    QOF_RETURN_IF_ERROR(state->durable->Append(record));
  }
  // The kBatch boundary: one fsync covers the whole command's appends (a
  // no-op under kAlways, already durable, and under kNone, opted out).
  QOF_RETURN_IF_ERROR(state->durable->SyncJournal());
  MaintainStats stats = state->maintainer->stats();
  std::cout << command << " applied to " << args.size()
            << " file(s); generation " << stats.generation << ", "
            << stats.tombstones << " tombstone(s), " << stats.dead_bytes
            << " dead byte(s)"
            << (state->maintainer->NeedsCompaction()
                    ? " — run 'qof_index compact'"
                    : "")
            << "\n";
  return Status::OK();
}

Status RunCompact(const std::string& dir, SyncPolicy policy) {
  QOF_ASSIGN_OR_RETURN(std::unique_ptr<State> state,
                       LoadState(dir, policy));
  uint64_t dead = state->maintainer->stats().dead_bytes;
  QOF_RETURN_IF_ERROR(state->maintainer->Compact(SharedPool()));
  QOF_ASSIGN_OR_RETURN(
      std::string blob,
      SerializeIndexes(state->built, state->spec, state->corpus,
                       state->maintainer->generation()));
  QOF_RETURN_IF_ERROR(
      state->durable->Checkpoint(blob, state->maintainer->generation()));
  std::cout << "compacted: reclaimed " << dead
            << " dead byte(s); blob rewritten at generation "
            << state->maintainer->generation() << ", journal reset\n";
  return Status::OK();
}

Status RunInspect(const std::string& dir, SyncPolicy policy) {
  QOF_ASSIGN_OR_RETURN(DurableIndexDir durable,
                       DurableIndexDir::Open(DefaultVfs(), dir));
  QOF_ASSIGN_OR_RETURN(std::string blob, durable.ReadBlob());
  QOF_ASSIGN_OR_RETURN(BlobInfo info, ReadBlobInfo(blob));
  std::cout << "manifest: generation " << durable.generation() << " ("
            << durable.manifest().blob_name << " + "
            << durable.manifest().journal_name << ")\n";
  std::cout << "blob: v" << info.version << ", " << blob.size()
            << " bytes, generation " << info.generation << ", "
            << info.docs.size() << " document(s)\n";
  for (const DocFingerprint& doc : info.docs) {
    std::cout << "  " << doc.name << "  " << doc.size << " bytes\n";
  }

  bool repaired = false;
  QOF_ASSIGN_OR_RETURN(std::vector<JournalRecord> records,
                       durable.ReadJournal(&repaired));
  std::cout << "journal: " << records.size() << " record(s)"
            << (repaired ? " + torn tail (repaired)" : "") << "\n";
  for (const JournalRecord& record : records) {
    const char* op = record.op == JournalOp::kAdd      ? "add"
                     : record.op == JournalOp::kUpdate ? "update"
                                                       : "remove";
    std::cout << "  gen " << record.generation << ": " << op << " "
              << record.name << " (" << record.text.size() << " bytes)\n";
  }

  auto state = LoadState(dir, policy);
  if (!state.ok()) {
    std::cout << "state: UNRECOVERABLE — " << state.status().ToString()
              << "\n";
    return Status::OK();
  }
  MaintainStats stats = (*state)->maintainer->stats();
  std::cout << "state: generation " << stats.generation << ", "
            << stats.live_documents << " live document(s), "
            << stats.tombstones << " tombstone(s), " << stats.dead_bytes
            << " dead byte(s)\n";
  for (const std::string& name : (*state)->synthetic_names) {
    std::cout << "  stale on disk: " << name
              << " (update or remove before compacting)\n";
  }
  if ((*state)->maintainer->NeedsCompaction()) {
    std::cout << "compaction due: run 'qof_index compact'\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace qof

int main(int argc, char** argv) {
  if (argc < 2) {
    qof::PrintUsage(std::cerr);
    return 1;
  }
  std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    qof::PrintUsage(std::cout);
    return 0;
  }

  std::string dir;
  std::string schema_kind;
  qof::QueryOptions limits;
  qof::SyncPolicy policy = qof::SyncPolicy::kAlways;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--index" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--schema" && i + 1 < argc) {
      schema_kind = argv[++i];
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      limits.deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      limits.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sync-policy" && i + 1 < argc) {
      auto parsed = qof::SyncPolicyFromName(argv[++i]);
      if (!parsed.ok()) {
        std::cerr << parsed.status().ToString() << "\n";
        return 1;
      }
      policy = *parsed;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unrecognized option: " << arg << "\n";
      qof::PrintUsage(std::cerr);
      return 1;
    } else {
      args.push_back(arg);
    }
  }
  if (dir.empty()) {
    std::cerr << "missing --index DIR\n";
    qof::PrintUsage(std::cerr);
    return 1;
  }

  qof::Status status = qof::Status::OK();
  if (command == "build") {
    if (schema_kind.empty() || args.empty()) {
      std::cerr << "build wants --schema KIND and at least one file\n";
      return 1;
    }
    status = qof::RunBuild(dir, schema_kind, args, limits, policy);
  } else if (command == "add" || command == "update" ||
             command == "remove") {
    if (args.empty()) {
      std::cerr << command << " wants at least one file\n";
      return 1;
    }
    status = qof::RunMutate(dir, command, args, limits, policy);
  } else if (command == "compact") {
    status = qof::RunCompact(dir, policy);
  } else if (command == "inspect") {
    status = qof::RunInspect(dir, policy);
  } else {
    std::cerr << "unknown command: " << command << "\n";
    qof::PrintUsage(std::cerr);
    return 1;
  }

  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    // 3 = a governance limit tripped (deadline, byte budget); the state
    // on disk is untouched and the command can simply be retried with a
    // larger budget. 2 = the data itself is bad.
    if (status.IsDeadlineExceeded() || status.IsBudgetExhausted() ||
        status.IsCancelled()) {
      return 3;
    }
    return 2;
  }
  return 0;
}
