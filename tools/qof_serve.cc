// Multi-client query server over one FileQuerySystem: speaks the
// qof/server line protocol (see src/qof/server/protocol.h) on
// stdin/stdout. Each OPEN pins a session to the current index
// generation; QUERYs run asynchronously on the service's worker pool
// against the session's snapshot, so long queries never block other
// sessions' commands and mutations never block readers. Every response
// line is tagged with the session id it answers — with queries in
// flight, lines from different sessions interleave.
//
// The corpus is generated at startup (--schema / --entries / --seed, the
// same generators the benchmarks use), indexes are built in full, and
// both query caches are enabled. --inject=stale-snapshot plants the
// fuzzer's snapshot-isolation bug (sessions silently read live state)
// for harness validation; never use it for real serving.
//
// Exit codes: 0 on QUIT/EOF, 1 on usage error, 2 on startup failure.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/server/protocol.h"
#include "qof/server/service.h"

namespace qof {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: qof_serve [options]\n"
         "  --schema KIND    bibtex | mail | log | outline (default "
         "bibtex)\n"
         "  --entries N      generated corpus size (default 20)\n"
         "  --seed N         corpus generator seed (default 1)\n"
         "  --workers N      query worker threads (default 2)\n"
         "  --queue N        admission-control bound on queued queries\n"
         "                   (default 64; 0 = unbounded)\n"
         "  --deadline-ms N  per-query deadline ceiling (default off)\n"
         "  --max-bytes N    per-query scanned-bytes ceiling (default "
         "off)\n"
         "  --max-regions N  per-query region-budget ceiling (default "
         "off)\n"
         "  --inject KIND    stale-snapshot — plant the fuzzer's\n"
         "                   snapshot-isolation bug (testing only)\n"
         "\n"
         "Protocol (one command per line on stdin):\n"
         "  OPEN | QUERY <sid> <fql> | ADD <sid> <name> <text> |\n"
         "  UPDATE <sid> <name> <text> | REMOVE <sid> <name> |\n"
         "  COMPACT <sid> | REFRESH <sid> | STATS <sid> | CANCEL <sid> "
         "|\n"
         "  CLOSE <sid> | QUIT\n";
}

Result<StructuringSchema> SchemaFor(const std::string& kind) {
  if (kind == "bibtex") return BibtexSchema();
  if (kind == "mail") return MailSchema();
  if (kind == "log") return LogSchema();
  if (kind == "outline") return OutlineSchema();
  return Status::InvalidArgument("unknown schema kind: " + kind);
}

std::pair<std::string, std::string> CorpusFor(const std::string& kind,
                                              int entries,
                                              uint64_t seed) {
  if (kind == "mail") {
    MailGenOptions o;
    o.num_messages = entries;
    o.seed = seed;
    o.probe_sender_rate = 0.3;
    o.probe_recipient_rate = 0.3;
    return {"corpus.mbox", GenerateMailbox(o)};
  }
  if (kind == "log") {
    LogGenOptions o;
    o.num_entries = entries * 4;
    o.seed = seed;
    o.error_rate = 0.2;
    o.num_sessions = 4;
    return {"corpus.log", GenerateLog(o)};
  }
  if (kind == "outline") {
    OutlineGenOptions o;
    o.num_top_sections = entries;
    o.seed = seed;
    o.max_depth = 3;
    o.probe_title_rate = 0.25;
    return {"corpus.outline", GenerateOutline(o)};
  }
  BibtexGenOptions o;
  o.num_references = entries;
  o.seed = seed;
  o.probe_author_rate = 0.3;
  o.probe_editor_rate = 0.2;
  return {"corpus.bib", GenerateBibtex(o)};
}

/// Serializes response lines: QUERY completions arrive on worker
/// threads while the main loop answers synchronous commands.
class ResponseWriter {
 public:
  void Write(const std::string& lines) {
    std::lock_guard<std::mutex> lock(mu_);
    std::cout << lines << std::flush;
  }

 private:
  std::mutex mu_;
};

std::string QuerySuccessDetail(const QueryResult& result) {
  return "rows=" +
         std::to_string(result.values.empty() ? result.regions.size()
                                              : result.values.size()) +
         " strategy=" + result.stats.strategy +
         " engine=" + (result.stats.engine.empty() ? "-"
                                                   : result.stats.engine) +
         " bytes=" + std::to_string(result.stats.bytes_scanned) +
         " micros=" + std::to_string(result.stats.micros);
}

std::string FormatQueryResponse(uint64_t sid,
                                const Result<QueryResult>& result) {
  if (!result.ok()) return FormatErr(sid, result.status());
  std::string out;
  if (!result->values.empty()) {
    for (const std::string& value : result->RenderedValues()) {
      out += FormatRow(sid, value);
    }
  } else {
    for (const Region& region : result->regions) {
      out += FormatRow(sid, "[" + std::to_string(region.start) + "," +
                                std::to_string(region.end) + ")");
    }
  }
  out += FormatOk(sid, QuerySuccessDetail(*result));
  return out;
}

std::string StatsDetail(const QueryService& service, uint64_t sid) {
  ServiceStats s = service.stats();
  std::string out =
      "sessions_open=" + std::to_string(s.sessions_open) +
      " sessions_opened=" + std::to_string(s.sessions_opened) +
      " queries_submitted=" + std::to_string(s.queries_submitted) +
      " queries_executed=" + std::to_string(s.queries_executed) +
      " queries_rejected=" + std::to_string(s.queries_rejected) +
      " queries_failed=" + std::to_string(s.queries_failed) +
      " mutations=" + std::to_string(s.mutations) +
      " refreshes=" + std::to_string(s.refreshes);
  auto generation = service.SessionGeneration(sid);
  if (generation.ok()) {
    out += " pinned_generation=" + std::to_string(*generation);
  }
  out += " live_generation=" +
         std::to_string(service.system()->index_generation());
  CacheStats cache = service.system()->cache_stats();
  out += " eval_hits=" + std::to_string(cache.eval_hits) +
         " eval_misses=" + std::to_string(cache.eval_misses);
  return out;
}

int Serve(int argc, char** argv) {
  std::string schema_kind = "bibtex";
  int entries = 20;
  uint64_t seed = 1;
  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.max_queued = 64;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
          arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--schema")) {
      schema_kind = v;
    } else if (const char* v = value("--entries")) {
      entries = std::atoi(v);
    } else if (const char* v = value("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--workers")) {
      service_options.workers = std::atoi(v);
    } else if (const char* v = value("--queue")) {
      service_options.max_queued =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--deadline-ms")) {
      service_options.limits.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--max-bytes")) {
      service_options.limits.max_bytes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--max-regions")) {
      service_options.limits.max_regions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--inject")) {
      if (std::string(v) != "stale-snapshot") {
        std::cerr << "unknown --inject kind: " << v << "\n";
        return 1;
      }
      service_options.inject_stale_snapshot = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      PrintUsage(std::cerr);
      return 1;
    }
  }

  auto schema = SchemaFor(schema_kind);
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  FileQuerySystem system(*schema);
  auto [corpus_name, corpus_text] = CorpusFor(schema_kind, entries, seed);
  if (Status s = system.AddFile(corpus_name, corpus_text); !s.ok()) {
    std::cerr << "seed corpus rejected: " << s.ToString() << "\n";
    return 2;
  }
  system.SetCacheOptions(CacheOptions::Enabled());
  if (Status s = system.BuildIndexes(IndexSpec::Full()); !s.ok()) {
    std::cerr << "index build failed: " << s.ToString() << "\n";
    return 2;
  }

  QueryService service(&system, service_options);
  ResponseWriter writer;
  writer.Write("READY schema=" + schema_kind +
               " corpus_bytes=" + std::to_string(corpus_text.size()) +
               " workers=" +
               std::to_string(service_options.workers) + "\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    auto command = ParseCommand(line);
    if (!command.ok()) {
      writer.Write(FormatErr(0, command.status()));
      continue;
    }
    const Command& cmd = *command;
    switch (cmd.kind) {
      case CommandKind::kOpen: {
        auto sid = service.OpenSession();
        if (!sid.ok()) {
          writer.Write(FormatErr(0, sid.status()));
        } else {
          auto generation = service.SessionGeneration(*sid);
          writer.Write(FormatOk(
              0, "session=" + std::to_string(*sid) + " generation=" +
                     std::to_string(generation.value_or(0))));
        }
        break;
      }
      case CommandKind::kQuery: {
        uint64_t sid = cmd.session;
        Status submitted = service.SubmitQuery(
            sid, cmd.text, QueryOptions(),
            [sid, &writer](Result<QueryResult> result) {
              writer.Write(FormatQueryResponse(sid, result));
            });
        if (!submitted.ok()) writer.Write(FormatErr(sid, submitted));
        break;
      }
      case CommandKind::kAdd:
      case CommandKind::kUpdate:
      case CommandKind::kRemove:
      case CommandKind::kCompact:
      case CommandKind::kRefresh: {
        Status applied = Status::OK();
        switch (cmd.kind) {
          case CommandKind::kAdd:
            applied = service.AddFile(cmd.session, cmd.name, cmd.text);
            break;
          case CommandKind::kUpdate:
            applied =
                service.UpdateFile(cmd.session, cmd.name, cmd.text);
            break;
          case CommandKind::kRemove:
            applied = service.RemoveFile(cmd.session, cmd.name);
            break;
          case CommandKind::kCompact:
            applied = service.Compact(cmd.session);
            break;
          default:
            applied = service.Refresh(cmd.session);
            break;
        }
        if (!applied.ok()) {
          writer.Write(FormatErr(cmd.session, applied));
        } else {
          auto generation = service.SessionGeneration(cmd.session);
          writer.Write(FormatOk(
              cmd.session,
              "generation=" + std::to_string(generation.value_or(0))));
        }
        break;
      }
      case CommandKind::kStats:
        if (auto gen = service.SessionGeneration(cmd.session);
            !gen.ok()) {
          writer.Write(FormatErr(cmd.session, gen.status()));
        } else {
          writer.Write(
              FormatOk(cmd.session, StatsDetail(service, cmd.session)));
        }
        break;
      case CommandKind::kCancel:
        if (Status s = service.CancelActive(cmd.session); !s.ok()) {
          writer.Write(FormatErr(cmd.session, s));
        } else {
          writer.Write(FormatOk(cmd.session, "cancelled"));
        }
        break;
      case CommandKind::kClose:
        if (Status s = service.CloseSession(cmd.session); !s.ok()) {
          writer.Write(FormatErr(cmd.session, s));
        } else {
          writer.Write(FormatOk(cmd.session, "closed"));
        }
        break;
      case CommandKind::kQuit:
        service.Shutdown();  // drain in-flight queries first
        writer.Write(FormatOk(0, "bye"));
        return 0;
    }
  }
  service.Shutdown();
  return 0;
}

}  // namespace
}  // namespace qof

int main(int argc, char** argv) { return qof::Serve(argc, argv); }
