// Query-plan explainer: parses files under a canned schema, builds full
// indexes, and prints the compiler's plan explanation followed by the
// dataflow IR pipeline — the program dump (with per-node cardinality and
// work estimates) after lowering and after each optimizer pass (see
// DESIGN.md, "Query IR & pass pipeline"). With --execute it also runs
// the query and prints the per-operator IR timing counters.
//
// Exit codes: 0 = success, 1 = usage error, 2 = data/query error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/ir/passes.h"
#include "qof/util/result.h"

namespace qof {
namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: qof_explain --schema KIND --query FQL [options] FILE...\n"
         "  --schema KIND   canned schema: bibtex | mail | log | outline\n"
         "  --query FQL     the SELECT query to explain\n"
         "  --execute       also run the query (auto mode) and print the\n"
         "                  per-operator IR timing counters\n"
         "  --no-cse | --no-pushdown | --no-order | --no-fuse\n"
         "                  disable individual optimizer passes\n"
         "exit codes: 0 ok, 1 usage, 2 data/query error\n";
}

Result<StructuringSchema> SchemaByKind(const std::string& kind) {
  if (kind == "bibtex") return BibtexSchema();
  if (kind == "mail") return MailSchema();
  if (kind == "log") return LogSchema();
  if (kind == "outline") return OutlineSchema();
  return Status::InvalidArgument("unknown schema kind '" + kind +
                                 "' (want bibtex | mail | log | outline)");
}

int Run(int argc, char** argv) {
  std::string schema_kind;
  std::string fql;
  bool execute = false;
  IrPlanOptions ir_options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--schema") {
      const char* value = next();
      if (value == nullptr) {
        PrintUsage(std::cerr);
        return 1;
      }
      schema_kind = value;
    } else if (arg == "--query") {
      const char* value = next();
      if (value == nullptr) {
        PrintUsage(std::cerr);
        return 1;
      }
      fql = value;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--no-cse") {
      ir_options.enable_cse = false;
    } else if (arg == "--no-pushdown") {
      ir_options.enable_pushdown = false;
    } else if (arg == "--no-order") {
      ir_options.enable_ordering = false;
    } else if (arg == "--no-fuse") {
      ir_options.enable_fusion = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unrecognized option: " << arg << "\n";
      PrintUsage(std::cerr);
      return 1;
    } else {
      files.push_back(arg);
    }
  }
  if (schema_kind.empty() || fql.empty() || files.empty()) {
    PrintUsage(std::cerr);
    return 1;
  }

  auto schema = SchemaByKind(schema_kind);
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 2;
  }
  FileQuerySystem system(*schema);
  system.SetIrOptions(ir_options);
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open file: " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Status added = system.AddFile(path, buffer.str());
    if (!added.ok()) {
      std::cerr << "cannot add " << path << ": " << added.ToString()
                << "\n";
      return 2;
    }
  }
  Status built = system.BuildIndexes(IndexSpec::Full());
  if (!built.ok()) {
    std::cerr << "index build failed: " << built.ToString() << "\n";
    return 2;
  }

  auto explanation = system.ExplainQuery(fql);
  if (!explanation.ok()) {
    std::cerr << explanation.status().ToString() << "\n";
    return 2;
  }
  std::cout << *explanation;

  if (execute) {
    auto result = system.Execute(fql);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 2;
    }
    std::cout << "\nexecution (" << result->stats.engine << " engine, "
              << result->stats.strategy << ", " << result->stats.exec_workers
              << " worker(s)): " << result->stats.results << " result(s) in "
              << result->stats.micros << " us\n";
    for (const auto& [op, timing] : result->stats.op_timings) {
      std::cout << "  " << op << ": " << timing.count << " node eval(s), "
                << timing.micros << " us";
      if (timing.pages_read != 0 || timing.read_calls != 0 ||
          timing.prefetch_hits != 0) {
        std::cout << "; io: " << timing.pages_read << " page(s) in "
                  << timing.read_calls << " read call(s), "
                  << timing.prefetch_hits << " prefetch hit(s)";
      }
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace qof

int main(int argc, char** argv) { return qof::Run(argc, argv); }
